"""Demo — the sharded cluster riding through a worker kill, live.

Launches the full topology (consistent-hash router + 3 supervised worker
processes), registers a dataset and a maintained subscription, then
SIGKILLs one worker *while counting requests keep flowing* — and shows
that not a single request fails: the router resubmits in-flight work to
the surviving workers, the supervisor respawns the dead one, replays the
replication log into it, and re-admits it to the ring at its old
position.

Run with::

    PYTHONPATH=src python examples/cluster_demo.py
"""

from __future__ import annotations

import threading
import time

from repro.cluster import Cluster
from repro.graphs import cycle_graph, path_graph, random_graph
from repro.service.client import ServiceClient


def main() -> None:
    host = random_graph(10, 0.4, seed=7)
    patterns = [path_graph(3), cycle_graph(4), cycle_graph(5), path_graph(5)]

    with Cluster(workers=3, hedge_after=0.3) as cluster:
        client = ServiceClient(port=cluster.port, timeout=60.0)
        client.wait_ready(timeout=30.0)
        pids = cluster.worker_pids()
        print(f"cluster on port {cluster.port}, workers: {pids}\n")

        client.register_graph("hosts", host)
        sub = client.subscribe("hosts", pattern=cycle_graph(3))
        print(f"registered 'hosts'; subscription {sub['id']} "
              f"maintains triangle count = {sub['value']}\n")

        # -- continuous load ------------------------------------------------
        sent, failed = [0], [0]
        done = threading.Event()

        def load() -> None:
            local = ServiceClient(port=cluster.port, timeout=60.0)
            i = 0
            while not done.is_set():
                i += 1
                try:
                    local.count(patterns[i % len(patterns)], "hosts")
                    sent[0] += 1
                except Exception:
                    failed[0] += 1

        threads = [threading.Thread(target=load) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(1.0)

        # -- chaos ----------------------------------------------------------
        victim_pid = cluster.kill_worker("w1")
        print(f"SIGKILL worker w1 (pid {victim_pid}) under load ...")
        time.sleep(2.5)  # requests keep flowing through the survivors
        done.set()
        for thread in threads:
            thread.join()

        print(f"requests during the experiment: {sent[0]} ok, "
              f"{failed[0]} failed\n")

        # -- recovery -------------------------------------------------------
        deadline = time.time() + 30.0
        while time.time() < deadline:
            if (
                cluster.worker_pids().get("w1") not in (None, victim_pid)
                and "w1" in cluster.router.worker_ids
            ):
                break
            time.sleep(0.2)
        print(f"workers after respawn: {cluster.worker_pids()}")
        status, payload = client.healthz()
        print(f"aggregated health: {payload['status']} (HTTP {status})")
        for name, probe in sorted(payload["probes"].items()):
            print(f"  {probe['status']:<9} {name}")

        # The respawned worker replayed the log: dataset + subscription
        # exist everywhere, so updates still fan out to all 3 replicas.
        update = client.target_update("hosts", add_edges=[(0, 5)])
        print(f"\ntarget-update after recovery: version {update['version']}, "
              f"{len(update['subscriptions'])} maintained count(s) refreshed")
        stats = client.stats()["cluster"]
        print("per-worker requests:",
              {w["id"]: w["requests"] for w in stats["workers"]})
        assert failed[0] == 0, "a worker kill must never surface to clients"
        print("\nzero client-visible failures — the kill cost latency only")


if __name__ == "__main__":
    main()
