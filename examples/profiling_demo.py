"""Demo — the sampling profiler, cost accounting, and slow-query log.

Three follow-ups to ``observability_demo.py``, answering the operator's
next questions:

1. **Where does the time go inside a task?** — run cold hom-count tasks
   under the sampling profiler and print span-attributed collapsed
   stacks (flame-graph input: ``span;outer;…;leaf count``).
2. **What did one task cost?** — ``result.cost`` buckets the span tree
   into compile / execute / encode / lookup; ``.explain()`` renders the
   same block inline.
3. **Which requests were slow?** — drop the slow-query threshold, drive
   a loopback server, and read ``GET /slow-queries``: each entry carries
   the canonical task key, plan explain output, cost breakdown, and
   trace id.

Run with::

    PYTHONPATH=src python examples/profiling_demo.py
"""

from __future__ import annotations

from repro.api import HomCountTask, Session
from repro.graphs import cycle_graph, path_graph, random_graph
from repro.obs import (
    SamplingProfiler,
    render_cost,
    set_trace_sampling,
)
from repro.service import BackgroundServer, ServiceClient


def main() -> None:
    set_trace_sampling(1)  # deterministic rings for the demo
    host = random_graph(60, 0.15, seed=23)

    # ------------------------------------------------------------------
    # 1. span-attributed sampling profile of cold engine work
    # ------------------------------------------------------------------
    session = Session()
    session.register("hosts", host)
    patterns = [path_graph(5), cycle_graph(5), cycle_graph(6)]

    profiler = SamplingProfiler(interval_ms=1.0)
    profiler.start()
    try:
        results = [
            session.run(HomCountTask(pattern, "hosts"))
            for pattern in patterns
        ]
    finally:
        snapshot = profiler.stop()

    print(
        f"profiler: {snapshot['samples']} samples over "
        f"{snapshot['elapsed_s']:.2f}s, "
        f"{snapshot['distinct_stacks']} distinct stacks",
    )
    print("samples by span:", snapshot["spans"])
    print("\nheaviest collapsed stacks (flame-graph input):")
    for line in profiler.render_collapsed().splitlines()[:5]:
        print(f"  {line}")

    # ------------------------------------------------------------------
    # 2. per-task cost: where one result's milliseconds went
    # ------------------------------------------------------------------
    cold = results[0]
    print("\ncold task cost breakdown:")
    print(render_cost(cold.cost))
    warm = session.run(HomCountTask(patterns[0], "hosts"))
    print("\nwarm repeat (pure lookup):")
    print(render_cost(warm.cost))

    # ------------------------------------------------------------------
    # 3. the slow-query log over the wire
    # ------------------------------------------------------------------
    with BackgroundServer(workers=2) as server:
        client = ServiceClient(port=server.port)
        client.register_graph("hosts", host)
        client.slow_queries(threshold_ms=0.0)  # capture everything
        client.count(cycle_graph(5), "hosts")
        client.count(cycle_graph(5), "hosts")  # warm → all-lookup cost

        log = client.slow_queries(limit=5)
        print(f"\nslow-query log ({len(log['slow_queries'])} entries):")
        for entry in log["slow_queries"]:
            cost = entry["cost"] or {}
            print(
                f"  #{entry['seq']}  {entry['elapsed_ms']:.3f} ms  "
                f"{entry['kind']}  cached={entry['cached']}  "
                f"[trace {entry['trace_id']}]  "
                f"execute={cost.get('execute_ms', 0.0):.3f} ms  "
                f"lookup={cost.get('lookup_ms', 0.0):.3f} ms",
            )


if __name__ == "__main__":
    main()
