"""Quickstart: compute the WL-dimension of a conjunctive query.

Run with::

    python examples/quickstart.py

Walks through the library's core loop: parse a query, inspect its widths,
count answers three different ways, and build the lower-bound witness that
*proves* the WL-dimension on concrete graphs.
"""

from repro import (
    HomEngine,
    count_answers,
    count_answers_by_interpolation,
    parse_query,
    semantic_extension_width,
    verify_lower_bound,
    wl_dimension,
)
from repro.graphs import cycle_graph, random_graph
from repro.queries import count_answers_by_projection
from repro.treewidth import treewidth


def main() -> None:
    # The paper's running example: the 2-star query
    #   ϕ(x1, x2) = ∃y : E(x1, y) ∧ E(x2, y)
    # "which pairs of vertices have a common neighbour?"
    query = parse_query("q(x1, x2) :- E(x1, y), E(x2, y)")
    print("query:", query.to_logic_string())

    # Structure: treewidth 1 (it is a tree) but WL-dimension 2.
    print("treewidth of H:         ", treewidth(query.graph))
    print("semantic extension width:", semantic_extension_width(query))
    print("WL-dimension (Theorem 1):", wl_dimension(query))

    # Counting answers on a random host: three independent algorithms.
    host = random_graph(8, 0.4, seed=5)
    print("\nhost: G(8, 0.4), seed 5 —", host)
    print("answers (direct):        ", count_answers(query, host))
    print("answers (hom projection):", count_answers_by_projection(query, host))
    print(
        "answers (Lemma 22 interpolation from |Hom(F_ℓ)|):",
        count_answers_by_interpolation(query, host),
    )

    # Batched counting: the engine compiles each pattern once (here C6
    # gets a closed-form trace(A^6) plan) and caches finished counts, so
    # profiling a pattern family over many hosts is one cheap batch.
    engine = HomEngine()
    patterns = [query.graph, cycle_graph(6)]
    hosts = [random_graph(8, 0.4, seed=s) for s in range(6)]
    rows = engine.count_batch(patterns, hosts)
    print("\nbatched hom counts (2 patterns x 6 hosts):")
    for pattern, row in zip(("H (2-star)", "C6"), rows):
        print(f"  {pattern:11s} {row}")
    engine.count_batch(patterns, hosts)  # warm repeat: pure cache hits
    stats = engine.stats_summary()
    print(f"  engine: {stats['plans_compiled']} plans compiled, "
          f"{stats['count_hits']}/{stats['count_requests']} cache hits")

    # The lower bound, verified end to end: a pair of graphs that 1-WL
    # (and hence every order-1 GNN) cannot distinguish, on which the query
    # has different answer counts.
    report = verify_lower_bound(query)
    print("\nlower-bound witness (Section 4):")
    print("  CFI pair size:          ", report.witness.untwisted.num_vertices())
    print("  colour-prescribed counts:", report.cp_answers, "(strict gap)")
    print("  1-WL-equivalent:        ", report.wl_equivalent_below)
    z, first, second = report.clone_separation
    print(f"  |Ans| separation:        z={z}: {first} != {second}")
    print("  all Section-4 checks:   ", report.all_checks_pass)


if __name__ == "__main__":
    main()
