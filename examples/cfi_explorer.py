"""Exploring the Cai-Fürer-Immerman construction (Section 4.1).

Run with::

    python examples/cfi_explorer.py

Builds CFI graphs over several bases, demonstrates the parity law
(Lemma 26), the WL-equivalence levels (Lemma 27), and shows how the
classical 2K3/C6 pair *is* the CFI construction over a triangle.
"""

from repro.cfi import cfi_graph, cfi_pair
from repro.graphs import (
    are_isomorphic,
    complete_graph,
    cycle_graph,
    six_cycle,
    two_triangles,
)
from repro.homs import count_homomorphisms
from repro.treewidth import treewidth
from repro.wl import wl_distinguishing_dimension


def main() -> None:
    print("=== the classical pair is a CFI pair ===")
    base = complete_graph(3)
    untwisted = cfi_graph(base)
    twisted = cfi_graph(base, (0,))
    print("  χ(K3, ∅)  ≅ 2K3:", are_isomorphic(untwisted, two_triangles()))
    print("  χ(K3, {0}) ≅ C6: ", are_isomorphic(twisted, six_cycle()))

    print("\n=== the parity law (Lemma 26) ===")
    base = cycle_graph(5)
    print("  base: C5")
    for twists, parity in [((), "even"), ((0,), "odd"), ((0, 2), "even"), ((0, 1, 3), "odd")]:
        graph = cfi_graph(base, twists)
        same_as_untwisted = are_isomorphic(graph, cfi_graph(base))
        print(
            f"  |W| = {len(twists)} ({parity}): "
            f"isomorphic to χ(C5, ∅)? {same_as_untwisted}",
        )

    print("\n=== WL-equivalence levels track treewidth (Lemma 27) ===")
    for name, base in [("C5", cycle_graph(5)), ("K4", complete_graph(4))]:
        width = treewidth(base)
        pair = cfi_pair(base)
        level = wl_distinguishing_dimension(pair.untwisted, pair.twisted, max_k=2)
        shown = level if level is not None else "> 2"
        print(
            f"  base {name} (tw {width}): pair first distinguished at "
            f"WL level {shown}  (theory: exactly {width})",
        )

    print("\n=== homomorphism counts see the twist exactly at tw(F) ===")
    base = complete_graph(4)
    pair = cfi_pair(base)
    for name, pattern in [
        ("K2  (tw 1)", cycle_graph(3).induced_subgraph([0, 1])),
        ("K3  (tw 2)", complete_graph(3)),
        ("K4  (tw 3)", complete_graph(4)),
    ]:
        first = count_homomorphisms(pattern, pair.untwisted)
        second = count_homomorphisms(pattern, pair.twisted)
        verdict = "differ" if first != second else "equal"
        print(f"  |Hom({name})|: {first:6d} vs {second:6d}  → {verdict}")


if __name__ == "__main__":
    main()
