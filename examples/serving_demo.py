"""Demo — the counting service end to end, in one process.

Starts a service on a loopback port (with a persistent cache tier in a
temp directory), registers a plain-graph dataset and a knowledge-graph
dataset, queries both through the Python client, then restarts the
service on the same cache directory to show a fully warm boot: the
repeated count is answered with zero plan compilation and zero count
execution.

Run with::

    PYTHONPATH=src python examples/serving_demo.py
"""

from __future__ import annotations

import tempfile

from repro.engine import set_default_engine
from repro.graphs import cycle_graph, random_graph
from repro.kg import KnowledgeGraph, kg_query_from_triples
from repro.service import BackgroundServer, ServiceClient


def main() -> None:
    data_dir = tempfile.mkdtemp(prefix="repro-serving-demo-")
    host = random_graph(12, 0.3, seed=7)
    kg = KnowledgeGraph(
        vertices={"ada": "User", "bob": "User", "f1": "Film", "f2": "Film"},
        triples=[
            ("ada", "likes", "f1"), ("bob", "likes", "f1"),
            ("bob", "likes", "f2"),
        ],
    )
    co_liking = kg_query_from_triples(
        [("x", "likes", "z"), ("y", "likes", "z")], ["x", "y"],
    )

    print(f"persistent cache tier: {data_dir}\n")

    with BackgroundServer(data_dir=data_dir, workers=2) as server:
        client = ServiceClient(port=server.port)
        print(f"server up on http://127.0.0.1:{server.port}")
        print("register:", client.register_graph("hosts", host))
        print("register:", client.register_kg("films", kg))

        response = client.count(cycle_graph(6), "hosts")
        print(f"\n|Hom(C6, hosts)| = {response['count']}  (plan: {response['plan']})")

        response = client.count_answers(
            "q(x1, x2) :- E(x1, y), E(x2, y)", "hosts",
        )
        print(f"common-neighbour answers on hosts = {response['count']} "
              f"(method: {response['method']})")

        response = client.count_kg_answers(co_liking, "films")
        print(f"co-liking pairs in films = {response['count']}")

        print(f"wl-dim = {client.wl_dim('q(x1, x2) :- E(x1, y), E(x2, y)')['wl_dimension']}")

        engine = client.stats()["engine"]
        print(f"\ncold boot: {engine['plans_compiled']} plans compiled, "
              f"{engine['counts_executed']} counts executed")
    set_default_engine(None)

    # ------------------------------------------------------------------
    # warm restart: same cache directory, fresh process state
    # ------------------------------------------------------------------
    with BackgroundServer(data_dir=data_dir, workers=2) as server:
        client = ServiceClient(port=server.port)
        client.register_graph("hosts", host)
        response = client.count(cycle_graph(6), "hosts")
        engine = client.stats()["engine"]
        print(f"\nwarm restart: |Hom(C6, hosts)| = {response['count']} with "
              f"{engine['plans_compiled']} plans compiled and "
              f"{engine['counts_executed']} counts executed "
              f"({engine['persistent_count_hits']} persistent hit)")
    set_default_engine(None)


if __name__ == "__main__":
    main()
