"""Conjunctive queries over knowledge graphs (Section 1.3, remark (C)).

Run with::

    python examples/knowledge_graphs.py

The paper notes its WL-dimension analysis extends to knowledge graphs —
directed, vertex- and edge-labelled.  This example builds a small
movie-domain KG, runs labelled conjunctive queries against it, and shows
the width measures (and hence the GNN order needed for exact counting)
computed on the pattern's Gaifman structure.
"""

from repro.kg import (
    KnowledgeGraph,
    count_kg_answers,
    kg_extension_width,
    kg_query_from_triples,
    kg_wl_1_equivalent,
)


def build_movie_kg() -> KnowledgeGraph:
    kg = KnowledgeGraph(
        vertices={
            "alice": "person", "bob": "person", "carol": "person",
            "dune": "movie", "arrival": "movie", "heat": "movie",
            "scifi": "genre", "crime": "genre",
        },
    )
    for person, movie in [
        ("alice", "dune"), ("alice", "arrival"), ("bob", "dune"),
        ("bob", "heat"), ("carol", "arrival"), ("carol", "heat"),
    ]:
        kg.add_edge(person, "rated", movie)
    kg.add_edge("dune", "has_genre", "scifi")
    kg.add_edge("arrival", "has_genre", "scifi")
    kg.add_edge("heat", "has_genre", "crime")
    kg.add_edge("alice", "follows", "bob")
    kg.add_edge("bob", "follows", "carol")
    return kg


def main() -> None:
    kg = build_movie_kg()
    print("knowledge graph:", kg)

    print("\n--- query: pairs of users who rated a common movie ---")
    co_rating = kg_query_from_triples(
        [("u1", "rated", "m"), ("u2", "rated", "m")],
        ["u1", "u2"],
    )
    print("  answers:", count_kg_answers(co_rating, kg))
    print("  extension width (≈ GNN order needed):", kg_extension_width(co_rating))

    print("\n--- query: users who rated two movies sharing a genre ---")
    genre_affinity = kg_query_from_triples(
        [
            ("u", "rated", "m1"),
            ("u", "rated", "m2"),
            ("m1", "has_genre", "g"),
            ("m2", "has_genre", "g"),
        ],
        ["u"],
    )
    print("  answers:", count_kg_answers(genre_affinity, kg))
    print("  extension width:", kg_extension_width(genre_affinity))

    print("\n--- query: follower chains ending at a crime rater ---")
    chain = kg_query_from_triples(
        [("a", "follows", "b"), ("b", "rated", "m"), ("m", "has_genre", "g")],
        ["a"],
        vertex_labels={"g": "genre"},
    )
    print("  answers:", count_kg_answers(chain, kg))
    print("  extension width:", kg_extension_width(chain))

    print("\n--- KG 1-WL: direction and labels matter ---")
    cycle_r = KnowledgeGraph(
        triples=[("a", "r", "b"), ("b", "r", "c"), ("c", "r", "a")],
    )
    cycle_mixed = KnowledgeGraph(
        triples=[("a", "r", "b"), ("b", "r", "c"), ("a", "r", "c")],
    )
    print(
        "  directed 3-cycle vs transitive triangle 1-WL-equivalent:",
        kg_wl_1_equivalent(cycle_r, cycle_mixed),
    )


if __name__ == "__main__":
    main()
