"""Demo — streaming targets with live maintained counts.

Two acts:

1. **Library level**: a sliding-window graph stream.  A ``DynamicGraph``
   takes edge batches; ``MaintainedCount``/``MaintainedAnswerCount``
   handles stay current through incremental deltas, and a rollback
   restores earlier values from provenance without recomputing.
2. **Service level**: an append-only knowledge graph (a citation corpus
   growing "monthly").  The KG is registered once, a KG answer count is
   subscribed, and each month's new papers arrive as ``target-update``
   batches — the gadget encoding is patched (never recompiled on an
   append-only stream) and the subscription's value is always current.

Run with::

    PYTHONPATH=src python examples/streaming_demo.py
"""

from __future__ import annotations

import random

from repro.dynamic import DynamicGraph, MaintainedAnswerCount, MaintainedCount
from repro.engine import set_default_engine
from repro.graphs import path_graph, random_graph, star_graph
from repro.kg import KnowledgeGraph, kg_query_from_triples
from repro.queries import parse_query
from repro.service import BackgroundServer, ServiceClient


def sliding_window_act() -> None:
    print("=== act 1: sliding-window graph stream (library level) ===")
    rng = random.Random(3)
    dynamic = DynamicGraph(random_graph(60, 0.06, seed=3))
    paths = MaintainedCount(path_graph(4), dynamic)
    stars = MaintainedCount(star_graph(3), dynamic)
    co_neighbours = MaintainedAnswerCount(
        parse_query("q(x1, x2) :- E(x1, y), E(x2, y)"), dynamic,
    )
    print(
        f"v0: |Hom(P4)|={paths.value}  |Hom(S3)|={stars.value}  "
        f"|Ans|={co_neighbours.value}",
    )

    vertices = list(dynamic.graph.vertices())
    window: list[tuple] = []
    for batch in range(4):
        graph = dynamic.graph
        adds = []
        while len(adds) < 6:
            u, v = rng.sample(vertices, 2)
            if not graph.has_edge(u, v) and (u, v) not in adds and (v, u) not in adds:
                adds.append((u, v))
        expires = window[:6]
        dynamic.apply(add_edges=adds, remove_edges=expires)
        window = window[len(expires):] + adds
        print(
            f"v{dynamic.version}: +{len(adds)}/-{len(expires)} edges -> "
            f"|Hom(P4)|={paths.value} ({paths.method})  "
            f"|Hom(S3)|={stars.value}  |Ans|={co_neighbours.value}",
        )

    dynamic.rollback()
    print(
        f"rollback to v{dynamic.version}: |Hom(P4)|={paths.value} "
        f"({paths.method} — no recompute)",
    )
    stats = dynamic.stats
    print(
        f"stream stats: {stats.index_patches} index patches, "
        f"{stats.index_recompiles} recompiles, "
        f"{stats.deltas_applied} deltas, "
        f"{stats.delta_fallbacks} fallback recomputes\n",
    )


def streaming_kg_act() -> None:
    print("=== act 2: append-only knowledge graph (service level) ===")
    corpus = KnowledgeGraph(
        vertices={
            "ada": "Author", "bob": "Author",
            "p1": "Paper", "p2": "Paper",
        },
        triples=[
            ("ada", "wrote", "p1"),
            ("bob", "wrote", "p2"),
            ("p2", "cites", "p1"),
        ],
    )
    authorship = kg_query_from_triples(
        [("x", "wrote", "p")], ["x"],
        vertex_labels={"x": "Author", "p": "Paper"},
    )

    monthly_batches = [
        {   # month 1: carol joins, two new papers
            "add_vertices": [["carol", "Author"], ["p3", "Paper"], ["p4", "Paper"]],
            "add_triples": [
                ["carol", "wrote", "p3"], ["carol", "wrote", "p4"],
                ["p3", "cites", "p1"], ["p4", "cites", "p2"],
            ],
        },
        {   # month 2: ada publishes again, cites carol
            "add_vertices": [["p5", "Paper"]],
            "add_triples": [["ada", "wrote", "p5"], ["p5", "cites", "p3"]],
        },
    ]

    with BackgroundServer(workers=2) as server:
        client = ServiceClient(port=server.port)
        client.register_kg("corpus", corpus)
        subscription = client.subscribe(
            "corpus", kg_query=authorship, subscription_id="authors",
        )
        print(f"v0 authors with a paper: {subscription['value']}")
        for month, batch in enumerate(monthly_batches, start=1):
            payload = client.target_update(
                "corpus",
                add_vertices=batch.get("add_vertices", ()),
                add_triples=batch.get("add_triples", ()),
            )
            (entry,) = payload["subscriptions"]
            dynamic = payload["dynamic"]
            print(
                f"month {month}: version {payload['version']}, "
                f"authors with a paper: {entry['value']} "
                f"(patched={payload['patched']}, "
                f"patch ratio {dynamic['patch_ratio']})",
            )
        print(
            "append-only stream: "
            f"{payload['dynamic']['index_recompiles']} recompiles — "
            "the gadget index is only ever patched",
        )
    set_default_engine(None)


def main() -> None:
    sliding_window_act()
    streaming_kg_act()


if __name__ == "__main__":
    main()
