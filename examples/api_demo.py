"""Demo — one task spec, three executors.

Builds a single :class:`HomCountTask` and an :class:`AnswerCountTask`
and runs them, unchanged, on

1. a :class:`LocalExecutor` (the in-process engine),
2. a :class:`ServiceExecutor` (a real loopback HTTP service), and
3. a :class:`DynamicExecutor` (maintained handles over the live dataset),

then updates the dataset and shows the dynamic executor tracking the new
version while the local executor recomputes — same values everywhere,
one object model.

Run with::

    PYTHONPATH=src python examples/api_demo.py
"""

from __future__ import annotations

from repro.api import (
    AnswerCountTask,
    DynamicExecutor,
    HomCountTask,
    ServiceExecutor,
    Session,
)
from repro.engine import set_default_engine
from repro.graphs import cycle_graph, random_graph
from repro.service import BackgroundServer


def show(name: str, result) -> None:
    print(f"  {name:8s} value={result.value}  backend={result.backend}  "
          f"version={result.version}  {result.elapsed_ms:.2f} ms")


def main() -> None:
    host = random_graph(12, 0.3, seed=7)

    # One shared registry: the local and dynamic executors see the same
    # dataset; the service gets its own copy over the wire.
    local = Session()
    local.register("hosts", host)
    dynamic = Session(DynamicExecutor(registry=local.registry))

    specs = [
        HomCountTask(cycle_graph(4), "hosts"),
        AnswerCountTask("q(x1, x2) :- E(x1, y), E(x2, y)", "hosts"),
    ]

    with BackgroundServer(workers=2) as server:
        remote = Session(ServiceExecutor(port=server.port))
        remote.register("hosts", host)

        print("one spec, three executors")
        for spec in specs:
            print(f"\n{spec!r}")
            for name, session in (
                ("local", local), ("service", remote), ("dynamic", dynamic),
            ):
                show(name, session.run(spec))

        print("\nupdate the dataset: add edges (0, 5) and (2, 7)")
        version = local.update("hosts", add_edges=[(0, 5), (2, 7)])
        remote.update("hosts", add_edges=[(0, 5), (2, 7)])
        print(f"  -> version {version}")
        for spec in specs:
            print(f"\n{spec!r}")
            for name, session in (
                ("local", local), ("service", remote), ("dynamic", dynamic),
            ):
                show(name, session.run(spec))

        print("\nfull plan introspection of the last dynamic result:")
        print(dynamic.explain(specs[0]))

    dynamic.close()
    set_default_engine(None)


if __name__ == "__main__":
    main()
