"""Demo — health probes, SLO windows, and alert rules on a live service.

Walks the full degraded→recovered cycle in one process:

1. **Ready** — start a service with SLO objectives configured, gate on
   ``ServiceClient.wait_ready()`` instead of a sleep/retry loop, and
   show the healthy ``/healthz`` verdict (every probe ``ok``).
2. **Traffic** — drive counts so the ``count`` rolling window fills,
   then read ``/slo``: objective attainment, observed quantile, and
   the burn rate relative to the error budget.
3. **Break it** — stop the scheduler under the server's feet.
   ``/healthz`` flips to 503 with a structured reason, ``/readyz``
   refuses traffic, and the ``probe:scheduler-workers`` alert rule
   fires (severity ``page``) once its ``for_seconds`` hold elapses.
4. **Recover** — restart the scheduler: ``/healthz`` returns to 200,
   the alert resolves, and counts flow again.

Run with::

    PYTHONPATH=src python examples/health_demo.py
"""

from __future__ import annotations

import asyncio
import time

from repro.engine import set_default_engine
from repro.graphs import cycle_graph, random_graph
from repro.obs.slo import configure_slo, tracker
from repro.service import BackgroundServer, ServiceClient


def call_on_loop(server: BackgroundServer, coroutine):
    """Run a coroutine on the server's own event loop and wait for it."""
    return asyncio.run_coroutine_threadsafe(
        coroutine, server._loop,
    ).result(timeout=10.0)


def show_health(label: str, client: ServiceClient) -> None:
    status, payload = client.healthz()
    print(f"\n{label}: /healthz → HTTP {status} ({payload['status']})")
    for name, probe in sorted(payload["probes"].items()):
        reason = f"  — {probe['reason']}" if probe.get("reason") else ""
        print(f"  {probe['status']:<9} {name}{reason}")


def main() -> None:
    # Objectives would normally come from the environment
    # (REPRO_SLO="count:p99<250ms,err<1%"); configure_slo takes the
    # same grammar in-process.
    previous_objectives = configure_slo("count:p99<250ms,err<1%")
    host = random_graph(12, 0.3, seed=7)

    with BackgroundServer(workers=2) as server:
        client = ServiceClient(port=server.port)
        ready = client.wait_ready(timeout=10.0)
        print(f"server ready on http://127.0.0.1:{server.port} "
              f"(readyz: {ready['status']})")
        show_health("healthy baseline", client)

        # --------------------------------------------------------------
        # traffic: fill the `count` rolling window, then read /slo
        # --------------------------------------------------------------
        client.register_graph("hosts", host)
        for _ in range(40):
            client.count(cycle_graph(4), "hosts")
        report = client.slo()
        window = report["windows"]["count"]
        print(f"\n/slo after 40 counts — window `count`: "
              f"{window['count']} events, p99 ≈ {window['p99_ms']} ms")
        for objective in report["objectives"]:
            attained = objective.get(
                "attained_ms", objective.get("error_rate"),
            )
            print(f"  {objective['objective']:<24} ok={objective['ok']}  "
                  f"attained={attained}  burn={objective['burn_rate']}")

        # --------------------------------------------------------------
        # break: stop the scheduler — healthz 503, alert fires
        # --------------------------------------------------------------
        call_on_loop(server, server.service.scheduler.stop())
        show_health("scheduler stopped", client)
        status, _ = client.readyz()
        print(f"  /readyz → HTTP {status} (load balancer drains this pod)")

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            firing = client.alerts()["firing"]
            if "probe:scheduler-workers" in firing:
                break
            time.sleep(0.1)
        alerts = client.alerts()
        for alert in alerts["alerts"]:
            if alert["name"] in alerts["firing"]:
                print(f"  FIRING [{alert['severity']}] {alert['name']}: "
                      f"{alert['reason']}")

        # --------------------------------------------------------------
        # recover: restart — healthz 200, alert resolves, traffic flows
        # --------------------------------------------------------------
        call_on_loop(server, server.service.scheduler.start())
        show_health("scheduler restarted", client)
        assert "probe:scheduler-workers" not in client.alerts()["firing"]
        response = client.count(cycle_graph(5), "hosts")
        print(f"\nrecovered: |Hom(C5, hosts)| = {response['count']} — "
              f"alert resolved, counts flowing again")
    set_default_engine(None)
    tracker().set_objectives(previous_objectives)
    tracker().reset()


if __name__ == "__main__":
    main()
