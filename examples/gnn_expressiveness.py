"""What can a GNN count? (Section 1.2 of the paper)

Run with::

    python examples/gnn_expressiveness.py

For the query "how many pairs of users share a follower?" (the 2-star),
shows that message-passing GNNs (order 1) provably cannot compute the
answer count, while order-2 GNNs can — and produces the adversarial pair of
graphs certifying the impossibility.
"""

from repro.gnn import OrderKGNN, demonstrate_inexpressiveness, minimum_gnn_order
from repro.queries import count_answers, parse_query, star_query


def main() -> None:
    query = parse_query("q(x1, x2) :- E(x1, y), E(x2, y)")
    print("query:", query.to_logic_string())
    print("  ('pairs sharing a common neighbour' — e.g. co-follower counts)")

    needed = minimum_gnn_order(query)
    print(f"\nminimum GNN order to compute |Ans|: {needed}")
    print("  (Theorem 1 + Morris et al.: order k computes |Ans| iff k ≥ sew)")

    print("\nbuilding the impossibility certificate for order-1 GNNs...")
    certificate = demonstrate_inexpressiveness(query, order=1)
    first, second = certificate.first, certificate.second
    print(f"  two graphs, {first.num_vertices()} vertices each")
    print(f"  |Ans| differs: {certificate.count_first} vs {certificate.count_second}")

    gnn = OrderKGNN(1)
    print(f"  order-1 GNN distinguishes them: {gnn.distinguishes(first, second)}")
    print("  ⇒ no order-1 GNN output can equal |Ans| on both graphs.")

    gnn2 = OrderKGNN(2)
    print(f"\n  order-2 GNN distinguishes them: {gnn2.distinguishes(first, second)}")
    print("  (consistent: order 2 = sew suffices, Observation 23)")

    print("\nexpressiveness frontier for star queries:")
    for k in (1, 2, 3):
        q = star_query(k)
        print(
            f"  S_{k}: counts need order {minimum_gnn_order(q)} "
            f"(treewidth of the query graph is 1 for every k!)",
        )

    # Sanity: the counts really differ and really are the query's answers.
    assert count_answers(query, first) == certificate.count_first
    assert count_answers(query, second) == certificate.count_second


if __name__ == "__main__":
    main()
