"""Demo — the vectorised numpy kernel tier and its pure-Python oracle.

Every ``CountPlan`` can execute on two tiers: the always-present
pure-Python kernels and, when numpy is importable, vectorised kernels
compiled over the same CSR/bitset/tape abstractions.  This demo walks
the selection surface:

1. **Who decides?** — the cost model picks per call by target size;
   ``kernel.force_backend`` and the ``REPRO_KERNEL`` env var override
   it.  ``Result.backend`` and ``.explain()`` name the tier that ran.
2. **Same answers, different tier** — the two tiers are differentially
   identical; the demo diffs ``.explain()`` output between forced runs.
3. **Exactness fallback** — a count that would overflow int64 makes the
   numpy tape raise ``KernelUnsupported`` internally and re-run pure
   Python; the result is the exact big integer either way and the
   fallback shows up in ``kernel.kernel_report()``.

Run with::

    PYTHONPATH=src python examples/backends_demo.py
"""

from __future__ import annotations

from repro import kernel
from repro.api import HomCountTask, Session
from repro.graphs import Graph, complete_graph, random_graph, star_graph


def explain_under(backend: str) -> tuple[str, object]:
    """One cold hom-count task executed with ``backend`` forced."""
    from repro.engine import HomEngine

    session = Session(engine=HomEngine())  # fresh caches: a cold run
    task = HomCountTask(star_graph(3), random_graph(80, 0.15, seed=9))
    with kernel.force_backend(backend):
        result = session.run(task)
    return result.explain(), result.value


def main() -> None:
    report = kernel.kernel_report()
    print(
        "numpy tier:",
        f"available (numpy {report['numpy_version']})"
        if report["numpy_available"]
        else "unavailable — every call below runs the pure tier",
    )
    print("size thresholds per layer:", report["thresholds"])

    # ------------------------------------------------------------------
    # 1. the cost model picks per call; overrides are explicit
    # ------------------------------------------------------------------
    print("\nauto selection by target size (layer 'dp', threshold "
          f"{report['thresholds']['dp']}):")
    for size in (8, 200):
        print(f"  target n={size:<4d} -> {kernel.would_select('dp', size)}")
    with kernel.force_backend("python"):
        print("  forced python  ->", kernel.would_select("dp", 200))

    # ------------------------------------------------------------------
    # 2. same count on both tiers; .explain() names the one that ran
    # ------------------------------------------------------------------
    python_explain, python_value = explain_under("python")
    backends = ["python"]
    if report["numpy_available"]:
        numpy_explain, numpy_value = explain_under("numpy")
        assert numpy_value == python_value
        backends.append("numpy")
        print("\n.explain() diff between forced tiers (same exact count):")
        python_lines = python_explain.splitlines()
        numpy_lines = numpy_explain.splitlines()
        for old, new in zip(python_lines, numpy_lines):
            marker = " " if old == new else "|"
            print(f"  {old:<44s}{marker} {new}")
    else:
        print("\npure-tier .explain():")
        for line in python_explain.splitlines():
            print(f"  {line}")
    print(f"  agreed value on {'/'.join(backends)}: {python_value}")

    # ------------------------------------------------------------------
    # 3. int64-unsafe counts reroute to the oracle, exactly
    # ------------------------------------------------------------------
    # Hom(edgeless 30-vertex pattern, K40) = 40**30, far past int64: the
    # numpy tape's a-priori guard fires and the pure tape answers.
    from repro.homs.treewidth_dp import count_homomorphisms_dp

    pattern = Graph(vertices=range(30))
    target = complete_graph(40)
    with kernel.force_backend("numpy" if report["numpy_available"]
                              else "python"):
        value = count_homomorphisms_dp(pattern, target)
    assert value == 40 ** 30
    print(f"\noverflow-guarded count: 40**30 = {value}")
    fallbacks = kernel.kernel_report()["fallbacks"]
    print("recorded fallbacks:", fallbacks or "(none)")


if __name__ == "__main__":
    main()
