"""Counting dominating sets through conjunctive queries (Corollary 6/68).

Run with::

    python examples/dominating_sets.py

Shows the full Section 5.4 pipeline on real graphs: the star-query identity
``|Δ_k(G)| = C(n,k) − |Inj((S_k, X_k), Ḡ)|/k!``, the quantum expansion of
the injective star answers, and the WL-dimension consequence — including a
pair of 1-WL-equivalent graphs with different |Δ₂| (so no message-passing
GNN can count dominating sets of size 2).
"""

from repro.core import (
    count_dominating_sets_brute,
    count_dominating_sets_via_stars,
    dominating_set_wl_dimension,
    star_injective_quantum,
)
from repro.graphs import complement, petersen_graph, random_graph, six_cycle, two_triangles
from repro.wl import wl_1_equivalent


def main() -> None:
    print("=== the identity on concrete graphs ===")
    for name, graph in [
        ("Petersen", petersen_graph()),
        ("G(9, 0.35, seed 2)", random_graph(9, 0.35, seed=2)),
        ("G(10, 0.5, seed 3)", random_graph(10, 0.5, seed=3)),
    ]:
        for k in (1, 2, 3):
            brute = count_dominating_sets_brute(graph, k)
            via_stars = count_dominating_sets_via_stars(graph, k)
            marker = "ok" if brute == via_stars else "MISMATCH"
            print(f"  {name:20s} k={k}:  brute={brute:4d}  stars={via_stars:4d}  [{marker}]")

    print("\n=== the quantum expansion behind the identity ===")
    for k in (1, 2, 3):
        quantum = star_injective_quantum(k)
        terms = " + ".join(
            f"{coeff}·S_{len(query.free_variables)}"
            for coeff, query in quantum.terms
        )
        print(f"  Inj(S_{k}) = {terms}   (hsew = "
              f"{quantum.hereditary_semantic_extension_width()})")

    print("\n=== the WL-dimension consequence (Corollary 6) ===")
    for k in (1, 2, 3, 4):
        print(f"  WL-dimension of G ↦ |Δ_{k}(G)| = {dominating_set_wl_dimension(k)}")

    print("\n=== a 1-WL-blind spot made concrete ===")
    first, second = two_triangles(), six_cycle()
    print("  2K3 and C6 are 1-WL-equivalent:", wl_1_equivalent(first, second))
    print("  |Δ₂(2K3)| =", count_dominating_sets_brute(first, 2))
    print("  |Δ₂(C6)|  =", count_dominating_sets_brute(second, 2))
    print("  ⇒ counting size-2 dominating sets needs WL level ≥ 2, matching k = 2.")
    quantum = star_injective_quantum(2)
    print(
        "  (equivalently, the hsew-2 quantum query separates the complements:",
        quantum.count_answers(complement(first)),
        "vs",
        quantum.count_answers(complement(second)),
        ")",
    )


if __name__ == "__main__":
    main()
