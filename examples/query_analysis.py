"""Analysing a workload of SQL-ish graph queries.

Run with::

    python examples/query_analysis.py

A database-flavoured scenario: given a mixed workload of conjunctive
queries over an edge relation (friend-of-friend, co-purchase, reachability
patterns), report for each query the structural widths, whether it is
counting minimal (i.e. whether the optimiser may shrink it), and the WL
level / GNN order a learned cardinality estimator would need to get its
answer counts right on all inputs.
"""

from repro.core import analyse_query
from repro.queries import format_query, parse_query


WORKLOAD = [
    # friends of friends (distinct endpoints handled by the app layer)
    "q(u, v) :- E(u, w), E(w, v)",
    # co-purchase: two products bought by a common customer
    "q(p1, p2) :- E(p1, c), E(p2, c)",
    # triangle closure around a free edge
    "q(u, v) :- E(u, v), E(u, w), E(v, w)",
    # hub detection: three products sharing a customer
    "q(p1, p2, p3) :- E(p1, c), E(p2, c), E(p3, c)",
    # a redundantly-written query: the tail y2, y3 folds away
    "(x1, x2) exists y1, y2, y3 : E(x1, y1), E(x2, y1), E(y1, y2), E(y2, y3)",
    # full pattern: path of length 3, all variables returned
    "q(a, b, c, d) :- E(a, b), E(b, c), E(c, d)",
]


def main() -> None:
    header = (
        f"{'query':62s} {'tw':>3s} {'qss':>4s} {'ew':>3s} {'sew':>4s} "
        f"{'minimal':>8s} {'WL-dim':>7s}"
    )
    print(header)
    print("-" * len(header))
    for text in WORKLOAD:
        query = parse_query(text)
        report = analyse_query(query)
        print(
            f"{format_query(query, style='datalog')[:62]:62s} "
            f"{report['treewidth']:>3d} "
            f"{report['quantified_star_size']:>4d} "
            f"{report['extension_width']:>3d} "
            f"{report['semantic_extension_width']:>4d} "
            f"{str(report['counting_minimal']):>8s} "
            f"{report['wl_dimension']:>7d}",
        )

    print(
        "\nReading the table: a learned cardinality estimator built on "
        "order-k GNN features\ncan be exact on a query only when "
        "k ≥ WL-dim.  Note the hub query: treewidth 1,\nbut no estimator "
        "below order 3 can count it — and the redundant query costs\n"
        "nothing extra because its semantic width ignores the foldable tail.",
    )


if __name__ == "__main__":
    main()
