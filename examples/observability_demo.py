"""Demo — tracing, metrics, and structured logs across the stack.

Three views of the same workload:

1. **Local tracing** — run a cold and a warm :class:`HomCountTask`
   through a :class:`Session` and render their span trees with
   ``result.explain()``: the cold run shows ``engine.compile`` and
   ``engine.execute`` children, the warm repeat is a bare cache hit.
2. **Service metrics** — drive a loopback server, then scrape
   ``GET /metrics`` (Prometheus text) and show the counter families
   reconciling with the traffic we just sent.
3. **Trace ring buffers** — fetch ``GET /traces`` and print the most
   recent server-side request trace by the id echoed in the
   ``X-Repro-Trace`` response header.

Run with::

    PYTHONPATH=src python examples/observability_demo.py
"""

from __future__ import annotations

from repro.api import HomCountTask, Session
from repro.engine import set_default_engine
from repro.graphs import cycle_graph, path_graph, random_graph
from repro.obs import render_span, set_trace_sampling
from repro.service import BackgroundServer, ServiceClient


def main() -> None:
    # Keep every root trace (production default samples 1-in-8 fast
    # traces) so the demo's rings are deterministic.
    set_trace_sampling(1)

    host = random_graph(14, 0.25, seed=11)

    # ------------------------------------------------------------------
    # 1. local span trees via result.explain()
    # ------------------------------------------------------------------
    session = Session()
    session.register("hosts", host)
    task = HomCountTask(cycle_graph(5), "hosts")

    cold = session.run(task)
    warm = session.run(task)
    print("cold run (compiles and executes under the task span):")
    print(cold.explain())
    print("\nwarm repeat (pure cache hit, no engine children):")
    print(warm.explain())

    # ------------------------------------------------------------------
    # 2. service metrics: scrape what the traffic did
    # ------------------------------------------------------------------
    with BackgroundServer(workers=2) as server:
        client = ServiceClient(port=server.port)
        client.register_graph("hosts", host)
        for pattern in (path_graph(3), path_graph(4), cycle_graph(4)):
            client.count(pattern, "hosts")
        client.count(path_graph(3), "hosts")  # warm repeat → cache hit
        count_trace_id = client.last_trace_id

        print("\nselected /metrics families after 4 counts:")
        for line in client.metrics_text().splitlines():
            if line.startswith((
                "repro_server_requests_total",
                "repro_tasks_total",
                "repro_scheduler_requests_total",
            )):
                print(f"  {line}")

        # --------------------------------------------------------------
        # 3. the server-side trace for the warm repeat count
        # --------------------------------------------------------------
        recent = client.traces(limit=16)["recent"]
        ours = [t for t in recent if t.get("trace_id") == count_trace_id]
        print(f"\nserver trace for the warm count ({count_trace_id}):")
        print(render_span(ours[0]) if ours else "  (already evicted)")
    set_default_engine(None)


if __name__ == "__main__":
    main()
