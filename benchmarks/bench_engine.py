"""Benchmark — the ``repro.engine`` compile-then-execute pipeline vs the
seed counting path.

The seed dispatcher recomputed the pattern's tree decomposition on *every*
call and had no memory of finished counts.  The engine compiles a pattern
once (closed-form matrix plan, DP instruction tape, or brute force) and
caches counts behind canonical keys, which is exactly what the
one-pattern-many-targets workloads (WL indistinguishability, hom-profile
features, E1/E6) need.

Acceptance gate: the engine must beat the seed path by >= 3x on the
many-targets workload.  ``python benchmarks/bench_engine.py`` asserts it.
"""

from __future__ import annotations

import time

import pytest

from _tables import print_table
from repro.engine import HomEngine
from repro.graphs import cycle_graph, grid_graph, random_graph
from repro.homs import count_homomorphisms_brute, count_homomorphisms_dp


# The seed crossover: brute for <= 5 vertices, fresh-decomposition DP above.
def seed_count(pattern, target):
    if pattern.num_vertices() <= 5:
        return count_homomorphisms_brute(pattern, target)
    return count_homomorphisms_dp(pattern, target)


def workloads():
    """(name, pattern, targets) — each target list is visited twice, the
    access pattern of indistinguishability checks and repeated profiling."""
    hosts = [random_graph(13, 0.3, seed=900 + i) for i in range(12)]
    return [
        ("C6 x 12 targets x 2", cycle_graph(6), hosts * 2),
        ("grid 2x3 x 12 targets x 2", grid_graph(2, 3), hosts * 2),
        ("C8 x 12 targets x 2", cycle_graph(8), hosts * 2),
    ]


def run_experiment() -> float:
    # Matrix plans import numpy lazily; pay that one-time cost outside the
    # timed region so the table reflects steady-state per-call behaviour.
    from repro.graphs.matrices import count_walks

    count_walks(random_graph(3, 0.5, seed=1), 2)

    rows = []
    overall_seed = 0.0
    overall_engine = 0.0
    for name, pattern, targets in workloads():
        start = time.perf_counter()
        expected = [seed_count(pattern, target) for target in targets]
        seed_time = time.perf_counter() - start

        engine = HomEngine()
        start = time.perf_counter()
        (got,) = engine.count_batch([pattern], targets)
        engine_time = time.perf_counter() - start

        assert got == expected
        overall_seed += seed_time
        overall_engine += engine_time
        stats = engine.stats_summary()
        rows.append(
            [
                name,
                engine.plan_for(pattern).describe(),
                f"{seed_time * 1000:.1f} ms",
                f"{engine_time * 1000:.1f} ms",
                f"{seed_time / engine_time:.1f}x",
                f"{stats['count_hits']}/{stats['count_requests']}",
            ],
        )
    print_table(
        "Engine vs seed path — one pattern, many targets (hosts G(13, .3))",
        ["workload", "plan", "seed", "engine", "speedup", "cache hits"],
        rows,
    )
    speedup = overall_seed / overall_engine
    print(f"\noverall speedup: {speedup:.1f}x (gate: >= 3x)")
    assert speedup >= 3.0, f"engine speedup {speedup:.2f}x below the 3x gate"
    return speedup


@pytest.mark.parametrize(
    "index", range(len(workloads())), ids=[name for name, _, _ in workloads()],
)
def test_bench_seed_path(benchmark, index):
    _, pattern, targets = workloads()[index]
    result = benchmark(
        lambda: [seed_count(pattern, target) for target in targets],
    )
    assert all(count >= 0 for count in result)


@pytest.mark.parametrize(
    "index", range(len(workloads())), ids=[name for name, _, _ in workloads()],
)
def test_bench_engine(benchmark, index):
    _, pattern, targets = workloads()[index]

    def engine_pass():
        (row,) = HomEngine().count_batch([pattern], targets)
        return row

    result = benchmark(engine_pass)
    assert result == [seed_count(pattern, target) for target in targets]


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_engine", run_experiment, params={"gate": 3.0}, primary="speedup_vs_seed", higher_is_better=True)
