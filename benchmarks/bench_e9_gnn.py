"""E9 — GNN expressiveness (Section 1.2): order-k GNNs count |Ans| iff
k ≥ sew.

Regenerates the expressiveness matrix (query × GNN order) and, for each
under-powered order, the concrete inexpressiveness certificate: a pair of
graphs the order-k GNN provably cannot separate with different answer
counts.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.gnn import (
    OrderKGNN,
    demonstrate_inexpressiveness,
    gnn_can_count_answers,
    minimum_gnn_order,
)
from repro.graphs import six_cycle, two_triangles
from repro.queries import path_endpoints_query, star_query


def queries():
    return [
        ("S_1", star_query(1)),
        ("S_2", star_query(2)),
        ("S_3", star_query(3)),
        ("P_2", path_endpoints_query(2)),
    ]


def run_experiment() -> None:
    rows = []
    for name, query in queries():
        needed = minimum_gnn_order(query)
        rows.append(
            [name, needed]
            + [gnn_can_count_answers(query, order) for order in (1, 2, 3)],
        )
    print_table(
        "E9a: can a fully-refined order-k GNN count |Ans|? (k ≥ sew)",
        ["query", "min order", "order 1", "order 2", "order 3"],
        rows,
    )

    certificate = demonstrate_inexpressiveness(star_query(2), order=1)
    print("\nE9b: certificate that order-1 GNNs cannot count S_2 answers:")
    print(f"  pair sizes           {certificate.first.num_vertices()} / "
          f"{certificate.second.num_vertices()}")
    print(f"  |Ans| on each side   {certificate.count_first} ≠ "
          f"{certificate.count_second}")
    print(f"  GNN indistinguishable: {certificate.gnn_indistinguishable}")
    print(f"  certificate valid:     {certificate.is_valid}")

    gnn1 = OrderKGNN(1)
    gnn2 = OrderKGNN(2)
    print("\nE9c: order hierarchy on the classical pair 2K3 / C6:")
    print(f"  order-1 distinguishes: {gnn1.distinguishes(two_triangles(), six_cycle())}")
    print(f"  order-2 distinguishes: {gnn2.distinguishes(two_triangles(), six_cycle())}")


@pytest.mark.parametrize("order", [1, 2])
def test_bench_gnn_run(benchmark, order):
    gnn = OrderKGNN(order)
    histogram = benchmark(gnn.readout_histogram, six_cycle())
    assert sum(histogram.values()) == 6 ** order


def test_bench_inexpressiveness_certificate(benchmark):
    certificate = benchmark.pedantic(
        lambda: demonstrate_inexpressiveness(star_query(2), order=1),
        rounds=1,
        iterations=1,
    )
    assert certificate.is_valid


def test_bench_minimum_order_battery(benchmark):
    orders = benchmark(
        lambda: [minimum_gnn_order(query) for _, query in queries()],
    )
    assert orders == [1, 2, 3, 2]


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_e9_gnn", run_experiment)
