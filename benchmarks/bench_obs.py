"""Benchmark — observability overhead on the warm-cache API workload.

Instrumentation must be effectively free where it matters most: the
steady-state serving path, where every count is answered from the
engine's count cache and a ``Session.run`` call is tens of microseconds.
This benchmark runs bench_api's workload twice — tracing+metrics enabled
vs tracing disabled — and gates the enabled/disabled ratio at **< 5%**.

What the enabled path pays per task: one ``Span`` (contextvar set/reset,
ring-buffer push on root exit), one memoised counter increment, and the
``trace`` entry in provenance.  The engine's warm path has *no* spans —
only cold compiles and executes open them — which is why the budget
holds.

A second gate covers the sampling profiler (repro.obs.profile): its
per-thread span-publication bookkeeping lives in replacement
``Span.__enter__``/``__exit__`` methods swapped onto the class only
while a profiler is attached, so the profiler-disabled hot path is the
*original* methods, bit for bit.  The gate enables and disables the
hook, asserts the original method objects are restored, and bounds the
measured residue on the workload at **< 2%** — the profiler-disabled
overhead.  The enabled bookkeeping cost
(only paid while a sampler is actually attached, where sampling noise
dominates anyway) is reported in the same table, ungated.

A third gate covers the health/SLO layer (repro.obs.health + .slo): the
per-task cost with SLO windows and gc-pause tracking enabled vs disabled
is bounded at **< 2%**.  Health probes are structurally absent from the
request path — they only run on /healthz, /readyz, and metric scrapes —
so this gate measures the only hot-path residents: ``observe_slo`` and
the ``gc.callbacks`` pair.

``python benchmarks/bench_obs.py`` asserts all three gates.
"""

from __future__ import annotations

import statistics
import time

import pytest

from _tables import print_table
from repro.api import HomCountTask, Session
from repro.api.executors import LocalExecutor
from repro.engine import HomEngine
from repro.graphs import random_graph
from repro.obs import clear_traces, set_tracing
from repro.obs import trace as _trace
from repro.wl.hom_indistinguishability import bounded_treewidth_patterns

GATE = 1.05          # traced time must stay under 105% of untraced time
GATE_PROFILE = 1.02  # profiler-disabled span path must stay under 2%
GATE_HEALTH = 1.02   # SLO windows + gc tracking must stay under 2%
SAMPLES = 60         # timed workload passes per mode, tightly alternated
PASSES = 9           # best-of for the pytest-benchmark variants


def workload():
    patterns = bounded_treewidth_patterns(2, 5)
    targets = [random_graph(40, 0.12, seed=700 + i) for i in range(12)]
    return patterns, targets


def time_best(fn, passes: int = PASSES) -> float:
    best = float("inf")
    for _ in range(passes):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def build_session():
    patterns, targets = workload()
    engine = HomEngine()
    session = Session(executor=LocalExecutor(engine=engine))
    tasks = [
        HomCountTask(pattern, target)
        for pattern in patterns
        for target in targets
    ]
    for task in tasks:  # warm: plans, counts, target fingerprints
        session.run(task)
    return session, tasks


def interleaved_ratios(session_pass, set_mode, samples: int = SAMPLES):
    """Per-mode minima plus the median of paired per-iteration ratios.

    Shared-machine noise is one-sided (contention only ever slows a
    pass) and drifts by whole percents, so an A…A-then-B…B layout
    measures the weather, not the instrumentation.  Two defences,
    layered: each iteration runs both modes back to back (alternating
    order), so *sustained* contention slows both halves of a pair about
    equally and cancels in the per-pair ratio; the **median** over all
    pairs then shrugs off the bursts that land inside a single half.
    The per-mode minima are also returned for the absolute-time tables.
    """
    best = {False: float("inf"), True: float("inf")}
    ratios = []
    for sample in range(samples):
        order = (False, True) if sample % 2 == 0 else (True, False)
        timed = {}
        for mode in order:
            set_mode(mode)
            start = time.perf_counter()
            session_pass()
            timed[mode] = time.perf_counter() - start
            best[mode] = min(best[mode], timed[mode])
        ratios.append(timed[True] / timed[False])
    return best, statistics.median(ratios)


def run_experiment() -> float:
    session, tasks = build_session()

    def session_pass():
        for task in tasks:
            session.run(task)

    previous = set_tracing(True)
    try:
        # Sanity: the traced path really carries a span tree.
        traced_result = session.run(tasks[0])
        assert traced_result.trace is not None
        assert traced_result.trace.name == "task.hom-count"
        session_pass()  # shake out lazy imports before the first sample
        best, ratio = interleaved_ratios(session_pass, set_tracing)
    finally:
        set_tracing(previous)
        clear_traces()

    disabled, enabled = best[False], best[True]
    overhead = ratio - 1.0
    calls = len(tasks)
    print_table(
        "Observability overhead — warm-cache Session.run workload",
        ["workload", "tracing off", "tracing on", "per call", "overhead"],
        [
            [
                f"{calls} warm tasks (bench_api workload)",
                f"{disabled * 1000:.2f} ms",
                f"{enabled * 1000:.2f} ms",
                f"{(enabled - disabled) / calls * 1e6:.2f} us",
                f"{overhead * 100:+.1f}%",
            ],
        ],
    )
    print(
        f"\nmedian paired enabled/disabled ratio over {SAMPLES} interleaved "
        f"samples per mode: {ratio:.3f} (gate: < {GATE:.2f})",
    )
    assert ratio < GATE, (
        f"observability overhead {overhead * 100:.1f}% exceeds the "
        f"{(GATE - 1) * 100:.0f}% gate"
    )

    # ------------------------------------------------------------------
    # profiler-disabled overhead: the hook swaps instrumented
    # __enter__/__exit__ onto Span while a profiler is attached and
    # restores the original method objects when detached — the identity
    # asserts below are the structural proof that the disabled span
    # path carries zero profiler code.  The timing gate then runs the
    # workload after a real enable/disable cycle vs itself and bounds
    # the measured residue at < 2%.  The cycle happens ONCE, not per
    # sample: swapping methods bumps the class's type version, which
    # de-specialises CPython's adaptive bytecode at every `with span`
    # site — a real cost of *toggling*, paid once per profiler session,
    # not of running disabled (one warm-up pass re-specialises).
    # ------------------------------------------------------------------
    previous = set_tracing(True)
    try:
        _trace._set_profile_hook(True)
        _trace._set_profile_hook(False)
        assert _trace.Span.__enter__ is _trace._plain_enter
        assert _trace.Span.__exit__ is _trace._plain_exit
        session_pass()  # re-specialise the swapped call sites
        best, hook_ratio = interleaved_ratios(
            session_pass, lambda mode: None,
        )
        # Enabled bookkeeping cost, reported ungated: it is only ever
        # paid while a sampler thread is attached and sampling.
        enabled_best, enabled_ratio = interleaved_ratios(
            session_pass, _trace._set_profile_hook,
        )
    finally:
        _trace._set_profile_hook(False)
        set_tracing(previous)
        clear_traces()
    hook_off, hook_cycled = best[False], best[True]
    print_table(
        "Profiler hook overhead — span path after enable/disable cycle",
        ["mode", "time", "vs never-enabled", "gated"],
        [
            [
                "never enabled",
                f"{hook_off * 1000:.2f} ms",
                "1.000",
                "-",
            ],
            [
                "disabled after cycle",
                f"{hook_cycled * 1000:.2f} ms",
                f"{hook_ratio:.3f}",
                f"< {GATE_PROFILE:.2f}",
            ],
            [
                "enabled (sampler bookkeeping)",
                f"{enabled_best[True] * 1000:.2f} ms",
                f"{enabled_ratio:.3f}",
                "reported only",
            ],
        ],
    )
    print(
        f"\nmedian paired disabled-after-cycle ratio over {SAMPLES} "
        f"interleaved samples per mode: {hook_ratio:.3f} "
        f"(gate: < {GATE_PROFILE:.2f})",
    )
    assert hook_ratio < GATE_PROFILE, (
        f"profiler-disabled overhead {(hook_ratio - 1) * 100:.1f}% exceeds "
        f"the {(GATE_PROFILE - 1) * 100:.0f}% gate"
    )

    # ------------------------------------------------------------------
    # health/SLO layer overhead: what the enabled path pays per task is
    # one observe_slo — a dict lookup, a bisect into the task kind's
    # rolling window, and a lock — plus a gc.callbacks start/stop pair
    # on the rare passes a collection actually runs.  Health *probes*
    # cost nothing here by construction: they only run on /healthz,
    # /readyz, and metric scrapes, never on the request path.  Tracing
    # is off for this section so the gate isolates the new layer.
    # ------------------------------------------------------------------
    from repro.obs.health import GcPauseTracker
    from repro.obs.slo import configure_slo, set_slo_tracking, tracker

    gc_tracker = GcPauseTracker()

    def set_health(mode: bool) -> None:
        set_slo_tracking(mode)
        if mode:
            gc_tracker.install()
        else:
            gc_tracker.uninstall()

    previous_tracing = set_tracing(False)
    previous_slo_enabled = set_slo_tracking(True)
    previous_objectives = configure_slo("hom-count:p99<250ms,err<1%")
    try:
        set_health(True)
        session_pass()  # warm the hom-count window + its objective bounds
        assert tracker().window("hom-count") is not None
        best, health_ratio = interleaved_ratios(session_pass, set_health)
    finally:
        set_health(False)
        set_slo_tracking(previous_slo_enabled)
        tracker().set_objectives(previous_objectives)
        tracker().reset()
        set_tracing(previous_tracing)
    health_off, health_on = best[False], best[True]
    print_table(
        "Health/SLO overhead — rolling windows + gc tracking on the "
        "same workload",
        ["mode", "time", "per call", "ratio"],
        [
            [
                "slo+gc off",
                f"{health_off * 1000:.2f} ms",
                "-",
                "1.000",
            ],
            [
                "slo+gc on",
                f"{health_on * 1000:.2f} ms",
                f"{(health_on - health_off) / calls * 1e6:.2f} us",
                f"{health_ratio:.3f}",
            ],
        ],
    )
    print(
        f"\nmedian paired slo-on/slo-off ratio over {SAMPLES} interleaved "
        f"samples per mode: {health_ratio:.3f} (gate: < {GATE_HEALTH:.2f})",
    )
    assert health_ratio < GATE_HEALTH, (
        f"health/SLO overhead {(health_ratio - 1) * 100:.1f}% exceeds "
        f"the {(GATE_HEALTH - 1) * 100:.0f}% gate"
    )
    return ratio


def test_bench_tracing_disabled(benchmark):
    session, tasks = build_session()
    previous = set_tracing(False)
    try:
        result = benchmark(
            lambda: [session.run(task).value for task in tasks],
        )
    finally:
        set_tracing(previous)
    assert all(value >= 0 for value in result)


def test_bench_tracing_enabled(benchmark):
    session, tasks = build_session()
    previous = set_tracing(True)
    try:
        result = benchmark(
            lambda: [session.run(task).value for task in tasks],
        )
    finally:
        set_tracing(previous)
        clear_traces()
    assert all(value >= 0 for value in result)


if __name__ == "__main__":
    from _harness import main_record

    main_record(
        "bench_obs",
        run_experiment,
        params={
            "gate_tracing": GATE,
            "gate_profiler_hook": GATE_PROFILE,
            "gate_health_slo": GATE_HEALTH,
            "samples": SAMPLES,
        },
        primary="traced_vs_untraced_ratio",
        higher_is_better=False,
    )
