"""Benchmark — observability overhead on the warm-cache API workload.

Instrumentation must be effectively free where it matters most: the
steady-state serving path, where every count is answered from the
engine's count cache and a ``Session.run`` call is tens of microseconds.
This benchmark runs bench_api's workload twice — tracing+metrics enabled
vs tracing disabled — and gates the enabled/disabled ratio at **< 5%**.

What the enabled path pays per task: one ``Span`` (contextvar set/reset,
ring-buffer push on root exit), one memoised counter increment, and the
``trace`` entry in provenance.  The engine's warm path has *no* spans —
only cold compiles and executes open them — which is why the budget
holds.

``python benchmarks/bench_obs.py`` asserts the gate.
"""

from __future__ import annotations

import time

import pytest

from _tables import print_table
from repro.api import HomCountTask, Session
from repro.api.executors import LocalExecutor
from repro.engine import HomEngine
from repro.graphs import random_graph
from repro.obs import clear_traces, set_tracing
from repro.wl.hom_indistinguishability import bounded_treewidth_patterns

GATE = 1.05    # traced time must stay under 105% of untraced time
SAMPLES = 60   # timed workload passes per mode, tightly alternated
PASSES = 9     # best-of for the pytest-benchmark variants


def workload():
    patterns = bounded_treewidth_patterns(2, 5)
    targets = [random_graph(40, 0.12, seed=700 + i) for i in range(12)]
    return patterns, targets


def time_best(fn, passes: int = PASSES) -> float:
    best = float("inf")
    for _ in range(passes):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def build_session():
    patterns, targets = workload()
    engine = HomEngine()
    session = Session(executor=LocalExecutor(engine=engine))
    tasks = [
        HomCountTask(pattern, target)
        for pattern in patterns
        for target in targets
    ]
    for task in tasks:  # warm: plans, counts, target fingerprints
        session.run(task)
    return session, tasks


def run_experiment() -> None:
    session, tasks = build_session()

    def session_pass():
        for task in tasks:
            session.run(task)

    previous = set_tracing(True)
    try:
        # Sanity: the traced path really carries a span tree.
        traced_result = session.run(tasks[0])
        assert traced_result.trace is not None
        assert traced_result.trace.name == "task.hom-count"
        # Shared-machine noise is one-sided (contention only ever slows a
        # pass) and drifts by whole percents, so an A…A-then-B…B layout
        # measures the weather, not the tracer.  Instead, tightly
        # alternate the two modes and gate on the ratio of per-mode
        # MINIMA: with many interleaved samples both modes get shots at
        # the machine's least-contended moments, so each min converges to
        # the mode's intrinsic floor and the ratio isolates the tracer.
        best = {False: float("inf"), True: float("inf")}
        session_pass()  # shake out lazy imports before the first sample
        for sample in range(SAMPLES):
            order = (False, True) if sample % 2 == 0 else (True, False)
            for mode in order:
                set_tracing(mode)
                start = time.perf_counter()
                session_pass()
                best[mode] = min(best[mode], time.perf_counter() - start)
    finally:
        set_tracing(previous)
        clear_traces()

    disabled, enabled = best[False], best[True]
    ratio = enabled / disabled
    overhead = ratio - 1.0
    calls = len(tasks)
    print_table(
        "Observability overhead — warm-cache Session.run workload",
        ["workload", "tracing off", "tracing on", "per call", "overhead"],
        [
            [
                f"{calls} warm tasks (bench_api workload)",
                f"{disabled * 1000:.2f} ms",
                f"{enabled * 1000:.2f} ms",
                f"{(enabled - disabled) / calls * 1e6:.2f} us",
                f"{overhead * 100:+.1f}%",
            ],
        ],
    )
    print(
        f"\nenabled/disabled ratio of minima over {SAMPLES} interleaved "
        f"samples per mode: {ratio:.3f} (gate: < {GATE:.2f})",
    )
    assert ratio < GATE, (
        f"observability overhead {overhead * 100:.1f}% exceeds the "
        f"{(GATE - 1) * 100:.0f}% gate"
    )


def test_bench_tracing_disabled(benchmark):
    session, tasks = build_session()
    previous = set_tracing(False)
    try:
        result = benchmark(
            lambda: [session.run(task).value for task in tasks],
        )
    finally:
        set_tracing(previous)
    assert all(value >= 0 for value in result)


def test_bench_tracing_enabled(benchmark):
    session, tasks = build_session()
    previous = set_tracing(True)
    try:
        result = benchmark(
            lambda: [session.run(task).value for task in tasks],
        )
    finally:
        set_tracing(previous)
        clear_traces()
    assert all(value >= 0 for value in result)


if __name__ == "__main__":
    run_experiment()
