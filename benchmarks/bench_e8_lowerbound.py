"""E8 — the Section 4 lower-bound pipeline, lemma by lemma.

For each width-2 query the table reports every quantity the proof
manipulates: |cpAns| on both sides of the twisted pair (Lemma 56's strict
gap), |Ans_id| (equal by Lemma 50), |E(X,F,W)| extendable assignments
(equal by Lemma 55), the (k−1)-WL-equivalence verdict, the treewidth-k
hom-count distinguisher, and the clone vector realising the uncoloured
separation (Lemma 40 / Corollary 47).  Also sweeps odd ℓ to show the gap is
not an artefact of the minimal choice.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.core import (
    build_lower_bound_witness,
    colour_prescribed_gap,
    count_extendable_assignments,
    search_clone_separation,
    verify_lower_bound,
)
from repro.queries import (
    path_endpoints_query,
    query_from_atoms,
    star_query,
)


def width_two_queries():
    return [
        ("S_2", star_query(2)),
        ("P_2", path_endpoints_query(2)),
        (
            "triangle-2free",
            query_from_atoms(
                [("x1", "x2"), ("x1", "y"), ("x2", "y")], ["x1", "x2"],
            ),
        ),
        (
            "two-islands",
            query_from_atoms(
                [("x1", "y1"), ("x2", "y1"), ("x2", "y2"), ("x3", "y2")],
                ["x1", "x2", "x3"],
            ),
        ),
    ]


def run_experiment() -> None:
    rows = []
    for name, query in width_two_queries():
        report = verify_lower_bound(query, max_multiplicity=2)
        rows.append(
            [
                name,
                report.witness.ell,
                f"{report.cp_answers[0]} > {report.cp_answers[1]}",
                report.lemma50_holds,
                report.lemma55_holds,
                report.wl_equivalent_below,
                report.distinguished_at_width,
                (
                    f"z={report.clone_separation[0]}: "
                    f"{report.clone_separation[1]} ≠ {report.clone_separation[2]}"
                    if report.clone_separation
                    else "not found (budget)"
                ),
            ],
        )
    print_table(
        "E8: lower-bound pipeline per query (Theorem 24)",
        ["query", "ℓ", "cpAns gap (L56)", "L50", "L55", "(k−1)-WL-eq (L27/35)",
         "k-distinguished", "|Ans| separation (L40)"],
        rows,
    )

    # ℓ-sweep: the coloured gap persists for every odd saturating ℓ.
    sweep_rows = []
    for ell in (3, 5, 7):
        witness = build_lower_bound_witness(star_query(2), ell=ell)
        gap = colour_prescribed_gap(witness)
        extendable = (
            count_extendable_assignments(witness, twisted=False),
            count_extendable_assignments(witness, twisted=True),
        )
        sweep_rows.append(
            [ell, witness.untwisted.num_vertices(), f"{gap[0]} > {gap[1]}",
             extendable == gap],
        )
    print_table(
        "E8b: odd-ℓ sweep for S_2 (gap persists; E = cpAns)",
        ["ℓ", "|V(χ)|", "cpAns gap", "E(X,F,W) matches"],
        sweep_rows,
    )


@pytest.mark.parametrize(
    "index", range(len(width_two_queries())),
    ids=[name for name, _ in width_two_queries()],
)
def test_bench_full_pipeline(benchmark, index):
    _, query = width_two_queries()[index]
    report = benchmark.pedantic(
        lambda: verify_lower_bound(query, max_multiplicity=1, check_wl=False),
        rounds=1,
        iterations=1,
    )
    assert report.coloured_gap_strict


def test_bench_witness_construction(benchmark):
    witness = benchmark(build_lower_bound_witness, star_query(2))
    assert witness.width == 2


def test_bench_clone_search(benchmark):
    witness = build_lower_bound_witness(star_query(2))
    result = benchmark.pedantic(
        search_clone_separation, args=(witness, 1), rounds=1, iterations=1,
    )
    assert result is not None


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_e8_lowerbound", run_experiment)
