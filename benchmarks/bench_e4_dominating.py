"""E4 — Corollary 6/68: counting size-k dominating sets.

Regenerates: (a) the star-query identity
``|Δ_k(G)| = C(n,k) − |Inj((S_k,X_k), Ḡ)|/k!`` on random and structured
graphs, (b) the quantum expansion's coefficients and hsew, and (c) the
WL-dimension k with its invariance/separation witnesses.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.cfi import cfi_pair
from repro.core import (
    count_dominating_sets_brute,
    count_dominating_sets_via_stars,
    dominating_set_wl_dimension,
    star_injective_quantum,
)
from repro.graphs import (
    complement,
    complete_graph,
    cycle_graph,
    petersen_graph,
    random_graph,
    six_cycle,
    star_graph,
    two_triangles,
)


def hosts():
    return [
        ("C6", cycle_graph(6)),
        ("star S5", star_graph(5)),
        ("Petersen", petersen_graph()),
        ("G(8, .3, seed 1)", random_graph(8, 0.3, seed=1)),
        ("G(8, .5, seed 2)", random_graph(8, 0.5, seed=2)),
        ("G(9, .4, seed 3)", random_graph(9, 0.4, seed=3)),
    ]


def run_experiment() -> None:
    rows = []
    for name, graph in hosts():
        for k in (1, 2, 3):
            brute = count_dominating_sets_brute(graph, k)
            via_stars = count_dominating_sets_via_stars(graph, k)
            rows.append([name, k, brute, via_stars, brute == via_stars])
    print_table(
        "E4a: dominating sets via the star identity (Corollary 68)",
        ["graph", "k", "brute |Δ_k|", "star identity", "equal"],
        rows,
    )

    quantum_rows = []
    for k in (1, 2, 3):
        quantum = star_injective_quantum(k)
        coefficients = ", ".join(str(c) for c in quantum.coefficients())
        quantum_rows.append(
            [k, len(quantum.terms), coefficients,
             quantum.hereditary_semantic_extension_width(),
             dominating_set_wl_dimension(k)],
        )
    print_table(
        "E4b: quantum expansion of injective star answers",
        ["k", "#terms", "coefficients", "hsew", "WL-dim(|Δ_k|)"],
        quantum_rows,
    )

    # Invariance (upper bound) and separation (lower bound) witnesses.
    pair = cfi_pair(complete_graph(4))  # 2-WL-equivalent
    invariant = (
        count_dominating_sets_brute(pair.untwisted, 2),
        count_dominating_sets_brute(pair.twisted, 2),
    )
    separated = (
        count_dominating_sets_brute(two_triangles(), 2),
        count_dominating_sets_brute(six_cycle(), 2),
    )
    print("\nE4c: |Δ₂| on a 2-WL-equivalent pair (must agree):", invariant)
    print("E4c: |Δ₂| on a 1-WL-equivalent pair (may differ):", separated)
    print(
        "E4c: quantum star-2 on complements of 2K3/C6:",
        star_injective_quantum(2).count_answers(complement(two_triangles())),
        "vs",
        star_injective_quantum(2).count_answers(complement(six_cycle())),
    )


@pytest.mark.parametrize("k", [1, 2, 3])
def test_bench_star_identity_random(benchmark, k):
    graph = random_graph(8, 0.4, seed=7)
    result = benchmark(count_dominating_sets_via_stars, graph, k)
    assert result == count_dominating_sets_brute(graph, k)


def test_bench_brute_dominating(benchmark):
    graph = random_graph(10, 0.4, seed=8)
    result = benchmark(count_dominating_sets_brute, graph, 3)
    assert result >= 0


def test_bench_quantum_expansion(benchmark):
    quantum = benchmark(star_injective_quantum, 3)
    assert quantum.hereditary_semantic_extension_width() == 3


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_e4_dominating", run_experiment)
