"""E3 — Observation 62 & Corollary 61: acyclic queries vs the WL hierarchy.

Two findings regenerated:

1. every connected acyclic conjunctive query has the same number of answers
   on ``2K3`` and ``C6`` (they are 1-WL-equivalent and acyclic CQs cannot
   even use level 2 on this pair) — including the closed-form products of
   the proof (factor 2 per weight-0 tree edge, factor 3 per positive
   weight);
2. nevertheless the acyclic k-star queries have WL-dimension k (Corollary
   61): acyclicity does *not* bound the WL-dimension.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.core import wl_dimension
from repro.graphs import six_cycle, two_triangles
from repro.queries import (
    count_answers,
    format_query,
    query_from_atoms,
    star_query,
)


def acyclic_battery():
    return [
        ("edge", query_from_atoms([("x1", "x2")], ["x1", "x2"])),
        ("2-star", star_query(2)),
        ("3-star", star_query(3)),
        (
            "path-3 free ends",
            query_from_atoms(
                [("x1", "y1"), ("y1", "y2"), ("y2", "x2")], ["x1", "x2"],
            ),
        ),
        (
            "caterpillar",
            query_from_atoms(
                [("x1", "y1"), ("y1", "x2"), ("x2", "y2"), ("y2", "x3")],
                ["x1", "x2", "x3"],
            ),
        ),
        (
            "free path",
            query_from_atoms(
                [("x1", "x2"), ("x2", "x3")], ["x1", "x2", "x3"],
            ),
        ),
    ]


def run_experiment() -> None:
    rows = []
    for name, query in acyclic_battery():
        on_triangles = count_answers(query, two_triangles())
        on_cycle = count_answers(query, six_cycle())
        rows.append(
            [name, format_query(query, style="datalog"), on_triangles, on_cycle,
             on_triangles == on_cycle],
        )
    print_table(
        "E3a: acyclic CQs cannot separate 2K3 from C6 (Observation 62)",
        ["query", "datalog", "|Ans(2K3)|", "|Ans(C6)|", "equal"],
        rows,
    )

    star_rows = [
        [f"S_{k}", "acyclic (tw 1)", wl_dimension(star_query(k))]
        for k in range(1, 6)
    ]
    print_table(
        "E3b: acyclic star queries have unbounded WL-dimension (Corollary 61)",
        ["query", "shape", "WL-dimension"],
        star_rows,
    )


@pytest.mark.parametrize(
    "index", range(len(acyclic_battery())),
    ids=[name for name, _ in acyclic_battery()],
)
def test_bench_acyclic_counts_agree(benchmark, index):
    name, query = acyclic_battery()[index]
    counts = benchmark(
        lambda: (
            count_answers(query, two_triangles()),
            count_answers(query, six_cycle()),
        ),
    )
    assert counts[0] == counts[1]


def test_bench_star_dimension_sweep(benchmark):
    dims = benchmark(lambda: [wl_dimension(star_query(k)) for k in range(1, 6)])
    assert dims == [1, 2, 3, 4, 5]


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_e3_acyclic", run_experiment)
