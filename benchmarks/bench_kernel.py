"""Benchmark — the integer-indexed graph kernel vs the seed
dict-of-sets path.

The seed ran every hot loop over ``Graph``'s label-space adjacency:
colour refinement rebuilt ``{vertex: interned (colour, sorted-tuple)}``
dicts (one fresh ``frozenset`` per ``neighbours()`` call) for up to n
rounds, and the treewidth DP keyed its tables by tuples of *labels* with
``repr``-sorted bags.  On the structured labels the paper's constructions
use everywhere — CFI vertices ``(w, frozenset(S))``, ℓ-copies ``(y, i)``
— that means hashing and comparing rich Python objects millions of times.

The indexed kernel (`repro.graphs.indexed`) compiles a graph once into
CSR arrays + neighbourhood bitsets and lets refinement, the DP, and the
engine's plans compute entirely over ints.  This bench runs a mixed
WL-refinement + DP-counting workload on rich-label hosts through both
paths (the seed implementations are embedded below, verbatim from the
seed tree) and gates the kernel at >= 3x overall.

On top of that sits the vectorised tier (`repro.kernel`): the DP
instruction tape lowered to batched int64 ndarray steps, and colour
refinement as counting-sort rounds over the CSR arrays.  The second
section here runs a mixed DP+WL workload sized for that tier through
both backends (``force_backend``) and gates numpy at >= 5x over the
indexed pure-Python path.  Its speedup is the record's primary metric;
when numpy is absent the section is skipped and the record is
telemetry-only.  ``python benchmarks/bench_kernel.py`` asserts both
gates.
"""

from __future__ import annotations

import time

import pytest

from _tables import print_table
from repro import kernel
from repro.graphs import (
    cycle_graph,
    grid_graph,
    path_graph,
    random_graph,
    random_tree,
)
from repro.homs import count_homomorphisms_dp, prepared_pattern
from repro.wl import colour_refinement, wl_1_equivalent
from repro.wl.refinement import indexed_colour_partition


# ----------------------------------------------------------------------
# the seed implementations (dict-of-sets, label space), kept verbatim
# ----------------------------------------------------------------------
class _SeedInterner:
    def __init__(self):
        self._palette = {}

    def intern(self, signature):
        if signature not in self._palette:
            self._palette[signature] = len(self._palette)
        return self._palette[signature]


def seed_colour_refinement(graph):
    interner = _SeedInterner()
    colours = {v: interner.intern("uniform") for v in graph.vertices()}
    for _ in range(max(graph.num_vertices(), 1)):
        num_classes = len(set(colours.values()))
        colours = {
            v: interner.intern(
                (colours[v], tuple(sorted(colours[u] for u in graph.neighbours(v)))),
            )
            for v in graph.vertices()
        }
        if len(set(colours.values())) == num_classes:
            break
    return colours


def seed_wl_1_equivalent(first, second):
    if first.num_vertices() != second.num_vertices():
        return False
    interner = _SeedInterner()
    colours_a = {v: interner.intern("uniform") for v in first.vertices()}
    colours_b = {v: interner.intern("uniform") for v in second.vertices()}

    def refine(graph, colours):
        return {
            v: interner.intern(
                (colours[v], tuple(sorted(colours[u] for u in graph.neighbours(v)))),
            )
            for v in graph.vertices()
        }

    def histogram(colours):
        result = {}
        for colour in colours.values():
            result[colour] = result.get(colour, 0) + 1
        return result

    if histogram(colours_a) != histogram(colours_b):
        return False
    for _ in range(max(first.num_vertices(), 1)):
        num_classes = len(set(colours_a.values()) | set(colours_b.values()))
        colours_a = refine(first, colours_a)
        colours_b = refine(second, colours_b)
        if histogram(colours_a) != histogram(colours_b):
            return False
        if len(set(colours_a.values()) | set(colours_b.values())) == num_classes:
            break
    return True


def _seed_bag_order(bag):
    return sorted(bag, key=repr)


def seed_count_dp(pattern, target, root):
    """The seed treewidth DP: label-keyed tables, repr-sorted bags."""
    if pattern.num_vertices() == 0:
        return 1
    if target.num_vertices() == 0:
        return 0
    target_vertices = target.vertices()
    tables = {}
    for node in root.iter_postorder():
        if node.kind == "leaf":
            table = {(): 1}
        elif node.kind == "introduce":
            child = node.children[0]
            child_table = tables.pop(id(child))
            child_order = _seed_bag_order(child.bag)
            order = _seed_bag_order(node.bag)
            vertex = node.vertex
            vertex_position = order.index(vertex)
            neighbour_positions = [
                child_order.index(u)
                for u in pattern.neighbours(vertex)
                if u in child.bag
            ]
            table = {}
            for key, count in child_table.items():
                for image in target_vertices:
                    if all(
                        target.has_edge(key[pos], image)
                        for pos in neighbour_positions
                    ):
                        new_key = key[:vertex_position] + (image,) + key[vertex_position:]
                        table[new_key] = table.get(new_key, 0) + count
        elif node.kind == "forget":
            child = node.children[0]
            child_table = tables.pop(id(child))
            drop = _seed_bag_order(child.bag).index(node.vertex)
            table = {}
            for key, count in child_table.items():
                new_key = key[:drop] + key[drop + 1:]
                table[new_key] = table.get(new_key, 0) + count
        else:  # join
            left, right = node.children
            left_table = tables.pop(id(left))
            right_table = tables.pop(id(right))
            if len(left_table) > len(right_table):
                left_table, right_table = right_table, left_table
            table = {}
            for key, count in left_table.items():
                other = right_table.get(key)
                if other:
                    table[key] = count * other
        tables[id(node)] = table
    return tables[id(root)].get((), 0)


# ----------------------------------------------------------------------
# workload: rich CFI-style labels, the shape the paper's gadgets produce
# ----------------------------------------------------------------------
def _rich_labels(base):
    """CFI-shaped labels ``((w, i), frozenset(S))`` — hashing/sorting
    these is what the seed paid for on every inner-loop step."""
    mapping = {
        v: (("w", v), frozenset({hash(v) % 5, (hash(v) * 3) % 7, "tag"}))
        for v in base.vertices()
    }
    return base.relabelled(mapping)


def rich_host(n, p, seed):
    return _rich_labels(random_graph(n, p, seed=seed))


def rich_path(n):
    """A long path: refinement needs ~n/2 rounds to stabilise, so the
    seed pays the full quadratic round-rebuild cost — the regime the
    worklist refinement collapses to near-linear."""
    return _rich_labels(path_graph(n))


def wl_workload():
    """(graphs to refine, pairs to compare) — each graph refined twice,
    the profile of repeated indistinguishability checks; long-diameter
    hosts (many rounds) mixed with sparse random ones (few rounds)."""
    graphs = [rich_path(450), rich_path(300)]
    graphs += [rich_host(220, 0.04, seed=70 + i) for i in range(2)]
    pairs = []
    for graph in (graphs[0], graphs[2]):
        relabelled = graph.relabelled(
            {v: ("copy", v) for v in graph.vertices()},
        )
        pairs.append((graph, relabelled))
    return graphs * 2, pairs


def dp_workload():
    """(name, pattern, root, targets) — low-treewidth patterns against
    rich-label hosts, visited twice (indistinguishability access shape)."""
    hosts = [rich_host(17, 0.35, seed=400 + i) for i in range(4)]
    patterns = [grid_graph(2, 3), random_tree(9, seed=11)]
    return [
        (
            f"{'grid 2x3' if index == 0 else 'tree(9)'} x {len(hosts)} hosts x 2",
            pattern,
            prepared_pattern(pattern),
            hosts * 2,
        )
        for index, pattern in enumerate(patterns)
    ]


def _partition(colours):
    blocks = {}
    for vertex, colour in colours.items():
        blocks.setdefault(colour, set()).add(vertex)
    return {frozenset(block) for block in blocks.values()}


# ----------------------------------------------------------------------
# the vectorised tier: numpy kernels vs the indexed pure-Python path
# ----------------------------------------------------------------------
def numpy_dp_workload():
    """(name, pattern, hosts) — tape-compiled patterns against hosts
    large enough that the batched ndarray steps amortise their setup."""
    sparse = [random_graph(400, 0.012, seed=900 + i) for i in range(3)]
    sparse += [random_graph(700, 0.006, seed=910 + i) for i in range(2)]
    return [
        ("tree(9)", random_tree(9, seed=11), sparse),
        ("C6", cycle_graph(6), sparse),
    ]


def numpy_wl_workload():
    """Large sparse hosts, pre-indexed — the counting-sort refinement's
    home turf (few rounds, wide frontiers)."""
    return [
        random_graph(16_000, 0.0004, seed=920).to_indexed(),
        random_graph(8_000, 0.0011, seed=921).to_indexed(),
    ]


def _as_partition(colours):
    seen = {}
    return [seen.setdefault(colour, len(seen)) for colour in colours]


def run_numpy_section(rows):
    """Gate the numpy tier at >= 5x over the indexed path; returns the
    mixed-workload speedup (the record's primary metric)."""
    total_python = 0.0
    total_numpy = 0.0

    # --- WL refinement ---------------------------------------------------
    indexed_hosts = numpy_wl_workload()
    with kernel.force_backend("python"):
        start = time.perf_counter()
        python_parts = [
            _as_partition(indexed_colour_partition(g)) for g in indexed_hosts
        ]
        python_time = time.perf_counter() - start
    with kernel.force_backend("numpy"):
        start = time.perf_counter()
        numpy_parts = [
            _as_partition(indexed_colour_partition(g)) for g in indexed_hosts
        ]
        numpy_time = time.perf_counter() - start
    assert numpy_parts == python_parts
    total_python += python_time
    total_numpy += numpy_time
    sizes = "+".join(str(g.n) for g in indexed_hosts)
    rows.append(
        [
            f"1-WL: n={sizes}",
            f"{python_time * 1000:.1f} ms",
            f"{numpy_time * 1000:.1f} ms",
            f"{python_time / numpy_time:.1f}x",
        ],
    )

    # --- treewidth-DP tapes ----------------------------------------------
    for name, pattern, hosts in numpy_dp_workload():
        root = prepared_pattern(pattern)
        with kernel.force_backend("python"):
            start = time.perf_counter()
            expected = [
                count_homomorphisms_dp(pattern, host, root=root)
                for host in hosts
            ]
            python_time = time.perf_counter() - start
        with kernel.force_backend("numpy"):
            start = time.perf_counter()
            got = [
                count_homomorphisms_dp(pattern, host, root=root)
                for host in hosts
            ]
            numpy_time = time.perf_counter() - start
        assert got == expected
        total_python += python_time
        total_numpy += numpy_time
        rows.append(
            [
                f"DP: {name} x {len(hosts)} hosts",
                f"{python_time * 1000:.1f} ms",
                f"{numpy_time * 1000:.1f} ms",
                f"{python_time / numpy_time:.1f}x",
            ],
        )

    speedup = total_python / total_numpy
    assert speedup >= 5.0, (
        f"numpy tier speedup {speedup:.2f}x below the 5x gate"
    )
    return speedup


def run_experiment() -> float:
    rows = []
    overall_seed = 0.0
    overall_indexed = 0.0

    # --- WL refinement + equivalence -------------------------------------
    graphs, pairs = wl_workload()

    start = time.perf_counter()
    seed_partitions = [_partition(seed_colour_refinement(g)) for g in graphs]
    seed_verdicts = [seed_wl_1_equivalent(a, b) for a, b in pairs]
    seed_time = time.perf_counter() - start

    start = time.perf_counter()
    indexed_partitions = [_partition(colour_refinement(g)) for g in graphs]
    indexed_verdicts = [wl_1_equivalent(a, b) for a, b in pairs]
    indexed_time = time.perf_counter() - start

    assert indexed_partitions == seed_partitions
    assert indexed_verdicts == seed_verdicts
    overall_seed += seed_time
    overall_indexed += indexed_time
    rows.append(
        [
            f"1-WL: {len(graphs)} refinements + {len(pairs)} equivalence",
            f"{seed_time * 1000:.1f} ms",
            f"{indexed_time * 1000:.1f} ms",
            f"{seed_time / indexed_time:.1f}x",
        ],
    )

    # --- treewidth-DP counting -------------------------------------------
    for name, pattern, root, targets in dp_workload():
        start = time.perf_counter()
        expected = [seed_count_dp(pattern, target, root) for target in targets]
        seed_time = time.perf_counter() - start

        start = time.perf_counter()
        got = [
            count_homomorphisms_dp(pattern, target, root=root)
            for target in targets
        ]
        indexed_time = time.perf_counter() - start

        assert got == expected
        overall_seed += seed_time
        overall_indexed += indexed_time
        rows.append(
            [
                f"DP: {name}",
                f"{seed_time * 1000:.1f} ms",
                f"{indexed_time * 1000:.1f} ms",
                f"{seed_time / indexed_time:.1f}x",
            ],
        )

    print_table(
        "Indexed kernel vs seed dict-of-sets path — rich CFI-style labels",
        ["workload", "seed", "indexed", "speedup"],
        rows,
    )
    speedup = overall_seed / overall_indexed
    print(f"\noverall speedup: {speedup:.1f}x (gate: >= 3x)")
    assert speedup >= 3.0, f"kernel speedup {speedup:.2f}x below the 3x gate"

    # --- the vectorised tier (primary metric; skipped without numpy) ------
    if kernel.numpy_or_none() is None:
        print(
            "\nnumpy tier unavailable — vectorised section skipped "
            "(record is telemetry-only)",
        )
        return None
    numpy_rows: list[list[str]] = []
    numpy_speedup = run_numpy_section(numpy_rows)
    print_table(
        "Vectorised numpy tier vs indexed pure-Python path — mixed DP+WL",
        ["workload", "python tier", "numpy tier", "speedup"],
        numpy_rows,
    )
    print(f"\nnumpy tier speedup: {numpy_speedup:.1f}x (gate: >= 5x)")
    return numpy_speedup


@pytest.mark.parametrize("index", range(2), ids=["seed", "indexed"])
def test_bench_wl(benchmark, index):
    graphs, pairs = wl_workload()
    if index == 0:
        result = benchmark(
            lambda: [seed_wl_1_equivalent(a, b) for a, b in pairs],
        )
    else:
        result = benchmark(lambda: [wl_1_equivalent(a, b) for a, b in pairs])
    assert all(result)


@pytest.mark.parametrize(
    "index", range(len(dp_workload())), ids=[n for n, _, _, _ in dp_workload()],
)
def test_bench_dp(benchmark, index):
    _, pattern, root, targets = dp_workload()[index]
    result = benchmark(
        lambda: [
            count_homomorphisms_dp(pattern, target, root=root)
            for target in targets
        ],
    )
    assert result == [seed_count_dp(pattern, target, root) for target in targets]


if __name__ == "__main__":
    from _harness import main_record

    main_record(
        "bench_kernel",
        run_experiment,
        params={"gate_indexed_vs_seed": 3.0, "gate_numpy_vs_indexed": 5.0},
        primary="numpy_speedup_vs_indexed",
        higher_is_better=True,
    )
