"""Benchmark telemetry: JSON records per bench + a regression gate.

Every ``bench_*.py`` routes its ``__main__`` through :func:`main_record`,
which runs the bench's ``run_experiment()`` and persists a machine-
readable record to ``BENCH_<name>.json`` at the repo root:

* the workload tables the bench printed (captured structurally via
  ``_tables.print_table`` — raw timings and ratios included);
* an optional **primary metric** (the gated benches return their
  speedup/overhead ratio from ``run_experiment``) with a
  ``higher_is_better`` direction;
* the observability metrics snapshot after the run, so one record also
  carries cache hit counts, phase histograms, and work counters;
* run metadata (python version, wall duration).

The committed records are the perf trajectory of the repo — the same
longitudinal discipline the metrics registry applies to a running
process, applied across commits.  ``python benchmarks/_harness.py check
bench_kernel bench_api ...`` compares each freshly regenerated record
against the version committed at ``HEAD`` and fails when a primary
metric regresses beyond the tolerance (``REPRO_BENCH_TOLERANCE``,
default 0.5 — i.e. a gated ratio may drift 50% with CI noise before the
gate trips; the benches' own absolute asserts stay much tighter).  CI
runs the gated benches, checks, then uploads every record as a workflow
artifact.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

BENCH_DIR = os.path.dirname(os.path.abspath(__file__))
REPO_ROOT = os.path.dirname(BENCH_DIR)
DEFAULT_TOLERANCE = 0.5


def record_path(name: str) -> str:
    return os.path.join(REPO_ROOT, f"BENCH_{name}.json")


def main_record(
    name: str,
    run,
    params: dict | None = None,
    primary: str | None = None,
    higher_is_better: bool = True,
) -> dict:
    """Run a bench's experiment and persist its telemetry record.

    ``run`` is the bench's ``run_experiment`` (gates assert inside it —
    a failed gate still raises before any record is written, so a
    regression can never overwrite a good baseline with a bad one).
    When ``primary`` is named, ``run``'s return value is recorded as the
    regression-gated metric.
    """
    import _tables

    _tables.drain_tables()  # a fresh capture window for this bench
    start = time.perf_counter()
    value = run()
    duration = time.perf_counter() - start
    record: dict = {
        "bench": name,
        "python": "%d.%d.%d" % sys.version_info[:3],
        "duration_s": round(duration, 3),
        "params": dict(params or {}),
        "tables": _tables.drain_tables(),
    }
    if primary is not None and value is not None:
        record["primary"] = {
            "name": primary,
            "value": round(float(value), 6),
            "higher_is_better": bool(higher_is_better),
        }
    try:
        from repro.obs import registry

        record["metrics"] = registry().snapshot()
    except Exception:  # pragma: no cover - obs must never fail a bench
        record["metrics"] = {}
    path = record_path(name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\ntelemetry record written to {os.path.relpath(path, os.getcwd())}")
    return record


# ----------------------------------------------------------------------
# regression comparison against the committed baseline
# ----------------------------------------------------------------------
def load_committed(name: str) -> dict | None:
    """The record committed at HEAD, or None when there is no baseline."""
    result = subprocess.run(
        ["git", "show", f"HEAD:BENCH_{name}.json"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    if result.returncode != 0:
        return None
    try:
        return json.loads(result.stdout)
    except ValueError:
        return None


def check(names: list[str], tolerance: float | None = None) -> int:
    """Compare fresh records against committed baselines; 0 = all pass."""
    if tolerance is None:
        tolerance = float(
            os.environ.get("REPRO_BENCH_TOLERANCE", str(DEFAULT_TOLERANCE)),
        )
    failures: list[str] = []
    for name in names:
        path = record_path(name)
        if not os.path.exists(path):
            failures.append(f"{name}: no record at {path} — run the bench first")
            continue
        with open(path, encoding="utf-8") as handle:
            current = json.load(handle)
        committed = load_committed(name)
        if committed is None:
            print(f"{name}: no committed baseline yet — pass (first record)")
            continue
        current_primary = current.get("primary")
        committed_primary = committed.get("primary")
        if not current_primary or not committed_primary:
            print(f"{name}: record-only (no primary metric) — pass")
            continue
        value = float(current_primary["value"])
        base = float(committed_primary["value"])
        metric = current_primary.get("name", "primary")
        if current_primary.get("higher_is_better", True):
            bound = base * (1.0 - tolerance)
            ok = value >= bound
            detail = (
                f"{metric} {value:.3f} vs baseline {base:.3f} "
                f"(floor {bound:.3f})"
            )
        else:
            bound = base * (1.0 + tolerance)
            ok = value <= bound
            detail = (
                f"{metric} {value:.3f} vs baseline {base:.3f} "
                f"(ceiling {bound:.3f})"
            )
        print(f"{name}: {detail} — {'ok' if ok else 'REGRESSION'}")
        if not ok:
            failures.append(f"{name}: {detail}")
    if failures:
        print("\nbenchmark regressions beyond tolerance "
              f"{tolerance:.2f}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {len(names)} benchmark records within tolerance {tolerance:.2f}")
    return 0


def _main(argv: list[str]) -> int:
    if not argv or argv[0] != "check":
        print(
            "usage: python benchmarks/_harness.py check [--tolerance X] "
            "bench_name [bench_name ...]",
            file=sys.stderr,
        )
        return 2
    args = argv[1:]
    tolerance = None
    if args and args[0] == "--tolerance":
        if len(args) < 2:
            print("--tolerance needs a value", file=sys.stderr)
            return 2
        tolerance = float(args[1])
        args = args[2:]
    if not args:
        print("pass at least one bench name", file=sys.stderr)
        return 2
    return check(args, tolerance=tolerance)


if __name__ == "__main__":
    raise SystemExit(_main(sys.argv[1:]))
