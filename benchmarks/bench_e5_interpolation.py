"""E5 — Lemma 22 / Observation 23: answer counts from homomorphism counts.

Regenerates the interpolation experiment: for each (query, host) pair, the
power sums ``p_ℓ = |Hom(F_ℓ(H,X), G)|`` are fed to the exact Prony/Hankel
solver, and the recovered ``|Ans|`` is compared against direct enumeration.
Also reports the number of distinct extension sizes (the degree of the
recovery problem).
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.graphs import complete_graph, cycle_graph, petersen_graph, random_graph
from repro.queries import (
    count_answers,
    count_answers_by_interpolation,
    extension_counts,
    hom_count_of_ell_copy,
    path_endpoints_query,
    star_query,
)


def instances():
    return [
        ("S_2", star_query(2), "C5", cycle_graph(5)),
        ("S_2", star_query(2), "K5", complete_graph(5)),
        ("S_2", star_query(2), "G(7,.4,s11)", random_graph(7, 0.4, seed=11)),
        ("S_3", star_query(3), "G(6,.5,s12)", random_graph(6, 0.5, seed=12)),
        ("S_3", star_query(3), "Petersen", petersen_graph()),
        ("P_2", path_endpoints_query(2), "G(6,.4,s13)", random_graph(6, 0.4, seed=13)),
    ]


def run_experiment() -> None:
    rows = []
    for query_name, query, host_name, host in instances():
        direct = count_answers(query, host)
        interpolated = count_answers_by_interpolation(query, host)
        profile = extension_counts(query, host)
        distinct = len(set(profile))
        p1 = hom_count_of_ell_copy(query, host, 1)
        rows.append(
            [query_name, host_name, p1, distinct, direct, interpolated,
             direct == interpolated],
        )
    print_table(
        "E5: |Ans| recovered from |Hom(F_ℓ)| (Lemma 22)",
        ["query", "host", "p_1 = |Hom(F_1)|", "distinct |Ext|", "direct",
         "interpolated", "equal"],
        rows,
    )


@pytest.mark.parametrize(
    "index", range(len(instances())),
    ids=[f"{q}-on-{h}" for q, _, h, _ in instances()],
)
def test_bench_interpolation(benchmark, index):
    _, query, _, host = instances()[index]
    result = benchmark.pedantic(
        count_answers_by_interpolation, args=(query, host),
        rounds=1, iterations=1,
    )
    assert result == count_answers(query, host)


def test_bench_direct_counting_baseline(benchmark):
    query = star_query(2)
    host = random_graph(7, 0.4, seed=11)
    result = benchmark(count_answers, query, host)
    assert result == count_answers_by_interpolation(query, host)


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_e5_interpolation", run_experiment)
