"""Ablation — WL equivalence: refinement algorithm vs hom-count oracle.

Two decision procedures for ``G ≅_k G'`` (Definition 19):

* the folklore k-WL refinement (exact, cost |V|^k per round);
* homomorphism counts from all connected tw ≤ k patterns up to a size
  bound (sound for separation; complete only in the limit).

This bench measures both on the pairs the experiments use and records
where the oracle's bounded battery already suffices.
"""

from __future__ import annotations

import time

import pytest

from _tables import print_table
from repro.cfi import cfi_pair
from repro.graphs import complete_graph, six_cycle, two_triangles
from repro.wl import (
    bounded_treewidth_patterns,
    hom_indistinguishable_up_to,
    k_wl_equivalent,
)


def instances():
    k3_pair = cfi_pair(complete_graph(3))
    k4_pair = cfi_pair(complete_graph(4))
    return [
        ("2K3 / C6", 1, two_triangles(), six_cycle(), True),
        ("2K3 / C6", 2, two_triangles(), six_cycle(), False),
        ("chi(K3) pair", 1, k3_pair.untwisted, k3_pair.twisted, True),
        ("chi(K3) pair", 2, k3_pair.untwisted, k3_pair.twisted, False),
        ("chi(K4) pair", 2, k4_pair.untwisted, k4_pair.twisted, True),
    ]


def run_experiment() -> None:
    rows = []
    for name, level, first, second, expected in instances():
        start = time.perf_counter()
        refinement_verdict = k_wl_equivalent(first, second, level)
        refinement_time = time.perf_counter() - start
        start = time.perf_counter()
        oracle_verdict = hom_indistinguishable_up_to(first, second, level, 5)
        oracle_time = time.perf_counter() - start
        rows.append(
            [
                name,
                level,
                refinement_verdict,
                f"{refinement_time * 1000:.1f} ms",
                oracle_verdict,
                f"{oracle_time * 1000:.1f} ms",
                refinement_verdict == expected,
            ],
        )
    print_table(
        "Ablation: k-WL refinement vs hom-indistinguishability oracle (≤5v patterns)",
        ["pair", "k", "refinement", "time", "oracle", "time", "matches theory"],
        rows,
    )
    for k in (1, 2):
        patterns = bounded_treewidth_patterns(k, 5)
        print(f"  oracle battery size (tw ≤ {k}, ≤ 5 vertices): {len(patterns)}")


@pytest.mark.parametrize("level", [1, 2])
def test_bench_refinement(benchmark, level):
    pair = cfi_pair(complete_graph(3))
    result = benchmark(k_wl_equivalent, pair.untwisted, pair.twisted, level)
    assert result == (level == 1)


@pytest.mark.parametrize("level", [1, 2])
def test_bench_oracle(benchmark, level):
    pair = cfi_pair(complete_graph(3))
    result = benchmark.pedantic(
        hom_indistinguishable_up_to,
        args=(pair.untwisted, pair.twisted, level, 4),
        rounds=1,
        iterations=1,
    )
    assert result == (level == 1)


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_ablation_wl", run_experiment)
