"""Pytest hooks for the benchmark suite (directory is kept importable)."""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
