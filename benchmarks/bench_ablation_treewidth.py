"""Ablation — treewidth: exact branch-and-bound vs greedy heuristics.

Records solution quality (heuristic width vs exact width) and time across
the graph families the experiments rely on (F_ℓ graphs, CFI gadgets,
Γ extensions, random hosts).
"""

from __future__ import annotations

import time

import pytest

from _tables import print_table
from repro.cfi import cfi_graph
from repro.graphs import (
    complete_bipartite_graph,
    complete_graph,
    grid_graph,
    petersen_graph,
    random_graph,
)
from repro.queries import ell_copy, star_query
from repro.treewidth import heuristic_treewidth_upper_bound, treewidth


def instances():
    return [
        ("K_{3,3} = F_3(S_3)", complete_bipartite_graph(3, 3)),
        ("F_5(S_4)", ell_copy(star_query(4), 5)[0]),
        ("chi(K4)", cfi_graph(complete_graph(4))),
        ("grid 3x4", grid_graph(3, 4)),
        ("Petersen", petersen_graph()),
        ("G(12,.3,s41)", random_graph(12, 0.3, seed=41)),
        ("G(14,.25,s42)", random_graph(14, 0.25, seed=42)),
    ]


def run_experiment() -> None:
    rows = []
    for name, graph in instances():
        start = time.perf_counter()
        heuristic, _ = heuristic_treewidth_upper_bound(graph)
        heuristic_time = time.perf_counter() - start
        start = time.perf_counter()
        exact = treewidth(graph)
        exact_time = time.perf_counter() - start
        rows.append(
            [
                name,
                graph.num_vertices(),
                exact,
                heuristic,
                heuristic == exact,
                f"{heuristic_time * 1000:.1f} ms",
                f"{exact_time * 1000:.1f} ms",
            ],
        )
    print_table(
        "Ablation: treewidth — heuristics vs exact branch & bound",
        ["graph", "|V|", "exact tw", "heuristic ub", "tight", "heur time",
         "exact time"],
        rows,
    )


@pytest.mark.parametrize(
    "index", range(len(instances())), ids=[name for name, _ in instances()],
)
def test_bench_exact(benchmark, index):
    _, graph = instances()[index]
    width = benchmark.pedantic(treewidth, args=(graph,), rounds=1, iterations=1)
    assert width >= 0


@pytest.mark.parametrize(
    "index", range(len(instances())), ids=[name for name, _ in instances()],
)
def test_bench_heuristic(benchmark, index):
    _, graph = instances()[index]
    width, _ = benchmark(heuristic_treewidth_upper_bound, graph)
    assert width >= treewidth(graph)


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_ablation_treewidth", run_experiment)
