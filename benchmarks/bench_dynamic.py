"""Benchmark — incremental maintenance vs full recompute per batch.

Sliding-window workload: a ~2k-edge random target takes batches of edge
inserts while the oldest window edges expire, and homomorphism counts
for paths, a cycle, and a star must stay current after every batch —
the append-heavy regime of streaming deployments (cardinality
estimation, KG analytics over growing corpora).

Two ways to stay current:

* **full recompute per batch** — what the repo did before
  ``repro.dynamic``: every batch produces a new target value, so every
  count re-fingerprints the target and re-executes its engine plan
  (matrix power / treewidth DP) from scratch;
* **incremental maintenance** — a :class:`DynamicGraph` patches the
  CSR/bitset index per batch and :class:`MaintainedCount` handles apply
  inclusion–exclusion deltas over the changed edges only.

Both streams are asserted equal at every batch, and the incremental path
is gated at >= 5x overall.  ``python benchmarks/bench_dynamic.py``
asserts it.
"""

from __future__ import annotations

import random
import time

import pytest

from _tables import print_table
from repro.dynamic import DynamicGraph, MaintainedCount, UpdateBatch
from repro.engine import HomEngine
from repro.graphs import cycle_graph, path_graph, random_graph, star_graph

TARGET_VERTICES = 600
TARGET_EDGES = 2000
BATCHES = 6
BATCH_INSERTS = 24  # expiries match once the window has filled
GATE = 5.0


def window_patterns():
    return [
        ("P4", path_graph(4)),
        ("P5", path_graph(5)),
        ("C4", cycle_graph(4)),
        ("S3", star_graph(3)),
    ]


def base_target():
    p = 2 * TARGET_EDGES / (TARGET_VERTICES * (TARGET_VERTICES - 1))
    return random_graph(TARGET_VERTICES, p, seed=1)


def sliding_window_batches(host, batches=BATCHES, inserts=BATCH_INSERTS):
    """Deterministic (adds, removes) batches: fresh edges arrive, the
    oldest previously inserted edges expire."""
    rng = random.Random(7)
    vertices = list(host.vertices())
    current = host.copy()
    window: list[tuple] = []
    plan = []
    for _ in range(batches):
        adds: list[tuple] = []
        while len(adds) < inserts:
            u, v = rng.sample(vertices, 2)
            if current.has_edge(u, v) or (u, v) in adds or (v, u) in adds:
                continue
            adds.append((u, v))
        removes = window[:inserts]
        for u, v in adds:
            current.add_edge(u, v)
        for u, v in removes:
            current.remove_edge(u, v)
        window = window[len(removes):] + adds
        plan.append((adds, removes))
    return plan


def run_full_recompute(host, batch_plan):
    """Per batch: mutate a plain Graph, recount every pattern from
    scratch through the engine (new content ⇒ cache misses; plans warm
    after the first batch — the baseline is not handicapped)."""
    engine = HomEngine()
    patterns = window_patterns()
    current = host.copy()
    for _, pattern in patterns:  # warm the plan cache off the clock
        engine.plan_for(pattern)
    values = []
    start = time.perf_counter()
    for adds, removes in batch_plan:
        for u, v in adds:
            current.add_edge(u, v)
        for u, v in removes:
            current.remove_edge(u, v)
        values.append([engine.count(pattern, current) for _, pattern in patterns])
    return time.perf_counter() - start, values


def run_incremental(host, batch_plan):
    """Per batch: one DynamicGraph.apply (index patch + subscribed delta
    refreshes), then read the maintained values."""
    engine = HomEngine()
    dynamic = DynamicGraph(host, history_limit=2)
    handles = [
        MaintainedCount(pattern, dynamic, engine=engine)
        for _, pattern in window_patterns()
    ]  # initial counts happen here, off the clock (both paths start warm)
    values = []
    start = time.perf_counter()
    for adds, removes in batch_plan:
        dynamic.apply(UpdateBatch.build(add_edges=adds, remove_edges=removes))
        values.append([handle.value for handle in handles])
    elapsed = time.perf_counter() - start
    return elapsed, values, dynamic


def run_experiment() -> float:
    host = base_target()
    batch_plan = sliding_window_batches(host)
    changed = sum(len(a) + len(r) for a, r in batch_plan)

    recompute_time, recompute_values = run_full_recompute(host, batch_plan)
    incremental_time, incremental_values, dynamic = run_incremental(
        host, batch_plan,
    )
    assert incremental_values == recompute_values, (
        "maintained counts diverged from full recompute"
    )
    assert dynamic.stats.index_recompiles == 0
    assert dynamic.stats.delta_fallbacks == 0

    names = [name for name, _ in window_patterns()]
    rows = [
        [
            f"sliding window: {len(batch_plan)} batches, "
            f"{changed} changed edges, counts {'/'.join(names)}",
            f"{recompute_time * 1000:.0f} ms",
            f"{incremental_time * 1000:.0f} ms",
            f"{recompute_time / incremental_time:.1f}x",
        ],
    ]
    print_table(
        f"Incremental maintenance vs full recompute per batch — "
        f"G({host.num_vertices()}, m={host.num_edges()})",
        ["workload", "recompute", "incremental", "speedup"],
        rows,
    )
    print(
        f"\ndynamic stats: patches={dynamic.stats.index_patches} "
        f"recompiles={dynamic.stats.index_recompiles} "
        f"deltas={dynamic.stats.deltas_applied} "
        f"fallbacks={dynamic.stats.delta_fallbacks}",
    )
    speedup = recompute_time / incremental_time
    print(f"overall speedup: {speedup:.1f}x (gate: >= {GATE:.0f}x)")
    assert speedup >= GATE, (
        f"incremental speedup {speedup:.2f}x below the {GATE:.0f}x gate"
    )
    return speedup


@pytest.fixture(scope="module")
def workload():
    host = base_target()
    return host, sliding_window_batches(host)


def test_bench_full_recompute(benchmark, workload):
    host, batch_plan = workload
    _, values = benchmark(lambda: run_full_recompute(host, batch_plan))
    assert len(values) == BATCHES


def test_bench_incremental(benchmark, workload):
    host, batch_plan = workload
    _, values, _ = benchmark(lambda: run_incremental(host, batch_plan))
    assert len(values) == BATCHES


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_dynamic", run_experiment, params={"gate": 5.0}, primary="speedup_vs_recompute", higher_is_better=True)
