"""E2 — Corollary 2: k-WL-equivalence ⇔ Ψ_k-indistinguishability.

For 1-WL and 2-WL-equivalent graph pairs, every connected query with at
least one free variable and sew ≤ k agrees; at level k+1 a separating query
exists.  Batteries enumerate all queries on ≤ 3/4 variables.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.cfi import cfi_pair
from repro.core import psi_indistinguishable, query_battery, separating_query
from repro.graphs import complete_graph, six_cycle, two_triangles
from repro.queries import format_query


def pairs_for_level() -> list[tuple[str, int, object, object]]:
    k4_pair = cfi_pair(complete_graph(4))
    return [
        ("2K3 / C6", 1, two_triangles(), six_cycle()),
        ("chi(K4) twisted pair", 2, k4_pair.untwisted, k4_pair.twisted),
    ]


def run_experiment() -> None:
    rows = []
    for name, level, first, second in pairs_for_level():
        battery_at = query_battery(level, max_vertices=3)
        agree = psi_indistinguishable(first, second, battery_at)
        battery_above = query_battery(level + 1, max_vertices=3)
        separation = separating_query(first, second, battery_above)
        rows.append(
            [
                name,
                level,
                len(battery_at),
                agree,
                (
                    format_query(separation[0], style="datalog")
                    if separation
                    else "none ≤ size bound"
                ),
                f"{separation[1]} vs {separation[2]}" if separation else "-",
            ],
        )
    print_table(
        "E2: k-WL ⇔ Ψ_k-indistinguishability (Corollary 2)",
        ["pair (k-WL-equivalent)", "k", "|Ψ_k battery|", "all agree", "separating query (sew k+1)", "counts"],
        rows,
    )


@pytest.mark.parametrize("level", [1, 2])
def test_bench_battery_construction(benchmark, level):
    result = benchmark.pedantic(
        lambda: query_battery(level, max_vertices=3), rounds=1, iterations=1,
    )
    assert result


def test_bench_psi_check_classic_pair(benchmark):
    battery = query_battery(1, max_vertices=3)
    result = benchmark(
        psi_indistinguishable, two_triangles(), six_cycle(), battery,
    )
    assert result


def test_bench_separating_query_search(benchmark):
    battery = query_battery(2, max_vertices=3)
    result = benchmark(
        separating_query, two_triangles(), six_cycle(), battery,
    )
    assert result is not None


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_e2_corollary2", run_experiment)
