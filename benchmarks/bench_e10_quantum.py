"""E10 — Corollary 5: the WL-dimension of a quantum query is hsew.

Regenerates: (a) hsew/WL-dimension for a family of quantum queries
(UCQ translations, injective expansions, hand-built combinations);
(b) the upper bound on a 2-WL-equivalent pair; (c) the tensor-product
separation idea on 1-WL-equivalent complements.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from _tables import print_table
from repro.cfi import cfi_pair
from repro.core import (
    QuantumQuery,
    injective_answers_quantum,
    star_injective_quantum,
    union_to_quantum,
)
from repro.graphs import complement, complete_graph, six_cycle, two_triangles
from repro.queries import path_endpoints_query, relabel_query, star_query


def quantum_instances():
    renamed_path = relabel_query(
        path_endpoints_query(2),
        {"v1": "x1", "v2": "a", "v3": "b", "v4": "x2"},
    )
    return [
        ("S_2 alone", QuantumQuery([(1, star_query(2))])),
        ("2·S_2 − 3·S_3", QuantumQuery([(2, star_query(2)), (-3, star_query(3))])),
        ("Inj-expansion of S_3", star_injective_quantum(3)),
        ("UCQ: S_2 ∨ P_2", union_to_quantum([star_query(2), renamed_path])),
        ("Inj-expansion of P_1", injective_answers_quantum(path_endpoints_query(1))),
    ]


def run_experiment() -> None:
    rows = []
    for name, quantum in quantum_instances():
        rows.append(
            [
                name,
                len(quantum.terms),
                quantum.hereditary_semantic_extension_width(),
                quantum.wl_dimension(),
            ],
        )
    print_table(
        "E10a: WL-dimension of quantum queries = hsew (Corollary 5)",
        ["quantum query", "#constituents", "hsew", "WL-dim"],
        rows,
    )

    pair = cfi_pair(complete_graph(4))  # 2-WL-equivalent
    rows = []
    for name, quantum in quantum_instances():
        if quantum.hereditary_semantic_extension_width() > 2:
            continue
        rows.append(
            [
                name,
                str(quantum.count_answers(pair.untwisted)),
                str(quantum.count_answers(pair.twisted)),
            ],
        )
    print_table(
        "E10b: hsew ≤ 2 quantum queries agree on the 2-WL-equivalent χ(K4) pair",
        ["quantum query", "untwisted", "twisted"],
        rows,
    )

    first = complement(two_triangles())
    second = complement(six_cycle())
    quantum = star_injective_quantum(2)
    print(
        "\nE10c: hsew-2 quantum query separating a 1-WL-equivalent pair "
        "(complements of 2K3/C6):",
        quantum.count_answers(first),
        "vs",
        quantum.count_answers(second),
    )

    # E10d — the proof's tensor trick, executed: a quantum query engineered
    # to cancel on the CFI pair is un-cancelled by tensoring with a helper.
    from repro.core.quantum_witness import (
        build_cancelling_quantum,
        quantum_lower_bound_witness,
    )
    from repro.core.witnesses import build_lower_bound_witness, cloned_pair

    witness = build_lower_bound_witness(star_query(2))
    pair = cloned_pair(witness, (1, 1))[:2]
    cancelling = build_cancelling_quantum(pair)
    result = quantum_lower_bound_witness(cancelling, helper_max_vertices=3)
    print("\nE10d: tensor trick (Corollary 5 proof):")
    print(
        f"  engineered quantum cancels on the base pair: "
        f"{cancelling.count_answers(pair[0]) == cancelling.count_answers(pair[1])}",
    )
    print(
        f"  helper H = {result.helper!r} un-cancels: "
        f"{result.value_first} ≠ {result.value_second}",
    )


@pytest.mark.parametrize(
    "index", range(len(quantum_instances())),
    ids=[name for name, _ in quantum_instances()],
)
def test_bench_quantum_evaluation(benchmark, index):
    _, quantum = quantum_instances()[index]
    host = complete_graph(5)
    value = benchmark(quantum.count_answers, host)
    assert isinstance(value, Fraction)


def test_bench_union_translation(benchmark):
    renamed_path = relabel_query(
        path_endpoints_query(2),
        {"v1": "x1", "v2": "a", "v3": "b", "v4": "x2"},
    )
    quantum = benchmark(union_to_quantum, [star_query(2), renamed_path])
    assert not quantum.is_zero()


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_e10_quantum", run_experiment)
