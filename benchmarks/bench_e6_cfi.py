"""E6 — CFI machinery: Lemma 26 (parity), Lemma 27 (WL-equivalence),
Lemma 34/35 (cloning).

Regenerates the gadget table: per base graph, the CFI pair sizes, the parity
isomorphism checks, the WL-equivalence level, and the distinguishing hom
count at treewidth level.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.cfi import cfi_graph, cfi_pair, clone_colour_blocks
from repro.graphs import (
    are_isomorphic,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    prism_graph,
)
from repro.homs import count_homomorphisms
from repro.treewidth import treewidth
from repro.wl import k_wl_equivalent


def bases():
    return [
        ("K3", complete_graph(3)),
        ("C5", cycle_graph(5)),
        ("K_{2,3}", complete_bipartite_graph(2, 3)),
        ("K4", complete_graph(4)),
        ("prism_3", prism_graph(3)),
    ]


def run_experiment() -> None:
    rows = []
    for name, base in bases():
        width = treewidth(base)
        pair = cfi_pair(base)
        level = width - 1
        equivalent_below = (
            k_wl_equivalent(pair.untwisted, pair.twisted, level)
            if 1 <= level <= 2
            else "(level > 2: see hom oracle)"
        )
        hom_untwisted = count_homomorphisms(base, pair.untwisted)
        hom_twisted = count_homomorphisms(base, pair.twisted)
        double = cfi_graph(base, tuple(base.vertices()[:2]))
        rows.append(
            [
                name,
                width,
                pair.untwisted.num_vertices(),
                are_isomorphic(pair.untwisted, double),
                not are_isomorphic(pair.untwisted, pair.twisted),
                equivalent_below,
                f"{hom_untwisted} > {hom_twisted}",
            ],
        )
    print_table(
        "E6: CFI pairs (Lemmas 26/27 + Theorem 32 gap)",
        ["base F", "tw(F)", "|V(χ)|", "χ(F,∅)≅χ(F,{u,v})", "χ(F,∅)≇χ(F,{w})",
         f"(tw−1)-WL-equiv", "|Hom(F,·)| gap"],
        rows,
    )

    # Cloning preserves equivalence (Lemma 35) — spot table.
    base = complete_graph(3)
    pair = cfi_pair(base)
    clone_rows = []
    for z in (1, 2, 3):
        cloned_untwisted = clone_colour_blocks(
            pair.untwisted, pair.untwisted_colouring, [0], [z],
        )
        cloned_twisted = clone_colour_blocks(
            pair.twisted, pair.twisted_colouring, [0], [z],
        )
        clone_rows.append(
            [
                f"z = ({z},)",
                cloned_untwisted.num_vertices(),
                k_wl_equivalent(cloned_untwisted, cloned_twisted, 1),
            ],
        )
    print_table(
        "E6b: cloning preserves (t−1)-WL-equivalence (Lemma 35, base K3)",
        ["clone vector", "|V|", "1-WL-equivalent"],
        clone_rows,
    )


@pytest.mark.parametrize(
    "index", range(len(bases())), ids=[name for name, _ in bases()],
)
def test_bench_cfi_construction(benchmark, index):
    _, base = bases()[index]
    graph = benchmark(cfi_graph, base, (base.vertices()[0],))
    assert graph.num_vertices() > 0


def test_bench_parity_isomorphism_check(benchmark):
    base = cycle_graph(5)
    untwisted = cfi_graph(base)
    double = cfi_graph(base, (0, 2))
    assert benchmark(are_isomorphic, untwisted, double)


def test_bench_wl_equivalence_k4_pair(benchmark):
    pair = cfi_pair(complete_graph(4))
    result = benchmark.pedantic(
        k_wl_equivalent, args=(pair.untwisted, pair.twisted, 2),
        rounds=1, iterations=1,
    )
    assert result


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_e6_cfi", run_experiment)
