"""Benchmark — cluster throughput scaling, 1 worker vs 4 workers.

The cluster's claim: the router fans CPU-bound counting over worker
*processes*, so adding workers adds real cores — a single asyncio
process is pinned to one GIL no matter how many scheduler tasks it runs.

Workload: many **distinct** (pattern, target-dataset) counting requests
fired from a client thread pool — the anti-coalescing shape, since
single-flight and caches cannot collapse distinct keys; every request is
genuine compile-or-execute work.  Each topology gets its own fresh
workers and no shared ``data_dir``, so the 4-worker run cannot warm up
from the 1-worker run's persistent tier.

Acceptance gate: ≥3x throughput at 4 workers vs 1 — but the gate needs 4
real cores.  On smaller machines (CI's low-core fallback) the experiment
records telemetry only: ``run_experiment`` returns ``None``, the harness
writes a record without a primary metric, and ``_harness.py check``
passes it as record-only.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor

from _tables import print_table
from repro.graphs import cycle_graph, path_graph, random_graph
from repro.service.client import ServiceClient

#: Cores needed for the 4-worker topology to show real scaling.
GATE_CORES = 4
GATE = 3.0
REQUESTS = 96
CLIENT_THREADS = 16


def request_mix():
    """Distinct (pattern, dataset) pairs — nothing coalesces."""
    patterns = [path_graph(n) for n in range(3, 9)] + [
        cycle_graph(n) for n in range(4, 10)
    ]
    datasets = [f"host-{i}" for i in range(8)]
    pairs = [
        (patterns[(i * 7 + j) % len(patterns)], datasets[j % len(datasets)])
        for i in range(REQUESTS // len(datasets))
        for j in range(len(datasets))
    ]
    return pairs[:REQUESTS]


def hosts():
    return {
        f"host-{i}": random_graph(30, 0.3, seed=900 + i) for i in range(8)
    }


def run_topology(workers: int, pairs, host_graphs) -> tuple[float, list[int]]:
    """Throughput (requests/s) of one fresh topology over the workload."""
    from repro.cluster import Cluster

    with Cluster(workers=workers, scheduler_workers=4) as cluster:
        setup = ServiceClient(port=cluster.port, timeout=120.0)
        setup.wait_ready(timeout=60.0)
        for name, graph in host_graphs.items():
            setup.register_graph(name, graph)

        def one(pair):
            pattern, dataset = pair
            client = ServiceClient(port=cluster.port, timeout=120.0)
            return client.count(pattern, dataset)["count"]

        start = time.perf_counter()
        with ThreadPoolExecutor(max_workers=CLIENT_THREADS) as pool:
            values = list(pool.map(one, pairs))
        elapsed = time.perf_counter() - start
    return len(pairs) / elapsed, values


def run_experiment() -> float | None:
    cores = os.cpu_count() or 1
    pairs = request_mix()
    host_graphs = hosts()

    single_rps, single_values = run_topology(1, pairs, host_graphs)
    quad_rps, quad_values = run_topology(4, pairs, host_graphs)
    assert quad_values == single_values  # identical answers either way

    scaling = quad_rps / single_rps
    gated = cores >= GATE_CORES
    rows = [
        ["cores", cores],
        ["requests", len(pairs)],
        ["client threads", CLIENT_THREADS],
        ["1 worker", f"{single_rps:.1f} req/s"],
        ["4 workers", f"{quad_rps:.1f} req/s"],
        ["scaling", f"{scaling:.2f}x"],
        ["gate", f">= {GATE}x" if gated else "telemetry only (<4 cores)"],
    ]
    print_table(
        f"Cluster scaling 1 -> 4 workers — {len(pairs)} distinct requests",
        ["metric", "value"],
        rows,
    )
    if not gated:
        print(
            f"\n{cores} core(s) < {GATE_CORES}: workers share cores, the "
            "scaling gate is physically meaningless here — recording "
            "telemetry without a primary metric.",
        )
        return None
    print(f"\nscaling: {scaling:.2f}x (gate: >= {GATE}x)")
    assert scaling >= GATE, (
        f"cluster scaling {scaling:.2f}x below the {GATE}x gate at 4 workers"
    )
    return scaling


def test_cluster_answers_match_single_worker():
    pairs = request_mix()[:12]
    host_graphs = {k: v for k, v in list(hosts().items())[:4]}
    pairs = [(p, d) for p, d in pairs if d in host_graphs]
    _, single = run_topology(1, pairs, host_graphs)
    _, quad = run_topology(2, pairs, host_graphs)
    assert single == quad


if __name__ == "__main__":
    from _harness import main_record

    main_record(
        "bench_cluster",
        run_experiment,
        params={
            "gate": GATE,
            "workers": 4,
            "requests": REQUESTS,
            "gate_cores": GATE_CORES,
        },
        primary="scaling_4w_vs_1w",
        higher_is_better=True,
    )
