"""Benchmark — task-API dispatch overhead over direct engine calls.

The one-API layer (`Session.run(HomCountTask(...))`) wraps every count in
spec resolution, provenance, and a `Result`.  That convenience must stay
effectively free: on a warm-cache batch workload (every count answered
from the engine's count cache — the steady state of repeated profiling
and serving traffic), Session dispatch must cost **< 5%** over calling
``HomEngine.count`` directly.

The executor memoises each spec's target fingerprint, so the task path
actually skips the per-call O(n + m) target keying the direct path pays —
the gate holds with margin, and the table shows both sides.

``python benchmarks/bench_api.py`` asserts the gate.
"""

from __future__ import annotations

import time

import pytest

from _tables import print_table
from repro.api import HomCountTask, Session
from repro.api.executors import LocalExecutor
from repro.engine import HomEngine
from repro.graphs import random_graph
from repro.wl.hom_indistinguishability import bounded_treewidth_patterns

GATE = 1.05  # session time must stay under 105% of direct engine time
PASSES = 7   # best-of to shave scheduler noise


def workload():
    patterns = bounded_treewidth_patterns(2, 5)
    targets = [random_graph(40, 0.12, seed=700 + i) for i in range(12)]
    return patterns, targets


def time_best(fn, passes: int = PASSES) -> float:
    best = float("inf")
    for _ in range(passes):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_experiment() -> float:
    patterns, targets = workload()
    engine = HomEngine()
    session = Session(executor=LocalExecutor(engine=engine))
    tasks = [
        HomCountTask(pattern, target)
        for pattern in patterns
        for target in targets
    ]

    # Warm everything: plans compiled, every count cached, every task's
    # target fingerprint memoised.
    direct_values = [
        engine.count(pattern, target)
        for pattern in patterns
        for target in targets
    ]
    session_values = [session.run(task).value for task in tasks]
    assert session_values == direct_values

    def direct_pass():
        for pattern in patterns:
            for target in targets:
                engine.count(pattern, target)

    def session_pass():
        for task in tasks:
            session.run(task)

    direct = time_best(direct_pass)
    through_session = time_best(session_pass)
    overhead = through_session / direct - 1.0

    calls = len(tasks)
    print_table(
        "Task-API dispatch vs direct HomEngine calls — warm count cache",
        ["workload", "direct", "session", "per call", "overhead"],
        [
            [
                f"{len(patterns)} patterns x {len(targets)} targets G(40, .12)",
                f"{direct * 1000:.2f} ms",
                f"{through_session * 1000:.2f} ms",
                f"{through_session / calls * 1e6:.1f} us",
                f"{overhead * 100:+.1f}%",
            ],
        ],
    )
    print(
        f"\nsession/direct ratio: {through_session / direct:.3f} "
        f"(gate: < {GATE:.2f})",
    )
    assert through_session < direct * GATE, (
        f"Session dispatch overhead {overhead * 100:.1f}% exceeds the "
        f"{(GATE - 1) * 100:.0f}% gate"
    )
    return through_session / direct


def test_bench_direct_engine(benchmark):
    patterns, targets = workload()
    engine = HomEngine()
    engine.count_batch(patterns, targets)  # warm

    def direct_pass():
        return [
            engine.count(pattern, target)
            for pattern in patterns
            for target in targets
        ]

    result = benchmark(direct_pass)
    assert all(value >= 0 for value in result)


def test_bench_session_dispatch(benchmark):
    patterns, targets = workload()
    engine = HomEngine()
    session = Session(executor=LocalExecutor(engine=engine))
    tasks = [
        HomCountTask(pattern, target)
        for pattern in patterns
        for target in targets
    ]
    for task in tasks:  # warm
        session.run(task)

    def session_pass():
        return [session.run(task).value for task in tasks]

    result = benchmark(session_pass)
    assert all(value >= 0 for value in result)


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_api", run_experiment, params={"gate": 1.05}, primary="session_vs_direct_ratio", higher_is_better=False)
