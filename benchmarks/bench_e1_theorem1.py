"""E1 — Theorem 1: WL-dimension = semantic extension width.

Regenerates the headline table: for a battery of conjunctive queries,
the structural widths (treewidth, quantified star size, ew, sew) and the
WL-dimension predicted by Theorem 1, with the lower-bound witness verified
end-to-end for every width-2 entry (the width-3 entries verify the coloured
gap and the level-k hom distinguisher; the full (k−1)-WL run is exercised in
the test suite for k−1 ≤ 2).
"""

from __future__ import annotations

import pytest

from repro.core import (
    verify_lower_bound,
    wl_dimension,
)
from repro.queries import (
    ConjunctiveQuery,
    extension_width,
    path_endpoints_query,
    quantified_star_size,
    query_from_atoms,
    semantic_extension_width,
    star_query,
    star_with_redundant_path,
)
from repro.treewidth import treewidth

from _tables import print_table


def battery() -> list[tuple[str, ConjunctiveQuery]]:
    return [
        ("S_1 (1-star)", star_query(1)),
        ("S_2 (2-star)", star_query(2)),
        ("S_3 (3-star)", star_query(3)),
        ("S_4 (4-star)", star_query(4)),
        ("P_1 (endpoints, 1 internal)", path_endpoints_query(1)),
        ("P_2 (endpoints, 2 internal)", path_endpoints_query(2)),
        ("S_2 + foldable tail", star_with_redundant_path(2)),
        (
            "two islands (x1-y1-x2, x2-y2-x3)",
            query_from_atoms(
                [("x1", "y1"), ("x2", "y1"), ("x2", "y2"), ("x3", "y2")],
                ["x1", "x2", "x3"],
            ),
        ),
        (
            "triangle, 2 free",
            query_from_atoms(
                [("x1", "x2"), ("x1", "y"), ("x2", "y")], ["x1", "x2"],
            ),
        ),
    ]


def table_rows() -> list[list]:
    rows = []
    for name, query in battery():
        rows.append(
            [
                name,
                treewidth(query.graph),
                quantified_star_size(query),
                extension_width(query),
                semantic_extension_width(query),
                wl_dimension(query),
            ],
        )
    return rows


def run_experiment() -> None:
    print_table(
        "E1: WL-dimension = sew (Theorem 1)",
        ["query", "tw(H)", "qss", "ew", "sew", "WL-dim"],
        table_rows(),
    )
    print("\nLower-bound witnesses (width-2 queries, all Section-4 checks):")
    for name, query in battery():
        if semantic_extension_width(query) != 2:
            continue
        report = verify_lower_bound(query, max_multiplicity=2)
        print(
            f"  {name:34s} cpAns={report.cp_answers}  "
            f"clone z={report.clone_separation[0] if report.clone_separation else None}  "
            f"all-pass={report.all_checks_pass}",
        )
    report3 = verify_lower_bound(star_query(3), max_multiplicity=1)
    print(
        f"\n  S_3 (width 3, full pipeline): cpAns={report3.cp_answers}  "
        f"2-WL-equivalent={report3.wl_equivalent_below}  "
        f"clone z={report3.clone_separation[0] if report3.clone_separation else None}: "
        f"{report3.clone_separation[1]} != {report3.clone_separation[2]}  "
        f"all-pass={report3.all_checks_pass}",
    )


# ----------------------------------------------------------------------
# pytest-benchmark targets
# ----------------------------------------------------------------------
@pytest.mark.parametrize("k", [2, 3, 4])
def test_bench_sew_of_star(benchmark, k):
    result = benchmark(semantic_extension_width, star_query(k))
    assert result == k


def test_bench_wl_dimension_battery(benchmark):
    def compute():
        return [wl_dimension(query) for _, query in battery()]

    dims = benchmark(compute)
    assert dims == [1, 2, 3, 4, 2, 2, 2, 2, 2]


def test_bench_lower_bound_witness_star2(benchmark):
    report = benchmark.pedantic(
        lambda: verify_lower_bound(star_query(2), max_multiplicity=1),
        rounds=1,
        iterations=1,
    )
    assert report.all_checks_pass


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_e1_theorem1", run_experiment)
