"""E7 — Corollary 4: tractability ⇔ bounded WL-dimension.

The dichotomy made visible as runtime shape: answer counting for a
*bounded-sew* family (path-endpoint queries: sew = 2 for every length) via
the treewidth-DP interpolation pipeline scales polynomially with the host,
while a *growing-sew* family (k-stars, sew = k) has cost growing
exponentially in k on a fixed host (the DP table is |V(G)|^{Θ(k)}, matching
the W[1]-hardness side).

We report operation-proxy timings; the paper's statement is asymptotic and
host sizes here are small, so the *shape* (flat vs growing column) is the
reproduced object.
"""

from __future__ import annotations

import time

import pytest

from _tables import print_table
from repro.graphs import random_graph
from repro.homs import count_homomorphisms_dp
from repro.queries import (
    count_answers,
    ell_copy,
    path_endpoints_query,
    star_query,
)


def _time(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def run_experiment() -> None:
    # Bounded family: path queries, sew = 2 regardless of length.
    host = random_graph(9, 0.4, seed=21)
    rows = []
    for internal in (1, 2, 3, 4):
        query = path_endpoints_query(internal)
        count, elapsed = _time(lambda q=query: count_answers(q, host))
        rows.append([f"P_{internal}", 2, count, f"{elapsed * 1000:.1f} ms"])
    print_table(
        "E7a: bounded-sew family (sew = 2 ∀ length): polynomial behaviour",
        ["query", "sew", "|Ans| on G(9,.4)", "time"],
        rows,
    )

    # Growing family: k-stars on hosts of growing size.
    rows = []
    for k in (1, 2, 3, 4):
        host_k = random_graph(6 + k, 0.4, seed=22)
        query = star_query(k)
        count, elapsed = _time(lambda q=query, h=host_k: count_answers(q, h))
        rows.append(
            [f"S_{k}", k, host_k.num_vertices(), count, f"{elapsed * 1000:.1f} ms"],
        )
    print_table(
        "E7b: growing-sew family (sew = k): cost grows with k",
        ["query", "sew", "|V(G)|", "|Ans|", "time"],
        rows,
    )

    # The tractable algorithm of the dichotomy: hom counts of F_ℓ via the
    # treewidth DP (table size |V|^{ew+1}).
    rows = []
    for n in (8, 12, 16, 20):
        host_n = random_graph(n, 0.35, seed=23)
        pattern, _ = ell_copy(path_endpoints_query(2), 3)
        count, elapsed = _time(
            lambda p=pattern, h=host_n: count_homomorphisms_dp(p, h),
        )
        rows.append([n, count, f"{elapsed * 1000:.1f} ms"])
    print_table(
        "E7c: |Hom(F_3(P_2), G)| by treewidth DP — polynomial in |V(G)|",
        ["|V(G)|", "hom count", "time"],
        rows,
    )


@pytest.mark.parametrize("internal", [1, 2, 3])
def test_bench_bounded_family(benchmark, internal):
    host = random_graph(8, 0.4, seed=21)
    query = path_endpoints_query(internal)
    result = benchmark(count_answers, query, host)
    assert result >= 0


@pytest.mark.parametrize("k", [1, 2, 3])
def test_bench_growing_family(benchmark, k):
    host = random_graph(7, 0.4, seed=22)
    query = star_query(k)
    result = benchmark(count_answers, query, host)
    assert result >= 0


@pytest.mark.parametrize("n", [8, 12, 16])
def test_bench_dp_scaling(benchmark, n):
    host = random_graph(n, 0.35, seed=23)
    pattern, _ = ell_copy(path_endpoints_query(2), 3)
    result = benchmark(count_homomorphisms_dp, pattern, host)
    assert result >= 0


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_e7_complexity", run_experiment)
