"""Benchmark — the counting service vs sequential cold calls.

The service's claim: coalescing identical in-flight requests and sharing
one warm engine across all workers turns heavy repetitive traffic into a
handful of real computations.  The baseline is the pre-service reality —
every request constructs its own in-process state and pays compilation
and execution from scratch (exactly what callers did before `repro.serve`
existed).

Workload: ``REPEATS`` copies each of a few distinct (pattern, target)
requests, i.e. the hot-key traffic shape the scheduler coalesces.  The
service path submits them **concurrently** through a started
:class:`RequestScheduler` into one shared engine; the baseline runs them
sequentially on fresh engines.

Acceptance gate: the service must beat the sequential-cold baseline by
>= 3x.  ``python benchmarks/bench_service.py`` asserts it (and CI runs
exactly that).
"""

from __future__ import annotations

import asyncio
import time

import pytest

from _tables import print_table
from repro.engine import HomEngine
from repro.graphs import cycle_graph, grid_graph, path_graph, random_graph
from repro.service.scheduler import RequestScheduler

REPEATS = 8


def request_mix():
    """(name, pattern, target) — each repeated REPEATS times (hot keys)."""
    hosts = [random_graph(15, 0.3, seed=500 + i) for i in range(2)]
    return [
        ("grid2x3@h0", grid_graph(2, 3), hosts[0]),
        ("grid2x3@h1", grid_graph(2, 3), hosts[1]),
        ("C8@h0", cycle_graph(8), hosts[0]),
        ("P7@h1", path_graph(7), hosts[1]),
    ]


def sequential_cold(requests) -> list[int]:
    """Every request pays compilation + execution on a private engine."""
    return [
        HomEngine().count(pattern, target) for _, pattern, target in requests
    ]


def service_concurrent(requests, workers: int = 4) -> tuple[list[int], dict]:
    """All requests in flight at once against one shared warm engine."""
    engine = HomEngine()

    async def main():
        scheduler = RequestScheduler(workers=workers, max_queue=len(requests))
        await scheduler.start()
        try:
            results = await asyncio.gather(*[
                scheduler.submit(
                    name,
                    lambda pattern=pattern, target=target: engine.count(
                        pattern, target,
                    ),
                )
                for name, pattern, target in requests
            ])
        finally:
            await scheduler.stop()
        return results, scheduler.stats.snapshot()

    return asyncio.run(main())


def run_experiment() -> float:
    # Pay numpy's lazy import outside the timed regions.
    from repro.graphs.matrices import count_walks

    count_walks(random_graph(3, 0.5, seed=1), 2)

    mix = request_mix()
    requests = mix * REPEATS

    start = time.perf_counter()
    expected = sequential_cold(requests)
    cold_time = time.perf_counter() - start

    start = time.perf_counter()
    got, stats = service_concurrent(requests)
    service_time = time.perf_counter() - start

    assert got == expected

    rows = [
        ["requests", len(requests)],
        ["distinct keys", len(mix)],
        ["sequential cold", f"{cold_time * 1000:.1f} ms"],
        ["service (coalesce + warm)", f"{service_time * 1000:.1f} ms"],
        ["jobs executed", stats["executed"]],
        ["jobs coalesced", stats["coalesced"]],
        ["throughput gain", f"{cold_time / service_time:.1f}x"],
    ]
    print_table(
        f"Service vs sequential cold calls — {len(mix)} hot keys x {REPEATS}",
        ["metric", "value"],
        rows,
    )
    speedup = cold_time / service_time
    print(f"\noverall speedup: {speedup:.1f}x (gate: >= 3x)")
    assert speedup >= 3.0, f"service speedup {speedup:.2f}x below the 3x gate"
    return speedup


@pytest.mark.parametrize("index", range(len(request_mix())))
def test_bench_sequential_cold(benchmark, index):
    name, pattern, target = request_mix()[index]
    result = benchmark(lambda: HomEngine().count(pattern, target))
    assert result >= 0


def test_bench_service_hot_traffic(benchmark):
    mix = request_mix()
    requests = mix * REPEATS

    def hot_pass():
        results, _ = service_concurrent(requests)
        return results

    result = benchmark(hot_pass)
    assert len(result) == len(requests)


def test_service_results_match_cold_baseline():
    mix = request_mix()
    requests = mix * REPEATS
    got, stats = service_concurrent(requests)
    assert got == sequential_cold(requests)
    assert stats["executed"] + stats["coalesced"] == len(requests)


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_service", run_experiment, params={"gate": 3.0}, primary="speedup_vs_cold", higher_is_better=True)
