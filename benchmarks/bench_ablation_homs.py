"""Ablation — homomorphism counting: brute-force backtracking vs
treewidth DP.

``count_homomorphisms(method='auto')`` routes through the engine's
treewidth-aware cost model (``repro.engine.plans.select_backend``): brute
force when a greedy treewidth upper bound shows the DP cannot shave an
exponent level off the search (``tw + 2 > n``), the DP otherwise, and
closed-form linear algebra for paths/cycles.  This bench regenerates the
crossover evidence on raw (uncached) backends.
"""

from __future__ import annotations

import time

import pytest

from _tables import print_table
from repro.graphs import cycle_graph, grid_graph, path_graph, random_graph
from repro.homs import count_homomorphisms_brute, count_homomorphisms_dp


def patterns():
    return [
        ("P3 (3v, tw1)", path_graph(3)),
        ("C5 (5v, tw2)", cycle_graph(5)),
        ("P7 (7v, tw1)", path_graph(7)),
        ("grid 2x4 (8v, tw2)", grid_graph(2, 4)),
        ("grid 3x3 (9v, tw3)", grid_graph(3, 3)),
    ]


def run_experiment() -> None:
    host = random_graph(9, 0.45, seed=31)
    rows = []
    for name, pattern in patterns():
        start = time.perf_counter()
        brute = count_homomorphisms_brute(pattern, host)
        brute_time = time.perf_counter() - start
        start = time.perf_counter()
        dp = count_homomorphisms_dp(pattern, host)
        dp_time = time.perf_counter() - start
        rows.append(
            [
                name,
                brute,
                f"{brute_time * 1000:.1f} ms",
                f"{dp_time * 1000:.1f} ms",
                "dp" if dp_time < brute_time else "brute",
            ],
        )
        assert brute == dp
    print_table(
        "Ablation: hom counting — brute force vs treewidth DP (host G(9,.45))",
        ["pattern", "count", "brute", "dp", "winner"],
        rows,
    )


@pytest.mark.parametrize(
    "index", range(len(patterns())), ids=[name for name, _ in patterns()],
)
def test_bench_brute(benchmark, index):
    _, pattern = patterns()[index]
    host = random_graph(8, 0.45, seed=31)
    result = benchmark(count_homomorphisms_brute, pattern, host)
    assert result >= 0


@pytest.mark.parametrize(
    "index", range(len(patterns())), ids=[name for name, _ in patterns()],
)
def test_bench_dp(benchmark, index):
    _, pattern = patterns()[index]
    host = random_graph(8, 0.45, seed=31)
    result = benchmark(count_homomorphisms_dp, pattern, host)
    assert result == count_homomorphisms_brute(pattern, host)


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_ablation_homs", run_experiment)
