"""Shared helpers for the benchmark/experiment harness.

Every ``bench_e*.py`` module is both

* a pytest-benchmark suite (``pytest benchmarks/ --benchmark-only``), and
* a standalone experiment script (``python benchmarks/bench_e1_theorem1.py``)
  that prints the table recorded in ``EXPERIMENTS.md``.
"""

from __future__ import annotations

# Every table printed since the last drain, as structured rows — the
# telemetry harness (benchmarks/_harness.py) drains this into the
# BENCH_<name>.json record, so benches need no changes beyond routing
# their __main__ through the harness.
_captured: list[dict] = []


def drain_tables() -> list[dict]:
    """Structured copies of every table printed since the last drain."""
    drained = list(_captured)
    _captured.clear()
    return drained


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Render an aligned plain-text table (the experiment report format)."""
    table = [headers] + [[str(cell) for cell in row] for row in rows]
    _captured.append({
        "title": title,
        "headers": list(headers),
        "rows": [row[:] for row in table[1:]],
    })
    widths = [max(len(row[i]) for row in table) for i in range(len(headers))]
    print(f"\n== {title} ==")
    for index, row in enumerate(table):
        line = "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        print(line)
        if index == 0:
            print("  ".join("-" * width for width in widths))
