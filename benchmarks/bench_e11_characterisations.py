"""E11 — the alternative characterisations of WL-equivalence (Section 1).

The paper lists three classical characterisations:

(I)   ``G ≅₁ G'`` iff fractionally isomorphic (Tinhofer);
(II)  ``G ≅_k G'`` iff no C^{k+1} sentence separates (Immerman–Lander/CFI);
(III) ``G ≅_k G'`` iff equal hom counts from tw ≤ k graphs (Dvořák/DGR) —
      the paper's working Definition 19.

This experiment runs all three deciders (plus the refinement algorithm) on
the same pairs and confirms they agree, pairwise and with theory.
"""

from __future__ import annotations

import pytest

from _tables import print_table
from repro.cfi import cfi_pair
from repro.graphs import complete_graph, six_cycle, two_triangles
from repro.logic import ck_equivalent_on_battery, separating_sentence
from repro.wl import (
    fractionally_isomorphic,
    hom_indistinguishable_up_to,
    k_wl_equivalent,
)


def pairs():
    k3 = cfi_pair(complete_graph(3))
    return [
        ("2K3 / C6", two_triangles(), six_cycle()),
        ("chi(K3) pair", k3.untwisted, k3.twisted),
    ]


def run_experiment() -> None:
    rows = []
    for name, first, second in pairs():
        rows.append(
            [
                name,
                k_wl_equivalent(first, second, 1),
                fractionally_isomorphic(first, second),
                ck_equivalent_on_battery(first, second, 2),
                hom_indistinguishable_up_to(first, second, 1, 5),
                k_wl_equivalent(first, second, 2),
                ck_equivalent_on_battery(first, second, 3),
                hom_indistinguishable_up_to(first, second, 2, 4),
            ],
        )
    print_table(
        "E11: characterisations (I)/(II)/(III) agree with k-WL refinement",
        ["pair", "1-WL", "frac-iso (I)", "C² (II)", "tw≤1 homs (III)",
         "2-WL", "C³ (II)", "tw≤2 homs (III)"],
        rows,
    )

    sentence = separating_sentence(two_triangles(), six_cycle(), 3)
    print(f"\nSeparating C³ sentence for 2K3/C6: {sentence}")


def test_bench_fractional_isomorphism(benchmark):
    result = benchmark(fractionally_isomorphic, two_triangles(), six_cycle())
    assert result


def test_bench_logic_battery(benchmark):
    result = benchmark.pedantic(
        ck_equivalent_on_battery,
        args=(two_triangles(), six_cycle(), 2),
        rounds=1,
        iterations=1,
    )
    assert result


@pytest.mark.parametrize("level", [1, 2])
def test_bench_characterisations_agree(benchmark, level):
    first, second = two_triangles(), six_cycle()

    def all_deciders():
        return (
            k_wl_equivalent(first, second, level),
            ck_equivalent_on_battery(first, second, level + 1),
        )

    refinement, logic = benchmark.pedantic(all_deciders, rounds=1, iterations=1)
    assert refinement == logic == (level == 1)


if __name__ == "__main__":
    from _harness import main_record

    main_record("bench_e11_characterisations", run_experiment)
