"""Unit tests for the GNN simulation and expressiveness corollaries."""

import pytest

from repro.errors import WitnessError
from repro.gnn import (
    OrderKGNN,
    demonstrate_inexpressiveness,
    gnn_can_count_answers,
    minimum_gnn_order,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    six_cycle,
    star_graph,
    two_triangles,
)
from repro.queries import full_query_from_graph, star_query
from repro.wl import k_wl_equivalent, wl_1_equivalent


class TestModel:
    def test_order_validation(self):
        with pytest.raises(ValueError):
            OrderKGNN(0)

    def test_order1_matches_colour_refinement(self):
        """Proposition 3 at k = 1: order-1 GNN distinguishability =
        1-WL-distinguishability."""
        pairs = [
            (two_triangles(), six_cycle()),
            (path_graph(4), star_graph(3)),
            (cycle_graph(6), cycle_graph(6)),
        ]
        gnn = OrderKGNN(1)
        for first, second in pairs:
            assert gnn.distinguishes(first, second) == (
                not wl_1_equivalent(first, second)
            )

    def test_order2_matches_2wl(self):
        gnn = OrderKGNN(2)
        assert gnn.distinguishes(two_triangles(), six_cycle()) == (
            not k_wl_equivalent(two_triangles(), six_cycle(), 2)
        )

    def test_layer_cap_weakens(self):
        """A 0-layer GNN sees only initial features: cannot distinguish
        equal-size graphs at order 1."""
        shallow = OrderKGNN(1, num_layers=0)
        assert not shallow.distinguishes(path_graph(4), star_graph(3))

    def test_readout_histogram_total(self):
        gnn = OrderKGNN(2)
        histogram = gnn.readout_histogram(cycle_graph(4))
        assert sum(histogram.values()) == 16


class TestExpressiveness:
    def test_minimum_order_is_sew(self):
        assert minimum_gnn_order(star_query(2)) == 2
        assert minimum_gnn_order(star_query(3)) == 3
        assert minimum_gnn_order(full_query_from_graph(complete_graph(3))) == 2

    def test_can_count_threshold(self):
        q = star_query(3)
        assert not gnn_can_count_answers(q, 2)
        assert gnn_can_count_answers(q, 3)
        assert gnn_can_count_answers(q, 5)

    def test_certificate_for_star2(self):
        """Order-1 GNNs cannot count 2-star answers: explicit pair."""
        certificate = demonstrate_inexpressiveness(star_query(2), order=1)
        assert certificate.is_valid
        assert certificate.count_first != certificate.count_second
        assert certificate.gnn_indistinguishable

    def test_certificate_rejects_sufficient_order(self):
        with pytest.raises(WitnessError):
            demonstrate_inexpressiveness(star_query(2), order=2)

    def test_certificate_rejects_order_zero(self):
        with pytest.raises(WitnessError):
            demonstrate_inexpressiveness(star_query(2), order=0)

    def test_certificate_default_order(self):
        certificate = demonstrate_inexpressiveness(star_query(2))
        assert certificate.order == 1
