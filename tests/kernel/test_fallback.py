"""Exactness fallbacks: int64-unsafe inputs must reroute to the oracle.

The numpy tiers never trade exactness for speed — every step that could
leave int64 is guarded a priori, raises
:class:`~repro.kernel.KernelUnsupported`, and re-runs pure Python.  These
tests force each guard and check (a) the result is the exact big
integer and (b) the fallback is visible in the metrics.
"""

import pytest

from repro import kernel
from repro.graphs import Graph, complete_graph, path_graph, star_graph
from repro.homs.treewidth_dp import count_homomorphisms_dp
from repro.wl.refinement import indexed_colour_partition

pytestmark = pytest.mark.skipif(
    not kernel.numpy_available(), reason="numpy kernel tier not importable",
)


def fallback_count(layer: str, reason: str) -> int:
    return kernel.kernel_report()["fallbacks"].get(f"{layer}/{reason}", 0)


class TestDPOverflow:
    def test_packable_bounds(self):
        assert kernel.dp_packable(10, 5)
        assert kernel.dp_packable(1, 99)
        # 65536**4 = 2**64 > 2**62: codes would not fit.
        assert not kernel.dp_packable(1 << 16, 4)

    def test_huge_count_falls_back_exactly(self):
        # Hom(edgeless 30-vertex pattern, K50) = 50**30 ≈ 2**169: the
        # FORGET merge guard fires long before any int64 wraparound.
        pattern = Graph(vertices=range(30))
        target = complete_graph(50)
        before = fallback_count("dp", "overflow")
        with kernel.force_backend("numpy"):
            value = count_homomorphisms_dp(pattern, target)
        assert value == 50 ** 30
        assert fallback_count("dp", "overflow") > before

    def test_fallback_result_matches_oracle(self):
        pattern = Graph(vertices=range(30))
        target = complete_graph(50)
        with kernel.force_backend("python"):
            oracle = count_homomorphisms_dp(pattern, target)
        with kernel.force_backend("numpy"):
            assert count_homomorphisms_dp(pattern, target) == oracle


class TestWLBudgets:
    def test_long_path_takes_partial_resume(self):
        from repro.kernel import wl_numpy

        indexed = path_graph(300).to_indexed()
        with pytest.raises(kernel.KernelUnsupported) as excinfo:
            wl_numpy.refine_partition(indexed)
        assert excinfo.value.reason == "slow-convergence"
        partial = excinfo.value.partial
        assert isinstance(partial, list) and len(partial) == indexed.n

        before = fallback_count("wl", "slow-convergence")
        with kernel.force_backend("numpy"):
            refined = indexed_colour_partition(indexed)
        assert fallback_count("wl", "slow-convergence") > before
        with kernel.force_backend("python"):
            oracle = indexed_colour_partition(indexed)

        def as_partition(colours):
            seen = {}
            return [seen.setdefault(c, len(seen)) for c in colours]

        assert as_partition(refined) == as_partition(oracle)

    def test_hub_blows_memory_budget(self):
        from repro.kernel import wl_numpy

        # star_graph(10_000): n*(max_degree+1) ≈ 10^8 cells > the budget.
        indexed = star_graph(10_000).to_indexed()
        with pytest.raises(kernel.KernelUnsupported) as excinfo:
            wl_numpy.refine_partition(indexed)
        assert excinfo.value.reason == "memory"
        # The public entry point still answers (worklist fallback).
        with kernel.force_backend("numpy"):
            partition = indexed_colour_partition(indexed)
        assert len(set(partition)) == 2  # hub vs leaves


class TestTapeGuards:
    def test_execute_tape_rejects_unpackable(self):
        from repro.kernel import dp_numpy

        indexed = complete_graph(3).to_indexed()
        with pytest.raises(kernel.KernelUnsupported):
            # max_bag chosen so n**max_bag >= 2**62 is impossible to pack
            # (3**200 is astronomically past int64).
            dp_numpy.execute_tape([(0,)], indexed, 200)
