"""Clean degradation with numpy absent.

An import block in ``sys.modules`` makes ``import numpy`` raise inside
the probe; every layer must then run its pure-Python tier with no
behavioural difference (counts and partitions are the oracle's).  This
is the in-process twin of the no-numpy CI job.
"""

import sys

import pytest

from repro.graphs import complete_graph, path_graph, random_graph
from repro.homs.brute_force import count_homomorphisms_brute
from repro.homs.treewidth_dp import count_homomorphisms_dp
from repro.wl.refinement import indexed_colour_partition


@pytest.fixture
def no_numpy(monkeypatch):
    from repro.kernel import backend

    monkeypatch.setitem(sys.modules, "numpy", None)  # import -> ImportError
    monkeypatch.delenv("REPRO_KERNEL", raising=False)
    backend._reset_probe_for_tests()
    try:
        yield
    finally:
        monkeypatch.undo()
        backend._reset_probe_for_tests()


def test_probe_reports_unavailable(no_numpy):
    from repro import kernel

    assert not kernel.numpy_available()
    report = kernel.kernel_report()
    assert report["numpy_available"] is False
    assert report["numpy_version"] is None


def test_auto_selection_degrades_to_python(no_numpy):
    from repro import kernel

    assert kernel.select("dp", 10 ** 9) == "python"
    assert kernel.would_select("wl", 10 ** 9) == "python"


def test_explicit_numpy_request_fails_loudly(no_numpy):
    from repro import kernel

    with pytest.raises(RuntimeError):
        kernel.resolve("dp", 100, "numpy")
    with kernel.force_backend("numpy"):
        with pytest.raises(RuntimeError):
            kernel.select("dp", 100)


def test_counting_layers_still_work(no_numpy):
    pattern = path_graph(3)
    target = random_graph(40, 0.3, seed=21)
    assert count_homomorphisms_dp(pattern, target) == (
        count_homomorphisms_brute(pattern, target)
    )
    partition = indexed_colour_partition(target.to_indexed())
    assert len(partition) == 40


def test_matrix_layer_runs_pure(no_numpy):
    from repro.graphs.matrices import count_closed_walks, count_walks

    target = random_graph(12, 0.5, seed=22)
    assert count_walks(target, 3) == count_homomorphisms_brute(
        path_graph(4), target,
    )
    assert count_closed_walks(complete_graph(4), 3) == 24


def test_spectrum_raises_repro_error(no_numpy):
    from repro.errors import ReproError
    from repro.graphs.matrices import spectrum

    with pytest.raises(ReproError):
        spectrum(complete_graph(3))


def test_matrix_plan_executes_pure(no_numpy):
    from repro.engine.plans import compile_plan

    plan = compile_plan(path_graph(4))
    assert plan.kind == "matrix"
    target = random_graph(10, 0.4, seed=23)
    assert plan.execute(target) == count_homomorphisms_brute(
        path_graph(4), target,
    )
    assert plan.describe_for(target).endswith("/python")
