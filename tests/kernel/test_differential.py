"""Differential suite: the numpy kernel tier against the pure oracle.

Every vectorised layer (DP tape, WL refinement, bitset pools, matrix
walks) is pinned to each backend in turn via
:func:`repro.kernel.force_backend` and must agree exactly — counts are
equal integers, WL results are equal *partitions* (ids are
backend-local).  Hypothesis drives the graph shapes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro import kernel
from repro.graphs import Graph, path_graph, random_graph, star_graph
from repro.homs.brute_force import count_homomorphisms_brute
from repro.homs.treewidth_dp import count_homomorphisms_dp
from repro.wl.refinement import indexed_colour_partition

pytestmark = pytest.mark.skipif(
    not kernel.numpy_available(), reason="numpy kernel tier not importable",
)


@st.composite
def patterns(draw, max_vertices=6):
    """Connected sparse patterns (tree plus a few chords)."""
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    graph = Graph(vertices=range(n))
    for v in range(1, n):
        graph.add_edge(v, draw(st.integers(min_value=0, max_value=v - 1)))
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        i = draw(st.integers(min_value=0, max_value=n - 1))
        j = draw(st.integers(min_value=0, max_value=n - 1))
        if i != j:
            graph.add_edge(i, j)
    return graph


@st.composite
def targets(draw, max_vertices=36):
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    p = draw(st.sampled_from((0.1, 0.2, 0.35)))
    return random_graph(n, p, seed=seed)


def both_backends(fn):
    with kernel.force_backend("python"):
        oracle = fn()
    with kernel.force_backend("numpy"):
        vectorised = fn()
    return oracle, vectorised


def as_partition(colours):
    """Canonical form: class ids in first-appearance order."""
    seen = {}
    return [seen.setdefault(c, len(seen)) for c in colours]


class TestDPTape:
    @settings(max_examples=40, deadline=None)
    @given(pattern=patterns(), target=targets())
    def test_counts_agree(self, pattern, target):
        oracle, vectorised = both_backends(
            lambda: count_homomorphisms_dp(pattern, target),
        )
        assert oracle == vectorised

    @settings(max_examples=25, deadline=None)
    @given(pattern=patterns(max_vertices=5), target=targets(max_vertices=24),
           data=st.data())
    def test_allowed_masks_agree(self, pattern, target, data):
        hosts = target.vertices()
        if not hosts:
            return
        allowed = {
            v: frozenset(data.draw(
                st.sets(st.sampled_from(hosts), min_size=0, max_size=len(hosts)),
            ))
            for v in pattern.vertices()[:2]
        }
        oracle, vectorised = both_backends(
            lambda: count_homomorphisms_dp(pattern, target, allowed=allowed),
        )
        assert oracle == vectorised


class TestBruteBitsets:
    @settings(max_examples=40, deadline=None)
    @given(pattern=patterns(max_vertices=4), target=targets())
    def test_counts_agree(self, pattern, target):
        oracle, vectorised = both_backends(
            lambda: count_homomorphisms_brute(pattern, target),
        )
        assert oracle == vectorised

    def test_star_pattern_hits_leaf_kernel(self):
        # Unpinned last level + pinned second-to-last: the vectorised
        # leaf count must run (wide pools, above the small-pool guard).
        pattern = star_graph(2)
        target = random_graph(80, 0.6, seed=5)
        oracle, vectorised = both_backends(
            lambda: count_homomorphisms_brute(pattern, target),
        )
        assert oracle == vectorised


class TestWLRefinement:
    @settings(max_examples=40, deadline=None)
    @given(target=targets(max_vertices=60))
    def test_partitions_agree(self, target):
        indexed = target.to_indexed()
        oracle, vectorised = both_backends(
            lambda: as_partition(indexed_colour_partition(indexed)),
        )
        assert oracle == vectorised

    @settings(max_examples=25, deadline=None)
    @given(target=targets(max_vertices=40), data=st.data())
    def test_seeded_partitions_agree(self, target, data):
        indexed = target.to_indexed()
        if indexed.n == 0:
            return
        initial = [
            data.draw(st.integers(min_value=0, max_value=2))
            for _ in range(indexed.n)
        ]
        oracle, vectorised = both_backends(
            lambda: as_partition(indexed_colour_partition(indexed, initial)),
        )
        assert oracle == vectorised

    def test_long_path_agrees(self):
        # Θ(n) rounds: exercises the round budget + seeded worklist resume.
        indexed = path_graph(400).to_indexed()
        oracle, vectorised = both_backends(
            lambda: as_partition(indexed_colour_partition(indexed)),
        )
        assert oracle == vectorised


class TestBitsetPrimitives:
    def test_pack_roundtrip_and_popcounts(self):
        import numpy

        from repro.kernel import bitset_numpy

        graph = random_graph(130, 0.3, seed=9).to_indexed()
        packed = bitset_numpy.pack_bitsets(graph)
        assert packed.shape == (130, bitset_numpy.word_count(130))
        pure = graph.bitsets()
        for v in range(graph.n):
            assert bitset_numpy.unpack_mask_int(packed[v]) == pure[v]
        counts = bitset_numpy.popcount_rows(packed)
        assert counts.tolist() == [pool.bit_count() for pool in pure]
        mask = (1 << 130) - 1 - (1 << 64)
        row = bitset_numpy.pack_mask(mask, 130)
        assert bitset_numpy.unpack_mask_int(row) == mask
        members = bitset_numpy.expand_mask(mask, 130)
        assert members.tolist() == [i for i in range(130) if i != 64]
        assert isinstance(packed[0, 0], numpy.uint64)

    def test_leaf_pair_count_matches_bit_loop(self):
        from repro.kernel import bitset_numpy

        graph = random_graph(100, 0.4, seed=10).to_indexed()
        packed = bitset_numpy.pack_bitsets(graph)
        pure = graph.bitsets()
        base = pure[0] | pure[1]
        candidates = bitset_numpy.expand_mask(pure[2] | pure[3], graph.n)
        expected = sum(
            (base & pure[int(c)]).bit_count() for c in candidates
        )
        got = bitset_numpy.leaf_pair_count(
            candidates, packed, bitset_numpy.pack_mask(base, graph.n),
        )
        assert got == expected


class TestMatrixTier:
    @settings(max_examples=25, deadline=None)
    @given(target=targets(max_vertices=20),
           length=st.integers(min_value=0, max_value=6))
    def test_walk_counts_agree(self, target, length):
        from repro.graphs.matrices import count_walks

        oracle, vectorised = both_backends(lambda: count_walks(target, length))
        assert oracle == vectorised

    @settings(max_examples=25, deadline=None)
    @given(target=targets(max_vertices=16),
           length=st.integers(min_value=3, max_value=6))
    def test_closed_walk_counts_agree(self, target, length):
        from repro.graphs.matrices import count_closed_walks

        oracle, vectorised = both_backends(
            lambda: count_closed_walks(target, length),
        )
        assert oracle == vectorised
