"""The backend registry: cost model, overrides, accounting, reporting."""

import pytest

from repro import kernel
from repro.engine.plans import compile_plan
from repro.graphs import complete_graph, path_graph, random_graph, star_graph
from repro.kernel import backend

needs_numpy = pytest.mark.skipif(
    not kernel.numpy_available(), reason="numpy kernel tier not importable",
)


class TestCostModel:
    @needs_numpy
    def test_thresholds_gate_small_inputs(self):
        for layer, threshold in backend._THRESHOLDS.items():
            if threshold > 1:
                assert kernel.would_select(layer, threshold - 1) == "python"
            assert kernel.would_select(layer, threshold) == "numpy"

    @needs_numpy
    def test_select_records_metrics(self):
        before = kernel.kernel_report()["selected"].get("dp/numpy", 0)
        assert kernel.select("dp", 10 ** 6) == "numpy"
        assert kernel.kernel_report()["selected"]["dp/numpy"] == before + 1

    def test_resolve_validates(self):
        with pytest.raises(ValueError):
            kernel.resolve("dp", 10, "fortran")

    @needs_numpy
    def test_resolve_honours_explicit_backend(self):
        assert kernel.resolve("dp", 2, "python") == "python"
        assert kernel.resolve("dp", 2, "numpy") == "numpy"


class TestOverrides:
    @needs_numpy
    def test_force_backend_beats_size(self):
        with kernel.force_backend("numpy"):
            assert kernel.would_select("dp", 1) == "numpy"
        with kernel.force_backend("python"):
            assert kernel.would_select("dp", 10 ** 9) == "python"
        assert kernel.would_select("dp", 1) == "python"

    def test_force_backend_validates(self):
        with pytest.raises(ValueError):
            with kernel.force_backend("cuda"):
                pass

    @needs_numpy
    def test_env_variable_forces(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        assert kernel.would_select("dp", 10 ** 9) == "python"
        assert kernel.numpy_or_none() is None
        monkeypatch.setenv("REPRO_KERNEL", "numpy")
        assert kernel.would_select("dp", 1) == "numpy"
        # Unknown values are ignored, not an error.
        monkeypatch.setenv("REPRO_KERNEL", "gpu")
        assert backend._env_force() is None

    @needs_numpy
    def test_force_backend_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL", "python")
        with kernel.force_backend("numpy"):
            assert kernel.would_select("dp", 1) == "numpy"


class TestReport:
    def test_report_shape(self):
        report = kernel.kernel_report()
        assert set(report) == {
            "numpy_available", "numpy_version", "forced", "layers",
            "thresholds", "selected", "fallbacks",
        }
        assert report["layers"] == sorted(backend._THRESHOLDS)
        assert report["thresholds"] == backend._THRESHOLDS

    @needs_numpy
    def test_fallback_accounting(self):
        before = kernel.kernel_report()["fallbacks"].get("dp/test-reason", 0)
        kernel.note_fallback("dp", "test-reason")
        assert (
            kernel.kernel_report()["fallbacks"]["dp/test-reason"] == before + 1
        )


class TestPlanDescriptions:
    """``describe_for`` surfaces the tier — the string behind
    ``Result.backend`` and ``.explain()``."""

    @needs_numpy
    def test_dp_plan_tier(self):
        plan = compile_plan(star_graph(3))
        assert plan.kind == "dp"
        assert plan.describe_for(random_graph(60, 0.2, seed=3)).endswith(
            "/numpy",
        )
        assert plan.describe_for(random_graph(8, 0.2, seed=3)).endswith(
            "/python",
        )

    @needs_numpy
    def test_brute_plan_tier(self):
        plan = compile_plan(complete_graph(4))
        assert plan.kind == "brute"
        assert plan.describe_for(random_graph(200, 0.1, seed=4)).endswith(
            "/numpy",
        )

    @needs_numpy
    def test_matrix_plan_tier(self):
        plan = compile_plan(path_graph(5))
        assert plan.kind == "matrix"
        assert plan.describe_for(random_graph(30, 0.2, seed=5)).endswith(
            "/numpy",
        )

    @needs_numpy
    def test_result_backend_carries_tier(self):
        from repro import HomCountTask, Session

        result = Session().run(
            HomCountTask(star_graph(3), random_graph(64, 0.2, seed=6)),
        )
        assert result.backend is not None
        assert result.backend.endswith(("/numpy", "/python"))
        assert "backend" in result.explain()
