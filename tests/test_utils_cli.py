"""Unit tests for shared utilities and the command-line interface."""

from fractions import Fraction

import pytest

from repro.cli import main
from repro.utils import (
    binomial,
    matrix_rank_exact,
    multiset_key,
    pairs,
    partition_moebius,
    powerset,
    set_partitions,
    solve_linear_system_exact,
    vandermonde_solve,
)


class TestLinearAlgebra:
    def test_solve_identity(self):
        assert solve_linear_system_exact([[1, 0], [0, 1]], [3, 4]) == [
            Fraction(3), Fraction(4),
        ]

    def test_solve_requires_square(self):
        with pytest.raises(ValueError):
            solve_linear_system_exact([[1, 2]], [1])

    def test_solve_singular_rejected(self):
        with pytest.raises(ValueError):
            solve_linear_system_exact([[1, 1], [2, 2]], [1, 2])

    def test_solve_exactness(self):
        # A system whose float solution would drift.
        matrix = [[10 ** 12, 1], [1, 1]]
        rhs = [10 ** 12 + 2, 3]
        x = solve_linear_system_exact(matrix, rhs)
        assert x == [Fraction(1), Fraction(2)]

    def test_rank(self):
        assert matrix_rank_exact([[1, 2], [2, 4]]) == 1
        assert matrix_rank_exact([[1, 0], [0, 1]]) == 2
        assert matrix_rank_exact([]) == 0
        assert matrix_rank_exact([[0, 0], [0, 0]]) == 0

    def test_vandermonde(self):
        # f(x) = 2 + 3x: values at 1, 2 are 5, 8.
        coefficients = vandermonde_solve([1, 2], [5, 8])
        assert coefficients == [Fraction(2), Fraction(3)]

    def test_vandermonde_distinct_points(self):
        with pytest.raises(ValueError):
            vandermonde_solve([1, 1], [2, 3])


class TestCombinatorics:
    def test_set_partitions_bell_numbers(self):
        # Bell numbers: 1, 1, 2, 5, 15.
        assert sum(1 for _ in set_partitions([])) == 1
        assert sum(1 for _ in set_partitions([1])) == 1
        assert sum(1 for _ in set_partitions([1, 2])) == 2
        assert sum(1 for _ in set_partitions([1, 2, 3])) == 5
        assert sum(1 for _ in set_partitions([1, 2, 3, 4])) == 15

    def test_partitions_cover_all_elements(self):
        for partition in set_partitions([1, 2, 3]):
            flat = sorted(x for block in partition for x in block)
            assert flat == [1, 2, 3]

    def test_moebius_values(self):
        assert partition_moebius([[1], [2], [3]]) == 1
        assert partition_moebius([[1, 2], [3]]) == -1
        assert partition_moebius([[1, 2, 3]]) == 2

    def test_moebius_sums_to_zero(self):
        """Σ_P μ(0̂, P) = 0 for n ≥ 2 (Möbius inversion sanity)."""
        total = sum(partition_moebius(p) for p in set_partitions([1, 2, 3]))
        assert total == 0

    def test_pairs(self):
        assert list(pairs([1, 2, 3])) == [(1, 2), (1, 3), (2, 3)]

    def test_powerset(self):
        assert list(powerset([1, 2])) == [(), (1,), (2,), (1, 2)]

    def test_multiset_key(self):
        assert multiset_key([3, 1, 2, 1]) == (1, 1, 2, 3)

    def test_binomial(self):
        assert binomial(5, 2) == 10
        assert binomial(5, 0) == 1
        assert binomial(5, 6) == 0
        assert binomial(5, -1) == 0


class TestCli:
    def test_wl_dim_command(self, capsys):
        code = main(["wl-dim", "q(x1, x2) :- E(x1, y), E(x2, y)"])
        assert code == 0
        assert capsys.readouterr().out.strip() == "2"

    def test_analyze_command(self, capsys):
        code = main(["analyze", "q(x1, x2) :- E(x1, y), E(x2, y)"])
        assert code == 0
        output = capsys.readouterr().out
        assert "wl_dimension" in output
        assert "semantic_extension_width" in output

    def test_witness_command(self, capsys):
        code = main([
            "witness", "q(x1, x2) :- E(x1, y), E(x2, y)",
            "--max-multiplicity", "1",
        ])
        assert code == 0
        assert "ALL CHECKS PASS     True" in capsys.readouterr().out

    def test_dominating_command(self, capsys):
        code = main(["dominating", "--n", "6", "--p", "0.5", "--k", "2", "--seed", "3"])
        assert code == 0
        output = capsys.readouterr().out
        assert "brute-force count" in output

    def test_parse_error_reported(self, capsys):
        code = main(["wl-dim", "q(x) :- R(x, y)"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_encode_stats_command(self, capsys):
        code = main([
            "encode-stats", "--generator", "cycle", "--n", "24", "--rich-labels",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "encode (CSR + codec)" in output
        assert "IndexedGraph bytes" in output

    def test_encode_stats_json(self, capsys):
        import json

        code = main([
            "encode-stats", "--generator", "random", "--n", "20", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "encode-stats"
        assert payload["vertices"] == 20
        assert payload["indexed_bytes"] > 0
        assert len(payload["structural_digest"]) == 64


class TestCliExtended:
    def test_count_command(self, capsys):
        code = main([
            "count", "q(x1, x2) :- E(x1, y), E(x2, y)",
            "--n", "7", "--seed", "3", "--interpolate",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "|Ans|" in output
        assert "[ok]" in output

    def test_count_with_graph6(self, capsys):
        from repro.graphs import cycle_graph
        from repro.graphs.io import to_graph6

        code = main([
            "count", "q(x1, x2) :- E(x1, y), E(x2, y)",
            "--graph6", to_graph6(cycle_graph(5)),
        ])
        assert code == 0
        assert "|Ans| 15" in capsys.readouterr().out

    def test_count_batch(self, capsys):
        code = main([
            "count", "q(x1, x2) :- E(x1, y), E(x2, y)",
            "--n", "6", "--seed", "2", "--batch", "3",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert output.count("|Ans|") == 3
        assert "engine:" in output

    def test_engine_stats_command(self, capsys):
        code = main([
            "engine-stats", "--tw", "1", "--max-pattern-vertices", "4",
            "--targets", "3", "--n", "6",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "plan kinds" in output
        assert "count_hit_rate" in output

    def test_union_command(self, capsys):
        code = main([
            "union",
            "q(x1, x2) :- E(x1, y), E(x2, y) ; q(x1, x2) :- E(x1, x2)",
        ])
        assert code == 0
        output = capsys.readouterr().out
        assert "hsew = WL-dim    2" in output

    def test_union_mismatched_free_variables(self, capsys):
        code = main(["union", "q(x) :- E(x, y) ; q(a, b) :- E(a, b)"])
        assert code == 2


class TestCliJson:
    """--json output must match the service API payload shapes exactly."""

    def test_wl_dim_json(self, capsys):
        import json

        code = main(["wl-dim", "q(x1, x2) :- E(x1, y), E(x2, y)", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "wl-dim"
        assert payload["wl_dimension"] == 2

    def test_analyze_json(self, capsys):
        import json

        code = main(["analyze", "q(x1) :- E(x1, y)", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "analyze"
        assert payload["analysis"]["wl_dimension"] == 1

    def test_count_json_single_host(self, capsys):
        import json

        code = main([
            "count", "q(x1, x2) :- E(x1, y), E(x2, y)",
            "--n", "7", "--seed", "3", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "count-answers"
        assert payload["count"] == 25
        assert payload["method"] == "interpolation"

    def test_count_json_batch(self, capsys):
        import json

        code = main([
            "count", "q(x1, x2) :- E(x1, y), E(x2, y)",
            "--n", "6", "--seed", "2", "--batch", "3", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "count-answers-batch"
        assert len(payload["results"]) == 3
        assert "engine" in payload

    def test_cli_payload_matches_service_payload(self, capsys):
        """True CLI/service parity: the `--json` stdout of the CLI equals
        the HTTP response of the service for the same query and host."""
        import json

        from repro.engine import set_default_engine
        from repro.graphs import random_graph
        from repro.graphs.io import to_graph6
        from repro.service import BackgroundServer, ServiceClient

        text = "q(x1, x2) :- E(x1, y), E(x2, y)"
        host = random_graph(7, 0.4, seed=3)

        assert main(["count", text, "--graph6", to_graph6(host), "--json"]) == 0
        cli_payload = json.loads(capsys.readouterr().out)

        try:
            with BackgroundServer(workers=1) as server:
                service_payload = ServiceClient(port=server.port).count_answers(
                    text, host,
                )
        finally:
            set_default_engine(None)
        assert cli_payload == service_payload

        assert main(["wl-dim", text, "--json"]) == 0
        cli_wl = json.loads(capsys.readouterr().out)
        try:
            with BackgroundServer(workers=1) as server:
                service_wl = ServiceClient(port=server.port).wl_dim(text)
        finally:
            set_default_engine(None)
        assert cli_wl == service_wl

    def test_engine_stats_persistent(self, capsys, tmp_path):
        args = [
            "engine-stats", "--tw", "1", "--max-pattern-vertices", "4",
            "--targets", "3", "--n", "6", "--persistent", str(tmp_path / "tier"),
        ]
        assert main(args) == 0
        cold = capsys.readouterr().out
        assert "persistent tier" in cold
        assert "counts_stored" in cold
        # second run on the same directory starts warm
        assert main(args) == 0
        warm = capsys.readouterr().out
        compiled = [
            line for line in warm.splitlines() if "plans_compiled" in line
        ]
        assert compiled and compiled[0].split()[-1] == "0"


class TestCliServeClient:
    def test_client_against_background_server(self, capsys):
        import json

        from repro.engine import set_default_engine
        from repro.graphs import cycle_graph
        from repro.graphs.io import to_graph6
        from repro.service import BackgroundServer

        try:
            with BackgroundServer(workers=2) as server:
                port = str(server.port)
                assert main(["client", "--port", port, "health"]) == 0
                assert json.loads(capsys.readouterr().out)["status"] == "ok"

                assert main([
                    "client", "--port", port, "register", "--name", "hosts",
                    "--n", "10", "--p", "0.4", "--seed", "2",
                ]) == 0
                assert json.loads(capsys.readouterr().out)["vertices"] == 10

                assert main([
                    "client", "--port", port, "count",
                    "--pattern-graph6", to_graph6(cycle_graph(4)),
                    "--target", "hosts",
                ]) == 0
                count_payload = json.loads(capsys.readouterr().out)
                assert count_payload["kind"] == "count"
                assert count_payload["count"] > 0

                assert main([
                    "client", "--port", port, "count-answers",
                    "q(x1, x2) :- E(x1, y), E(x2, y)", "--target", "hosts",
                ]) == 0
                answers = json.loads(capsys.readouterr().out)
                assert answers["kind"] == "count-answers"

                assert main(["client", "--port", port, "stats"]) == 0
                stats = json.loads(capsys.readouterr().out)
                assert stats["engine"]["count_requests"] >= 1
        finally:
            set_default_engine(None)

    def test_client_unreachable_server_reports_error(self, capsys):
        code = main(["client", "--port", "1", "health"])
        assert code == 2
        assert "error" in capsys.readouterr().err
