"""The full topology end-to-end: router + supervised workers, driven by
an unmodified :class:`ServiceClient`, checked against the brute oracle.

The chaos test is the subsystem's contract: SIGKILL a worker while a
client pool hammers counting routes, and assert *zero* client-visible
failures with every value exact — worker death must cost latency only.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster import Cluster, ClusterRouter
from repro.graphs import (
    cycle_graph,
    disjoint_union_many,
    path_graph,
    random_graph,
)
from repro.homs import count_homomorphisms_brute
from repro.service.client import ServiceClient


@pytest.fixture(scope="module")
def cluster():
    with Cluster(workers=2, hedge_after=0.5) as running:
        yield running


@pytest.fixture(scope="module")
def client(cluster):
    client = ServiceClient(port=cluster.port)
    client.wait_ready(timeout=30.0)
    return client


class TestClusterServing:
    def test_counts_match_oracle(self, client):
        host = random_graph(9, 0.4, seed=11)
        client.register_graph("hosts", host)
        for pattern in (path_graph(3), cycle_graph(4), cycle_graph(5)):
            response = client.count(pattern, "hosts")
            assert response["count"] == count_homomorphisms_brute(pattern, host)

    def test_sharded_dataset_exact(self, client):
        host = disjoint_union_many(
            [random_graph(6, 0.5, seed=2), cycle_graph(6), path_graph(5)],
        )
        dataset = client.register_graph("sharded", host, shards=3)
        assert dataset["shards"] == 3
        pattern = path_graph(3)
        response = client.count(pattern, "sharded")
        assert response["shards"] == 3
        assert response["count"] == count_homomorphisms_brute(pattern, host)

    def test_inline_target(self, client):
        host = random_graph(7, 0.5, seed=3)
        response = client.count(path_graph(4), host)
        assert response["count"] == count_homomorphisms_brute(
            path_graph(4), host,
        )

    def test_health_aggregates_workers(self, client):
        status, payload = client.healthz()
        assert status == 200
        assert payload["status"] == "ok"
        worker_probes = [
            name for name in payload["probes"] if name.startswith("worker-")
        ]
        assert len(worker_probes) == 2
        assert "router-workers" in payload["probes"]

    def test_readyz_aggregates_workers(self, client):
        status, payload = client.readyz()
        assert status == 200
        assert payload["ready"] is True

    def test_stats_cluster_block(self, client):
        stats = client.stats()
        cluster_block = stats["cluster"]
        assert cluster_block["router"]["admitted"] == 2
        ids = [worker["id"] for worker in cluster_block["workers"]]
        assert ids == ["w0", "w1"]
        assert all(worker["reachable"] for worker in cluster_block["workers"])

    def test_subscription_and_update_fan_out(self, client, cluster):
        host = cycle_graph(6)
        client.register_graph("live", host)
        sub = client.subscribe("live", pattern=cycle_graph(3))
        assert sub["value"] == 0
        update = client.target_update("live", add_edges=[(0, 2)])
        # One chord on C6 creates exactly one triangle; 6 hom images.
        refreshed = {
            s["id"]: s["value"] for s in update["subscriptions"]
        }
        assert refreshed[sub["id"]] == 6
        assert update["version"] == 1
        # The mutation is in the replication log with its version.
        assert cluster.router.state.versions["live"] == 1

    def test_mutation_errors_do_not_commit(self, client, cluster):
        log_before = len(cluster.router.state.entries)
        with pytest.raises(Exception):
            client.target_update("no-such-dataset", add_edges=[(0, 1)])
        assert len(cluster.router.state.entries) == log_before

    def test_single_flight_coalesces_stampede(self, client, cluster):
        """A stampede of identical cold requests leaves the router as a
        single worker request: the router's coalesced counter moves."""
        pattern = cycle_graph(5)
        host = random_graph(24, 0.5, seed=77)  # slow enough to overlap
        client.register_graph("hot", host)
        results: list[dict] = []
        errors: list[Exception] = []

        def hammer():
            try:
                results.append(
                    ServiceClient(port=cluster.port).count(pattern, "hot"),
                )
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        values = {response["count"] for response in results}
        assert len(values) == 1
        metrics = cluster.router.request_counts
        assert metrics.get("/count", 0) >= 1


class TestRouterAggregation:
    def test_no_workers_is_failing(self):
        import asyncio

        router = ClusterRouter()
        try:
            status, payload, _ = asyncio.run(
                router.handle("GET", "/healthz", {}),
            )
        finally:
            router.close()
        assert status == 503
        assert payload["status"] == "failing"
        assert any("no workers" in reason for reason in payload["reasons"])

    def test_counting_without_workers_times_out_as_503(self):
        import asyncio

        router = ClusterRouter(request_timeout=0.4)
        try:
            status, payload, _ = asyncio.run(
                router.handle("POST", "/count", {"pattern": {}}),
            )
        finally:
            router.close()
        assert status == 503
        assert payload["code"] == "cluster-unavailable"


class TestChaos:
    def test_sigkill_under_load_is_invisible(self):
        """SIGKILL one of three workers mid-load: zero failed requests,
        every count exact, and the worker comes back respawned."""
        host = random_graph(9, 0.45, seed=21)
        patterns = [path_graph(n) for n in (2, 3, 4)] + [cycle_graph(4)]
        expected = {
            i: count_homomorphisms_brute(pattern, host)
            for i, pattern in enumerate(patterns)
        }
        with Cluster(workers=3, hedge_after=0.3) as cluster:
            client = ServiceClient(port=cluster.port)
            client.wait_ready(timeout=30.0)
            client.register_graph("chaos", host)
            failures: list[tuple] = []
            done = threading.Event()

            def load(worker_index: int) -> None:
                local = ServiceClient(port=cluster.port, timeout=60.0)
                i = worker_index
                while not done.is_set():
                    i = (i + 1) % len(patterns)
                    try:
                        response = local.count(patterns[i], "chaos")
                        if response["count"] != expected[i]:
                            failures.append((i, response))
                    except Exception as error:
                        failures.append((i, error))

            threads = [
                threading.Thread(target=load, args=(t,)) for t in range(4)
            ]
            for thread in threads:
                thread.start()
            try:
                time.sleep(0.5)  # load established
                old_pid = cluster.kill_worker("w1")
                time.sleep(2.5)  # ride through death + respawn
            finally:
                done.set()
                for thread in threads:
                    thread.join(timeout=60.0)
            assert failures == []
            # The worker came back as a fresh admitted process.
            deadline = time.time() + 30.0
            while time.time() < deadline:
                pids = cluster.worker_pids()
                if (
                    pids.get("w1") not in (None, old_pid)
                    and "w1" in cluster.router.worker_ids
                ):
                    break
                time.sleep(0.2)
            assert cluster.worker_pids()["w1"] != old_pid
            assert sorted(cluster.router.worker_ids) == ["w0", "w1", "w2"]
            status, payload = client.healthz()
            assert status == 200 and payload["status"] == "ok"
            # And the respawned worker answers with replayed state.
            response = client.count(patterns[0], "chaos")
            assert response["count"] == expected[0]
