"""The consistent-hash ring: routing laws, balance, minimal movement."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster.ring import HashRing, ring_hash


def keys(count: int) -> list[str]:
    return [f"task-{i}" for i in range(count)]


node_names = st.lists(
    st.text(alphabet="abcdefgh", min_size=1, max_size=4),
    min_size=1, max_size=8, unique=True,
)


class TestRingBasics:
    def test_empty_ring_raises(self):
        ring = HashRing()
        with pytest.raises(LookupError):
            ring.node_for("anything")
        with pytest.raises(LookupError):
            ring.nodes_for("anything")

    def test_single_node_owns_everything(self):
        ring = HashRing(["only"])
        assert all(ring.node_for(k) == "only" for k in keys(100))

    def test_routing_is_deterministic(self):
        ring_a = HashRing(["w0", "w1", "w2"])
        ring_b = HashRing(["w2", "w0", "w1"])  # insertion order irrelevant
        for key in keys(200):
            assert ring_a.node_for(key) == ring_b.node_for(key)

    def test_hash_is_process_independent(self):
        # sha256, not salted builtin hash: the routing table would differ
        # between router restarts otherwise, churning every cache.
        assert ring_hash("w0#0") == int.from_bytes(
            __import__("hashlib").sha256(b"w0#0").digest()[:8], "big",
        )

    def test_add_remove_idempotent(self):
        ring = HashRing(["a", "b"])
        ring.add("a")
        ring.remove("missing")
        assert ring.nodes == frozenset({"a", "b"})
        ring.remove("a")
        ring.remove("a")
        assert ring.nodes == frozenset({"b"})
        assert len(ring) == 1

    def test_nodes_for_preference_list(self):
        ring = HashRing(["w0", "w1", "w2"])
        for key in keys(50):
            preference = ring.nodes_for(key)
            assert preference[0] == ring.node_for(key)
            assert sorted(preference) == ["w0", "w1", "w2"]  # all, distinct
            assert ring.nodes_for(key, count=2) == preference[:2]

    def test_removal_promotes_next_preference(self):
        ring = HashRing(["w0", "w1", "w2"])
        for key in keys(50):
            first, second = ring.nodes_for(key, count=2)
            ring.remove(first)
            assert ring.node_for(key) == second
            ring.add(first)

    def test_ownership_diagnostics(self):
        ring = HashRing(["w0", "w1"])
        counts = ring.ownership(keys(100))
        assert sum(counts.values()) == 100
        assert set(counts) == {"w0", "w1"}


class TestRingProperties:
    @given(nodes=node_names)
    @settings(max_examples=30, deadline=None)
    def test_balance_within_bounds(self, nodes):
        """No node owns a pathological share of the keyspace: with 64
        vnodes each, every node stays within 4x of the fair share (the
        gate that matters operationally — no worker melts while the rest
        idle)."""
        ring = HashRing(nodes, replicas=64)
        sample = keys(1000)
        counts = ring.ownership(sample)
        fair = len(sample) / len(nodes)
        assert max(counts.values()) <= max(4 * fair, 25)

    @given(nodes=node_names, extra=st.text(alphabet="xyz", min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_minimal_movement_on_join(self, nodes, extra):
        """Adding one node only moves keys *to* that node — consistent
        hashing's defining property.  Keys never shuffle between the
        survivors, so their worker caches stay warm."""
        if extra in nodes:
            nodes = [n for n in nodes if n != extra]
            if not nodes:
                return
        ring = HashRing(nodes)
        sample = keys(400)
        before = {key: ring.node_for(key) for key in sample}
        ring.add(extra)
        after = {key: ring.node_for(key) for key in sample}
        for key in sample:
            if after[key] != before[key]:
                assert after[key] == extra
        moved = sum(1 for key in sample if after[key] != before[key])
        # Expected share is ~1/(n+1); allow generous slack for hash noise.
        assert moved <= len(sample) * 3 / (len(nodes) + 1) + 30

    @given(nodes=node_names)
    @settings(max_examples=30, deadline=None)
    def test_minimal_movement_on_leave(self, nodes):
        """Removing a node only moves *its* keys; add-then-remove is a
        perfect round-trip back to the original routing table."""
        ring = HashRing(nodes)
        sample = keys(400)
        before = {key: ring.node_for(key) for key in sample}
        victim = sorted(nodes)[0]
        ring.remove(victim)
        if len(ring):
            after = {key: ring.node_for(key) for key in sample}
            for key in sample:
                if before[key] != victim:
                    assert after[key] == before[key]
        ring.add(victim)
        assert {key: ring.node_for(key) for key in sample} == before
