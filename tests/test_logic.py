"""Unit tests for counting logic C^k (characterisation (II))."""

import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    six_cycle,
    star_graph,
    two_triangles,
)
from repro.logic import (
    And,
    Edge,
    Equal,
    Not,
    Top,
    ck_equivalent_on_battery,
    count_exists,
    exact_count,
    exists,
    forall,
    has_at_least_n_vertices,
    has_path_of_length,
    has_triangle,
    has_vertex_of_degree_at_least,
    query_to_sentence,
    sentence_battery,
    separating_sentence,
)
from repro.queries import star_query
from repro.wl import k_wl_equivalent, wl_1_equivalent


class TestEvaluation:
    def test_atoms(self):
        g = path_graph(3)
        assert Edge("x", "y").evaluate(g, {"x": 0, "y": 1})
        assert not Edge("x", "y").evaluate(g, {"x": 0, "y": 2})
        assert Equal("x", "y").evaluate(g, {"x": 1, "y": 1})
        assert Top().evaluate(g, {})

    def test_connectives(self):
        g = path_graph(3)
        assignment = {"x": 0, "y": 1}
        formula = And(Edge("x", "y"), Not(Equal("x", "y")))
        assert formula.evaluate(g, assignment)
        assert (Edge("x", "y") | Equal("x", "y")).evaluate(g, assignment)
        assert not (~Edge("x", "y")).evaluate(g, assignment)

    def test_counting_quantifier(self):
        g = star_graph(3)
        # The centre has >= 3 neighbours; no vertex has >= 4.
        assert exists("x", count_exists("y", 3, Edge("x", "y"))).holds_in(g)
        assert not exists("x", count_exists("y", 4, Edge("x", "y"))).holds_in(g)

    def test_forall(self):
        # Every vertex of C5 has a neighbour.
        assert forall("x", exists("y", Edge("x", "y"))).holds_in(cycle_graph(5))
        # Not every vertex of a star has 2 neighbours.
        assert not forall(
            "x", count_exists("y", 2, Edge("x", "y")),
        ).holds_in(star_graph(3))

    def test_exact_count(self):
        g = cycle_graph(5)
        assert exact_count("x", 5, Top()).holds_in(g)
        assert not exact_count("x", 4, Top()).holds_in(g)

    def test_sentence_requires_no_free_variables(self):
        with pytest.raises(ValueError):
            Edge("x", "y").holds_in(path_graph(2))

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            count_exists("x", 0, Top())


class TestWidth:
    def test_variable_reuse_keeps_width(self):
        """The C² path idiom: any fixed-length walk in two variables."""
        sentence = has_path_of_length(5)
        assert sentence.width() == 2

    def test_triangle_needs_three(self):
        assert has_triangle().width() == 3

    def test_battery_respects_width(self):
        for width in (1, 2, 3):
            for sentence in sentence_battery(width):
                assert sentence.width() <= width


class TestCharacterisationII:
    def test_c2_blind_on_classic_pair(self):
        """2K3 ≅₁ C6 ⇒ agreement on all C² battery sentences."""
        assert wl_1_equivalent(two_triangles(), six_cycle())
        assert ck_equivalent_on_battery(two_triangles(), six_cycle(), 2)

    def test_c3_separates_classic_pair(self):
        """≇₂ ⇒ some C³ sentence separates: the triangle sentence."""
        assert not k_wl_equivalent(two_triangles(), six_cycle(), 2)
        sentence = separating_sentence(two_triangles(), six_cycle(), 3)
        assert sentence is not None
        assert sentence.width() == 3

    def test_triangle_sentence_is_the_separator(self):
        assert has_triangle().holds_in(two_triangles())
        assert not has_triangle().holds_in(six_cycle())

    def test_cfi_pair_agrees_on_battery(self):
        from repro.cfi import cfi_pair

        pair = cfi_pair(complete_graph(4))  # 2-WL-equivalent
        assert ck_equivalent_on_battery(pair.untwisted, pair.twisted, 3)

    def test_c1_counts_vertices(self):
        assert has_at_least_n_vertices(5).holds_in(cycle_graph(5))
        assert not has_at_least_n_vertices(6).holds_in(cycle_graph(5))

    def test_degree_sentences(self):
        assert has_vertex_of_degree_at_least(4).holds_in(star_graph(4))
        assert not has_vertex_of_degree_at_least(3).holds_in(cycle_graph(7))


class TestQueryTranslation:
    def test_boolean_shadow_of_star(self):
        sentence = query_to_sentence(star_query(2))
        assert sentence.width() == 3
        assert sentence.holds_in(path_graph(3))
        from repro.graphs import empty_graph

        assert not sentence.holds_in(empty_graph(4))

    def test_shadow_matches_hom_existence(self):
        from repro.homs import exists_homomorphism
        from repro.graphs import random_graph

        query = star_query(3)
        sentence = query_to_sentence(query)
        for seed in range(3):
            host = random_graph(6, 0.3, seed=seed)
            assert sentence.holds_in(host) == exists_homomorphism(
                query.graph, host,
            )
