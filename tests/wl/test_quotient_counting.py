"""Unit tests: tree hom counts from the 1-WL quotient (Dvořák direction)."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
    six_cycle,
    star_graph,
    two_triangles,
)
from repro.graphs.enumeration import all_trees_up_to_iso
from repro.homs import count_homomorphisms
from repro.wl.quotient_counting import (
    equitable_quotient,
    tree_hom_count_from_quotient,
    tree_hom_count_via_quotient,
)


class TestAgainstDirectCounting:
    @pytest.mark.parametrize(
        "tree_factory",
        [
            lambda: path_graph(2),
            lambda: path_graph(4),
            lambda: star_graph(3),
            lambda: Graph(edges=[(0, 1), (1, 2), (1, 3), (3, 4)]),
        ],
        ids=["K2", "P4", "S3", "caterpillar"],
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_vertex_level_counting(self, tree_factory, seed):
        tree = tree_factory()
        host = random_graph(7, 0.45, seed=seed)
        assert tree_hom_count_via_quotient(tree, host) == (
            count_homomorphisms(tree, host)
        )

    def test_all_small_trees_on_structured_hosts(self):
        for host in (cycle_graph(6), complete_graph(4), star_graph(4)):
            for size in (2, 3, 4, 5):
                for tree in all_trees_up_to_iso(size):
                    assert tree_hom_count_via_quotient(tree, host) == (
                        count_homomorphisms(tree, host)
                    )

    def test_single_vertex_tree(self):
        host = random_graph(6, 0.4, seed=5)
        assert tree_hom_count_via_quotient(Graph(vertices=[0]), host) == 6

    def test_empty_tree(self):
        assert tree_hom_count_via_quotient(Graph(), cycle_graph(4)) == 1

    def test_empty_host(self):
        assert tree_hom_count_via_quotient(path_graph(2), Graph()) == 0


class TestValidation:
    def test_non_tree_rejected(self):
        with pytest.raises(GraphError):
            tree_hom_count_via_quotient(cycle_graph(3), cycle_graph(5))

    def test_disconnected_pattern_rejected(self):
        forest = Graph(edges=[(0, 1)])
        forest.add_vertex(2)
        with pytest.raises(GraphError):
            tree_hom_count_via_quotient(forest, cycle_graph(4))


class TestDvorakDirection:
    def test_common_quotient_implies_equal_tree_counts(self):
        """2K3 and C6 share their equitable quotient parameters up to the
        quotient's own structure — and indeed agree on every tree count,
        computed *from the quotients alone*."""
        quotient_a = equitable_quotient(two_triangles())
        quotient_b = equitable_quotient(six_cycle())
        for size in (2, 3, 4, 5, 6):
            for tree in all_trees_up_to_iso(size):
                assert tree_hom_count_from_quotient(tree, quotient_a) == (
                    tree_hom_count_from_quotient(tree, quotient_b)
                )

    def test_quotient_of_regular_graph(self):
        sizes, degrees = equitable_quotient(cycle_graph(8))
        assert sizes == (8,)
        assert degrees == ((2,),)
