"""Unit tests for the hom-indistinguishability oracle (Definition 19
restricted to bounded pattern size)."""

from repro.graphs import cycle_graph, six_cycle, two_triangles
from repro.treewidth import treewidth
from repro.wl import (
    bounded_treewidth_patterns,
    distinguishing_pattern,
    hom_indistinguishable_up_to,
    hom_profile,
    k_wl_equivalent,
)


class TestPatternFamilies:
    def test_tw1_patterns_are_trees_or_forests(self):
        for pattern in bounded_treewidth_patterns(1, 5):
            assert treewidth(pattern) <= 1
            assert pattern.is_connected()

    def test_tw1_pattern_counts(self):
        # Connected graphs of treewidth ≤ 1 on ≤ 4 vertices are exactly the
        # trees: 1 + 1 + 1 + 2 = 5.
        assert len(bounded_treewidth_patterns(1, 4)) == 5

    def test_tw2_contains_cycles(self):
        patterns = bounded_treewidth_patterns(2, 4)
        assert any(p.num_edges() == p.num_vertices() == 3 for p in patterns)

    def test_monotone_in_k(self):
        small = set(map(id, bounded_treewidth_patterns(1, 4)))
        assert len(bounded_treewidth_patterns(2, 4)) >= len(small)


class TestOracleAgreesWithKwl:
    def test_classic_pair_tw1(self):
        """2K3 ≅₁ C6: equal hom counts from all trees (Definition 19)."""
        assert hom_indistinguishable_up_to(two_triangles(), six_cycle(), 1, 5)

    def test_classic_pair_tw2_separated(self):
        """The triangle (treewidth 2) separates them."""
        assert not hom_indistinguishable_up_to(two_triangles(), six_cycle(), 2, 4)
        witness = distinguishing_pattern(two_triangles(), six_cycle(), 2, 4)
        assert witness is not None
        assert treewidth(witness) == 2

    def test_agrees_with_refinement_on_samples(self):
        from repro.graphs import random_graph

        for seed in range(3):
            a = random_graph(6, 0.5, seed=seed)
            b = random_graph(6, 0.5, seed=seed + 50)
            refinement_verdict = k_wl_equivalent(a, b, 1)
            oracle_verdict = hom_indistinguishable_up_to(a, b, 1, 4)
            # The oracle is a relaxation: k-WL-equivalence implies oracle
            # equivalence; oracle separation implies k-WL separation.
            if refinement_verdict:
                assert oracle_verdict

    def test_profile_shape(self):
        profile = hom_profile(cycle_graph(4), 1, 3)
        assert len(profile) == len(bounded_treewidth_patterns(1, 3))
        assert all(isinstance(x, int) and x >= 0 for x in profile)

    def test_profile_is_invariant(self):
        g = cycle_graph(5)
        h = g.relabelled({i: f"x{i}" for i in range(5)})
        assert hom_profile(g, 1, 4) == hom_profile(h, 1, 4)
