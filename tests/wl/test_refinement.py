"""Unit tests for 1-WL colour refinement."""

from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    random_graph,
    six_cycle,
    star_graph,
    two_triangles,
)
from repro.wl import (
    ColourInterner,
    colour_histogram,
    colour_refinement,
    refinement_rounds,
    wl_1_equivalent,
)


class TestRefinement:
    def test_regular_graph_single_class(self):
        colours = colour_refinement(cycle_graph(6))
        assert len(set(colours.values())) == 1

    def test_path_classes(self):
        colours = colour_refinement(path_graph(5))
        # Orbits of P5 under Aut: {0,4}, {1,3}, {2} — refinement finds them.
        assert len(set(colours.values())) == 3

    def test_star_two_classes(self):
        colours = colour_refinement(star_graph(4))
        assert len(set(colours.values())) == 2

    def test_initial_colours_respected(self):
        g = cycle_graph(4)
        colours = colour_refinement(g, initial={0: "x", 1: "y", 2: "y", 3: "y"})
        # Individualising one vertex of C4 splits it fully by distance.
        assert len(set(colours.values())) == 3

    def test_shared_interner_comparable(self):
        interner = ColourInterner()
        a = colour_refinement(cycle_graph(5), interner=interner)
        b = colour_refinement(cycle_graph(5), interner=interner)
        assert colour_histogram(a) == colour_histogram(b)


class TestEquivalence:
    def test_classic_pair_equivalent(self):
        """2K3 vs C6 — the canonical 1-WL-equivalent non-isomorphic pair."""
        assert wl_1_equivalent(two_triangles(), six_cycle())

    def test_distinguishes_path_star(self):
        assert not wl_1_equivalent(path_graph(4), star_graph(3))

    def test_isomorphic_graphs_equivalent(self):
        g = random_graph(7, 0.4, seed=3)
        h = g.relabelled({v: f"u{v}" for v in g.vertices()})
        assert wl_1_equivalent(g, h)

    def test_distinguishes_different_degree_sequences(self):
        assert not wl_1_equivalent(cycle_graph(4), path_graph(4))

    def test_regular_same_degree_equivalent(self):
        """Any two d-regular graphs on equally many vertices are
        1-WL-equivalent."""
        assert wl_1_equivalent(petersen_graph(), _three_regular_alternative())

    def test_different_sizes(self):
        assert not wl_1_equivalent(cycle_graph(5), cycle_graph(6))


def _three_regular_alternative():
    """A 3-regular 10-vertex graph that is not the Petersen graph (it has
    triangles): the pentagonal prism."""
    from repro.graphs import prism_graph

    return prism_graph(5)


class TestRounds:
    def test_regular_graph_stabilises_immediately(self):
        assert refinement_rounds(cycle_graph(8)) == 0

    def test_path_needs_rounds(self):
        assert refinement_rounds(path_graph(6)) >= 2
