"""Unit tests for equitable partitions and fractional isomorphism
(characterisation (I))."""

import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    prism_graph,
    random_graph,
    six_cycle,
    star_graph,
    two_triangles,
)
from repro.wl import (
    coarsest_equitable_partition,
    doubly_stochastic_witness,
    fractionally_isomorphic,
    have_common_equitable_partition,
    is_equitable,
    partition_parameters,
    wl_1_equivalent,
)


class TestEquitablePartitions:
    def test_regular_graph_single_class(self):
        partition = coarsest_equitable_partition(cycle_graph(6))
        assert len(partition) == 1

    def test_star_two_classes(self):
        partition = coarsest_equitable_partition(star_graph(4))
        sizes = sorted(len(block) for block in partition)
        assert sizes == [1, 4]

    def test_path_orbit_classes(self):
        partition = coarsest_equitable_partition(path_graph(5))
        assert len(partition) == 3

    def test_result_is_equitable(self):
        for graph in (path_graph(6), star_graph(3), random_graph(8, 0.4, seed=9)):
            partition = coarsest_equitable_partition(graph)
            assert is_equitable(graph, partition)

    def test_is_equitable_rejects_uneven(self):
        g = path_graph(3)
        # {ends ∪ middle} as one block: middle has 2 neighbours inside, ends 1.
        assert not is_equitable(g, [frozenset({0, 1, 2})])

    def test_is_equitable_requires_cover(self):
        assert not is_equitable(path_graph(3), [frozenset({0, 1})])

    def test_partition_parameters(self):
        g = star_graph(3)
        partition = coarsest_equitable_partition(g)
        sizes, degrees = partition_parameters(g, partition)
        assert sorted(sizes) == [1, 3]
        # The centre sees 3 leaves; each leaf sees 1 centre.
        flattened = sorted(value for row in degrees for value in row if value)
        assert flattened == [1, 3]


class TestFractionalIsomorphism:
    def test_tinhofer_matches_wl1(self):
        """Characterisation (I): fractional isomorphism ⇔ 1-WL-equivalence."""
        pairs = [
            (two_triangles(), six_cycle()),
            (petersen_graph(), prism_graph(5)),
            (path_graph(4), star_graph(3)),
            (cycle_graph(5), cycle_graph(5)),
            (random_graph(7, 0.4, seed=1), random_graph(7, 0.4, seed=2)),
        ]
        for first, second in pairs:
            assert fractionally_isomorphic(first, second) == (
                wl_1_equivalent(first, second)
            )

    def test_size_mismatch(self):
        assert not fractionally_isomorphic(cycle_graph(4), cycle_graph(5))

    def test_common_partition_symmetry(self):
        first, second = two_triangles(), six_cycle()
        assert have_common_equitable_partition(first, second) == (
            have_common_equitable_partition(second, first)
        )


class TestDoublyStochasticWitness:
    def test_witness_for_classic_pair(self):
        numpy = pytest.importorskip("numpy")
        matrix = doubly_stochastic_witness(two_triangles(), six_cycle())
        assert matrix is not None
        # Doubly stochastic up to LP tolerance.
        assert numpy.allclose(matrix.sum(axis=0), 1.0, atol=1e-7)
        assert numpy.allclose(matrix.sum(axis=1), 1.0, atol=1e-7)
        assert (matrix >= -1e-9).all()

    def test_witness_satisfies_intertwining(self):
        numpy = pytest.importorskip("numpy")
        first, second = two_triangles(), six_cycle()
        matrix = doubly_stochastic_witness(first, second)
        n = 6
        a = numpy.zeros((n, n))
        b = numpy.zeros((n, n))
        indexed_a, _ = first.to_index_graph()
        indexed_b, _ = second.to_index_graph()
        for u, v in indexed_a.edges():
            a[u][v] = a[v][u] = 1
        for u, v in indexed_b.edges():
            b[u][v] = b[v][u] = 1
        assert numpy.allclose(a @ matrix, matrix @ b, atol=1e-7)

    def test_no_witness_for_distinguishable_pair(self):
        pytest.importorskip("numpy")
        assert doubly_stochastic_witness(path_graph(4), star_graph(3)) is None
