"""Unit tests for folklore k-WL and the WL hierarchy."""

import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
    six_cycle,
    star_graph,
    two_triangles,
)
from repro.wl import (
    atomic_type,
    k_wl_colouring,
    k_wl_equivalent,
    tuple_colour_histogram,
    wl_distinguishing_dimension,
)


class TestAtomicTypes:
    def test_equality_pattern(self):
        g = path_graph(3)
        assert atomic_type(g, (0, 0)) == ((True, False),)
        assert atomic_type(g, (0, 1)) == ((False, True),)
        assert atomic_type(g, (0, 2)) == ((False, False),)

    def test_atomic_type_is_partial_iso_invariant(self):
        g = cycle_graph(5)
        assert atomic_type(g, (0, 1)) == atomic_type(g, (2, 3))
        assert atomic_type(g, (0, 2)) == atomic_type(g, (1, 3))
        assert atomic_type(g, (0, 1)) != atomic_type(g, (0, 2))

    def test_triple_types(self):
        g = complete_graph(3)
        t = atomic_type(g, (0, 1, 2))
        assert t == ((False, True), (False, True), (False, True))


class TestKwlColouring:
    def test_requires_k_at_least_two(self):
        with pytest.raises(ValueError):
            k_wl_colouring(path_graph(3), 1)

    def test_stable_colouring_size(self):
        g = cycle_graph(4)
        colours = k_wl_colouring(g, 2)
        assert len(colours) == 16
        histogram = tuple_colour_histogram(colours)
        assert sum(histogram.values()) == 16

    def test_vertex_transitive_diagonal(self):
        g = cycle_graph(5)
        colours = k_wl_colouring(g, 2)
        diagonal_colours = {colours[(v, v)] for v in g.vertices()}
        assert len(diagonal_colours) == 1


class TestKwlEquivalence:
    def test_2wl_separates_classic_pair(self):
        """2-WL (unlike 1-WL) distinguishes 2K3 from C6 — triangle counts
        are 2-WL-invariant."""
        assert not k_wl_equivalent(two_triangles(), six_cycle(), 2)

    def test_1wl_dispatch(self):
        assert k_wl_equivalent(two_triangles(), six_cycle(), 1)

    def test_isomorphic_graphs_equivalent_at_any_level(self):
        g = random_graph(6, 0.5, seed=20)
        h = g.relabelled({v: f"w{v}" for v in g.vertices()})
        assert k_wl_equivalent(g, h, 1)
        assert k_wl_equivalent(g, h, 2)

    def test_size_mismatch_fast_path(self):
        assert not k_wl_equivalent(cycle_graph(5), cycle_graph(6), 2)

    def test_edge_count_mismatch_fast_path(self):
        assert not k_wl_equivalent(path_graph(4), star_graph(3), 2)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            k_wl_equivalent(path_graph(2), path_graph(2), 0)

    def test_monotone_hierarchy(self):
        """If 1-WL distinguishes, so does 2-WL (contrapositive check on a
        pair distinguished at level 1)."""
        a, b = path_graph(4), star_graph(3)
        assert not k_wl_equivalent(a, b, 1)
        assert not k_wl_equivalent(a, b, 2)


class TestDistinguishingDimension:
    def test_classic_pair_dimension(self):
        assert wl_distinguishing_dimension(two_triangles(), six_cycle(), 3) == 2

    def test_degree_separated_pair(self):
        assert wl_distinguishing_dimension(path_graph(4), star_graph(3), 2) == 1

    def test_isomorphic_pair_none(self):
        g = cycle_graph(5)
        h = g.relabelled({i: i + 10 for i in range(5)})
        assert wl_distinguishing_dimension(g, h, 2) is None
