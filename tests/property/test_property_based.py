"""Property-based tests (hypothesis) for core invariants.

Strategy: random graphs/queries of bounded size, asserting the structural
identities the paper's proofs rely on.  Sizes are kept small so each example
runs in milliseconds; hypothesis explores the space.
"""

from hypothesis import given, settings, strategies as st

from repro.graphs import Graph, are_isomorphic, canonical_key, complement
from repro.graphs.operations import tensor_product
from repro.homs import (
    count_homomorphisms_brute,
    count_homomorphisms_dp,
    count_injective_homomorphisms,
    count_injective_homomorphisms_brute,
)
from repro.queries import (
    ConjunctiveQuery,
    count_answers,
    count_answers_by_projection,
    extension_width,
    semantic_extension_width,
)
from repro.treewidth import (
    optimal_tree_decomposition,
    treewidth,
    treewidth_lower_bound,
)
from repro.wl import wl_1_equivalent


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def graphs(draw, max_vertices=6, min_vertices=0):
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    graph = Graph(vertices=range(n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for edge in possible:
        if draw(st.booleans()):
            graph.add_edge(*edge)
    return graph


@st.composite
def connected_graphs(draw, max_vertices=6):
    n = draw(st.integers(min_value=1, max_value=max_vertices))
    graph = Graph(vertices=range(n))
    for v in range(1, n):
        graph.add_edge(v, draw(st.integers(min_value=0, max_value=v - 1)))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for i, j in possible:
        if not graph.has_edge(i, j) and draw(st.booleans()):
            graph.add_edge(i, j)
    return graph


@st.composite
def queries(draw, max_vertices=5):
    graph = draw(connected_graphs(max_vertices=max_vertices))
    vertices = graph.vertices()
    num_free = draw(st.integers(min_value=1, max_value=len(vertices)))
    free = vertices[:num_free]
    return ConjunctiveQuery(graph, free)


# ----------------------------------------------------------------------
# graph invariants
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(graphs())
def test_complement_involution(graph):
    assert complement(complement(graph)) == graph


@settings(max_examples=40, deadline=None)
@given(graphs(max_vertices=5))
def test_canonical_key_invariant_under_relabelling(graph):
    mapping = {v: f"r{v}" for v in graph.vertices()}
    assert canonical_key(graph) == canonical_key(graph.relabelled(mapping))


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=5), graphs(max_vertices=5))
def test_canonical_key_complete(first, second):
    assert (canonical_key(first) == canonical_key(second)) == are_isomorphic(
        first, second,
    )


# ----------------------------------------------------------------------
# treewidth invariants
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(graphs(max_vertices=7))
def test_treewidth_bounds_sandwich(graph):
    width = treewidth(graph)
    assert treewidth_lower_bound(graph) <= width
    assert width <= max(graph.num_vertices() - 1, 0)


@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=6, min_vertices=1))
def test_optimal_decomposition_valid_and_tight(graph):
    decomposition = optimal_tree_decomposition(graph)
    decomposition.validate(graph)
    assert decomposition.width == treewidth(graph)


@settings(max_examples=25, deadline=None)
@given(connected_graphs(max_vertices=6))
def test_treewidth_monotone_under_edge_removal(graph):
    width = treewidth(graph)
    for u, v in graph.edges()[:3]:
        smaller = graph.copy()
        smaller.remove_edge(u, v)
        assert treewidth(smaller) <= width


# ----------------------------------------------------------------------
# homomorphism invariants
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(connected_graphs(max_vertices=4), graphs(max_vertices=5))
def test_dp_matches_brute_force(pattern, target):
    assert count_homomorphisms_dp(pattern, target) == (
        count_homomorphisms_brute(pattern, target)
    )


@settings(max_examples=20, deadline=None)
@given(connected_graphs(max_vertices=4), graphs(max_vertices=4, min_vertices=1))
def test_injective_moebius_matches_filter(pattern, target):
    assert count_injective_homomorphisms(pattern, target) == (
        count_injective_homomorphisms_brute(pattern, target)
    )


@settings(max_examples=15, deadline=None)
@given(
    connected_graphs(max_vertices=3),
    graphs(max_vertices=4, min_vertices=1),
    graphs(max_vertices=4, min_vertices=1),
)
def test_tensor_multiplicativity(pattern, first, second):
    product_graph = tensor_product(first, second)
    assert count_homomorphisms_brute(pattern, product_graph) == (
        count_homomorphisms_brute(pattern, first)
        * count_homomorphisms_brute(pattern, second)
    )


# ----------------------------------------------------------------------
# query invariants
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(queries(max_vertices=4), graphs(max_vertices=4))
def test_answer_counting_methods_agree(query, target):
    assert count_answers(query, target) == count_answers_by_projection(query, target)


@settings(max_examples=20, deadline=None)
@given(queries(max_vertices=4))
def test_sew_at_most_ew(query):
    assert semantic_extension_width(query) <= extension_width(query)


@settings(max_examples=20, deadline=None)
@given(queries(max_vertices=4))
def test_ew_at_least_treewidth(query):
    """Γ(H, X) ⊇ H, and treewidth is subgraph-monotone."""
    assert extension_width(query) >= treewidth(query.graph)


@settings(max_examples=15, deadline=None)
@given(queries(max_vertices=4), graphs(max_vertices=4))
def test_answers_invariant_under_host_relabelling(query, target):
    mapping = {v: ("tag", v) for v in target.vertices()}
    relabelled = target.relabelled(mapping)
    assert count_answers(query, target) == count_answers(query, relabelled)


# ----------------------------------------------------------------------
# WL invariants
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(graphs(max_vertices=6, min_vertices=1))
def test_wl1_reflexive_under_relabelling(graph):
    mapping = {v: f"m{v}" for v in graph.vertices()}
    assert wl_1_equivalent(graph, graph.relabelled(mapping))


@settings(max_examples=15, deadline=None)
@given(graphs(max_vertices=5, min_vertices=1), graphs(max_vertices=5, min_vertices=1))
def test_wl1_refines_degree_sequence(first, second):
    if wl_1_equivalent(first, second):
        assert first.degree_sequence() == second.degree_sequence()
