"""Property-based tests for the extension modules: equitable partitions,
parity assignments, extended queries, logic evaluation, and the treewidth
oracle pair."""

from hypothesis import given, settings, strategies as st

from repro.core.extended import ExtendedQuery, count_extended_answers_via_quantum
from repro.graphs import Graph, parity_edge_assignment, verify_parity_assignment
from repro.queries import ConjunctiveQuery, star_query
from repro.treewidth import treewidth
from repro.treewidth.subset_dp import treewidth_subset_dp
from repro.wl import fractionally_isomorphic, wl_1_equivalent


@st.composite
def graphs(draw, max_vertices=6, min_vertices=0):
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    graph = Graph(vertices=range(n))
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                graph.add_edge(i, j)
    return graph


@st.composite
def connected_graphs(draw, max_vertices=7, min_vertices=2):
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    graph = Graph(vertices=range(n))
    for v in range(1, n):
        graph.add_edge(v, draw(st.integers(min_value=0, max_value=v - 1)))
    for i in range(n):
        for j in range(i + 1, n):
            if not graph.has_edge(i, j) and draw(st.booleans()):
                graph.add_edge(i, j)
    return graph


# ----------------------------------------------------------------------
# characterisation (I): fractional isomorphism ⇔ 1-WL
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=6, min_vertices=1), graphs(max_vertices=6, min_vertices=1))
def test_tinhofer_equivalence(first, second):
    assert fractionally_isomorphic(first, second) == wl_1_equivalent(first, second)


# ----------------------------------------------------------------------
# Lemma 58: parity assignments exist and verify
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(connected_graphs(max_vertices=7), st.data())
def test_parity_assignment_exists(graph, data):
    vertices = graph.vertices()
    size = data.draw(
        st.sampled_from([s for s in range(0, len(vertices) + 1, 2)]),
    )
    odd = data.draw(
        st.lists(
            st.sampled_from(vertices),
            min_size=size,
            max_size=size,
            unique=True,
        ),
    )
    beta = parity_edge_assignment(graph, odd)
    assert verify_parity_assignment(graph, odd, beta)


# ----------------------------------------------------------------------
# extended queries: quantum expansion matches direct filtering
# ----------------------------------------------------------------------
@settings(max_examples=12, deadline=None)
@given(graphs(max_vertices=5, min_vertices=1), st.booleans(), st.booleans())
def test_extended_query_consistency(host, use_diseq, use_negation):
    query = ExtendedQuery(
        star_query(2),
        disequalities=[("x1", "x2")] if use_diseq else (),
        negated_atoms=[("x1", "x2")] if use_negation else (),
    )
    assert count_extended_answers_via_quantum(query, host) == (
        query.count_answers_direct(host)
    )


# ----------------------------------------------------------------------
# two independent exact treewidth implementations agree
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(graphs(max_vertices=8))
def test_treewidth_oracles_agree(graph):
    assert treewidth(graph) == treewidth_subset_dp(graph)


# ----------------------------------------------------------------------
# answer counts are invariant under query relabelling
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(connected_graphs(max_vertices=5), graphs(max_vertices=4, min_vertices=1))
def test_answers_invariant_under_query_relabelling(pattern, host):
    from repro.queries import count_answers, relabel_query

    query = ConjunctiveQuery(pattern, pattern.vertices()[:2])
    renamed = relabel_query(
        query, {v: ("renamed", v) for v in pattern.vertices()},
    )
    assert count_answers(query, host) == count_answers(renamed, host)


# ----------------------------------------------------------------------
# CFI construction: definition validity + parity law on random bases
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(connected_graphs(max_vertices=5, min_vertices=2))
def test_cfi_definition_valid_on_random_bases(base):
    from repro.cfi import cfi_graph, verify_cfi_graph

    twist = (base.vertices()[0],)
    assert verify_cfi_graph(base, (), cfi_graph(base))
    assert verify_cfi_graph(base, twist, cfi_graph(base, twist))


@settings(max_examples=10, deadline=None)
@given(connected_graphs(max_vertices=4, min_vertices=2))
def test_cfi_parity_law_on_random_bases(base):
    """Lemma 26 on random connected bases: even twists are isomorphic to
    the untwisted graph, odd twists are not."""
    from repro.cfi import cfi_graph
    from repro.graphs import are_isomorphic

    vertices = base.vertices()
    untwisted = cfi_graph(base)
    assert not are_isomorphic(untwisted, cfi_graph(base, (vertices[0],)))
    if len(vertices) >= 2:
        assert are_isomorphic(
            untwisted, cfi_graph(base, (vertices[0], vertices[1])),
        )


# ----------------------------------------------------------------------
# spectral oracles agree with combinatorial counting
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(graphs(max_vertices=6, min_vertices=1))
def test_spectral_hom_oracles(graph):
    from repro.graphs import count_closed_walks, count_walks
    from repro.graphs.generators import cycle_graph, path_graph
    from repro.homs import count_homomorphisms

    assert count_walks(graph, 2) == count_homomorphisms(path_graph(3), graph)
    assert count_closed_walks(graph, 3) == count_homomorphisms(
        cycle_graph(3), graph,
    )
