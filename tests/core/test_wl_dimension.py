"""Unit tests for the WL-dimension computation (Theorem 1)."""

import pytest

from repro.core import (
    analyse_query,
    graph_core,
    wl_dimension,
    wl_dimension_upper_bound,
    wl_invariant_on,
)
from repro.errors import QueryError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    path_graph,
)
from repro.queries import (
    ConjunctiveQuery,
    full_query_from_graph,
    path_endpoints_query,
    star_query,
    star_with_redundant_path,
)


class TestMainTheorem:
    def test_star_dimension_is_k(self):
        """The headline example: WL-dim(S_k, X_k) = k despite treewidth 1
        (Corollaries 61/67)."""
        for k in (1, 2, 3, 4, 5):
            assert wl_dimension(star_query(k)) == k

    def test_full_query_dimension_is_treewidth(self):
        """Quantifier-free case: WL-dim = tw(H) (Neuen; Theorem 1's first
        branch)."""
        assert wl_dimension(full_query_from_graph(complete_graph(4))) == 3
        assert wl_dimension(full_query_from_graph(cycle_graph(5))) == 2
        assert wl_dimension(full_query_from_graph(path_graph(4))) == 1

    def test_semantic_not_syntactic(self):
        """Redundant quantified parts do not raise the dimension."""
        q = star_with_redundant_path(2, tail=2)
        assert wl_dimension(q) == 2

    def test_path_endpoints_dimension(self):
        assert wl_dimension(path_endpoints_query(2)) == 2

    def test_dimension_at_least_one(self):
        q = ConjunctiveQuery(Graph(vertices=["x"]), ["x"])
        assert wl_dimension(q) == 1

    def test_empty_query_rejected(self):
        with pytest.raises(QueryError):
            wl_dimension(ConjunctiveQuery(Graph(), []))


class TestExtensions:
    def test_disconnected_query_max_over_components(self):
        """Remark (A): disconnected queries take the max."""
        star2 = star_query(2)
        star3 = star_query(3)
        union_graph = disjoint_union(star2.graph, star3.graph)
        free = frozenset(
            (0, x) for x in star2.free_variables
        ) | frozenset((1, x) for x in star3.free_variables)
        q = ConjunctiveQuery(union_graph, free)
        assert wl_dimension(q) == 3

    def test_boolean_query_dimension(self):
        """Remark (B): X = ∅ gives tw of the homomorphic core."""
        q = ConjunctiveQuery(complete_graph(3), [])
        assert wl_dimension(q) == 2
        # Boolean P3 folds to an edge: dimension 1.
        q2 = ConjunctiveQuery(path_graph(3), [])
        assert wl_dimension(q2) == 1

    def test_graph_core(self):
        core = graph_core(cycle_graph(6))  # bipartite: folds to K2
        assert core.num_vertices() == 2
        core_odd = graph_core(cycle_graph(5))  # odd cycles are cores
        assert core_odd.num_vertices() == 5


class TestUpperBound:
    def test_upper_bound_at_least_dimension(self):
        for q in (
            star_query(3),
            star_with_redundant_path(2),
            path_endpoints_query(1),
        ):
            assert wl_dimension_upper_bound(q) >= wl_dimension(q)

    def test_upper_bound_equals_for_minimal(self):
        assert wl_dimension_upper_bound(star_query(3)) == 3


class TestInvariance:
    def test_wl_invariant_on_cfi_pairs(self):
        """Upper bound in action: a sew-2 query cannot separate a
        1-WL-equivalent pair of treewidth-2 CFI graphs? No — it *can*.
        What it cannot separate is pairs that are 2-WL-equivalent.  Use the
        K4-based pair (2-WL-equivalent, Lemma 27)."""
        from repro.cfi import cfi_pair

        pair = cfi_pair(complete_graph(4))
        assert wl_invariant_on(star_query(2), [(pair.untwisted, pair.twisted)])

    def test_analyse_query_report(self):
        report = analyse_query(star_query(2))
        assert report["wl_dimension"] == 2
        assert report["treewidth"] == 1
        assert report["quantified_star_size"] == 2
        assert report["extension_width"] == 2
        assert report["semantic_extension_width"] == 2
        assert report["counting_minimal"]
