"""Unit tests for CQs with disequalities and negations (Section 5.3)."""

import pytest

from repro.core.extended import (
    ExtendedQuery,
    count_extended_answers_via_quantum,
    extended_to_quantum,
    extended_wl_dimension,
)
from repro.errors import QueryError
from repro.graphs import complete_graph, cycle_graph, random_graph
from repro.queries import query_from_atoms, star_query


class TestConstruction:
    def test_constraints_must_be_free(self):
        with pytest.raises(QueryError):
            ExtendedQuery(star_query(2), disequalities=[("x1", "y")])
        with pytest.raises(QueryError):
            ExtendedQuery(star_query(2), negated_atoms=[("x1", "y")])

    def test_reflexive_pair_rejected(self):
        with pytest.raises(QueryError):
            ExtendedQuery(star_query(2), disequalities=[("x1", "x1")])

    def test_contradictory_negation_rejected(self):
        q = query_from_atoms([("x1", "x2"), ("x1", "y")], ["x1", "x2"])
        with pytest.raises(QueryError):
            ExtendedQuery(q, negated_atoms=[("x1", "x2")])


class TestSemantics:
    @pytest.mark.parametrize("seed", range(4))
    def test_disequality_quantum_matches_direct(self, seed):
        query = ExtendedQuery(star_query(2), disequalities=[("x1", "x2")])
        host = random_graph(7, 0.45, seed=seed)
        assert count_extended_answers_via_quantum(query, host) == (
            query.count_answers_direct(host)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_negation_quantum_matches_direct(self, seed):
        query = ExtendedQuery(star_query(2), negated_atoms=[("x1", "x2")])
        host = random_graph(7, 0.45, seed=seed)
        assert count_extended_answers_via_quantum(query, host) == (
            query.count_answers_direct(host)
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_combined_constraints(self, seed):
        query = ExtendedQuery(
            star_query(3),
            disequalities=[("x1", "x2"), ("x2", "x3")],
            negated_atoms=[("x1", "x3")],
        )
        host = random_graph(6, 0.5, seed=10 + seed)
        assert count_extended_answers_via_quantum(query, host) == (
            query.count_answers_direct(host)
        )

    def test_all_distinct_matches_injective_machinery(self):
        """Full pairwise disequalities = injective answers."""
        from repro.core import count_injective_answers

        base = star_query(3)
        query = ExtendedQuery(
            base,
            disequalities=[("x1", "x2"), ("x1", "x3"), ("x2", "x3")],
        )
        host = random_graph(6, 0.5, seed=20)
        assert query.count_answers_direct(host) == count_injective_answers(
            base, host,
        )
        assert count_extended_answers_via_quantum(query, host) == (
            count_injective_answers(base, host)
        )

    def test_negated_atom_on_clique_host(self):
        """On K_n, 'common neighbour and non-adjacent and distinct' is
        impossible."""
        query = ExtendedQuery(star_query(2), negated_atoms=[("x1", "x2")])
        assert query.count_answers_direct(complete_graph(5)) == 0
        assert count_extended_answers_via_quantum(query, complete_graph(5)) == 0

    def test_independent_set_style_query(self):
        # Free edge plus negated other pair: paths of length 2 with
        # non-adjacent endpoints — in C5 every 2-path has non-adjacent,
        # distinct endpoints... endpoints at distance 2 in C5 are
        # non-adjacent, so all 10 ordered 2-paths qualify.
        base = query_from_atoms([("x1", "m"), ("m", "x2")], ["x1", "x2", "m"])
        query = ExtendedQuery(base, negated_atoms=[("x1", "x2")])
        assert query.count_answers_direct(cycle_graph(5)) == 10
        assert count_extended_answers_via_quantum(query, cycle_graph(5)) == 10


class TestWlDimension:
    def test_dimension_of_disequality_star(self):
        query = ExtendedQuery(star_query(2), disequalities=[("x1", "x2")])
        assert extended_wl_dimension(query) == 2

    def test_dimension_survives_negation(self):
        query = ExtendedQuery(star_query(2), negated_atoms=[("x1", "x2")])
        assert extended_wl_dimension(query) == 2

    def test_expansion_terms_connected_and_minimal(self):
        query = ExtendedQuery(star_query(3), disequalities=[("x1", "x2")])
        quantum = extended_to_quantum(query)
        from repro.queries import is_counting_minimal

        for constituent in quantum.constituents():
            assert constituent.is_connected()
            assert is_counting_minimal(constituent)
