"""Unit tests for quantum queries (Definition 63, Corollary 5)."""

from fractions import Fraction

import pytest

from repro.core import (
    QuantumQuery,
    conjoin_on_free_variables,
    count_injective_answers,
    injective_answers_quantum,
    quantum_from_query,
    union_to_quantum,
)
from repro.errors import QueryError
from repro.graphs import complete_graph, cycle_graph, path_graph, random_graph
from repro.queries import (
    count_answers,
    path_endpoints_query,
    query_from_atoms,
    star_query,
    star_with_redundant_path,
)


class TestNormalisation:
    def test_zero_coefficients_dropped(self):
        q = QuantumQuery([(0, star_query(2))])
        assert q.is_zero()

    def test_isomorphic_terms_merged(self):
        from repro.queries import relabel_query

        a = star_query(2)
        b = relabel_query(a, {"x1": "u", "x2": "v", "y": "w"})
        q = QuantumQuery([(1, a), (2, b)])
        assert len(q.terms) == 1
        assert q.coefficients() == [Fraction(3)]

    def test_cancellation_gives_zero(self):
        a = star_query(2)
        q = QuantumQuery([(1, a), (-1, a)])
        assert q.is_zero()

    def test_constituents_minimised(self):
        q = QuantumQuery([(1, star_with_redundant_path(2))])
        assert q.constituents() == [star_query(2)]

    def test_disconnected_constituent_rejected(self):
        from repro.graphs import Graph
        from repro.queries import ConjunctiveQuery

        broken = ConjunctiveQuery(Graph(edges=[(0, 1), (2, 3)]), [0, 2])
        with pytest.raises(QueryError):
            QuantumQuery([(1, broken)])

    def test_boolean_constituent_rejected(self):
        from repro.queries import ConjunctiveQuery

        boolean = ConjunctiveQuery(complete_graph(3), [])
        with pytest.raises(QueryError):
            QuantumQuery([(1, boolean)])


class TestEvaluationAndArithmetic:
    def test_count_answers_linear(self):
        g = random_graph(6, 0.5, seed=17)
        a, b = star_query(2), star_query(3)
        q = QuantumQuery([(2, a), (-1, b)])
        expected = 2 * count_answers(a, g) - count_answers(b, g)
        assert q.count_answers(g) == expected

    def test_addition_and_scaling(self):
        a = quantum_from_query(star_query(2))
        b = quantum_from_query(star_query(3))
        combined = a + b.scaled(3)
        assert sorted(map(int, combined.coefficients())) == [1, 3]
        difference = combined - combined
        assert difference.is_zero()

    def test_hsew(self):
        q = QuantumQuery([(1, star_query(2)), (1, star_query(4))])
        assert q.hereditary_semantic_extension_width() == 4
        assert q.wl_dimension() == 4

    def test_hsew_of_zero_rejected(self):
        with pytest.raises(QueryError):
            QuantumQuery([]).hereditary_semantic_extension_width()


class TestConjunctionAndUnion:
    def test_conjunction_counts_intersection(self):
        """Answers of the conjunction = assignments answering both."""
        a = star_query(2)                      # common neighbour
        b = path_endpoints_query(2)            # connected by a 3-walk
        conjunction = conjoin_on_free_variables(
            [a, _rename_free(b, {"v1": "x1", "v4": "x2"})],
        )
        g = random_graph(6, 0.5, seed=30)
        from repro.queries import enumerate_answers

        first = {tuple(sorted(x.items())) for x in enumerate_answers(a, g)}
        renamed = _rename_free(b, {"v1": "x1", "v4": "x2"})
        second = {tuple(sorted(x.items())) for x in enumerate_answers(renamed, g)}
        assert count_answers(conjunction, g) == len(first & second)

    def test_conjunction_requires_same_free_labels(self):
        with pytest.raises(QueryError):
            conjoin_on_free_variables([star_query(2), star_query(3)])

    def test_union_inclusion_exclusion(self):
        """|Ans(ϕ₁ ∨ ϕ₂)| evaluated through the quantum expansion equals
        the direct union count."""
        a = star_query(2)
        b = _rename_free(path_endpoints_query(2), {"v1": "x1", "v4": "x2"})
        quantum = union_to_quantum([a, b])
        g = random_graph(6, 0.5, seed=31)
        from repro.queries import enumerate_answers

        first = {tuple(sorted(x.items())) for x in enumerate_answers(a, g)}
        second = {tuple(sorted(x.items())) for x in enumerate_answers(b, g)}
        assert quantum.count_answers(g) == len(first | second)

    def test_union_of_one(self):
        a = star_query(2)
        assert union_to_quantum([a]).count_answers(cycle_graph(5)) == (
            count_answers(a, cycle_graph(5))
        )


class TestInjectiveAnswers:
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_injective_star_answers(self, k):
        g = random_graph(6, 0.5, seed=40 + k)
        quantum = injective_answers_quantum(star_query(k))
        assert quantum.count_answers(g) == count_injective_answers(star_query(k), g)

    def test_injective_expansion_top_coefficient(self):
        """Corollary 68: the coefficient of (S_k, X_k) itself is 1."""
        quantum = injective_answers_quantum(star_query(3))
        top = [c for c, q in quantum.terms if q == star_query(3)]
        assert top == [Fraction(1)]

    def test_injective_on_query_with_free_edge(self):
        """Adjacent identified free variables vanish (self-loop ⇒ zero)."""
        q = query_from_atoms([("x1", "x2"), ("x1", "y")], ["x1", "x2"])
        g = random_graph(6, 0.5, seed=44)
        quantum = injective_answers_quantum(q)
        assert quantum.count_answers(g) == count_injective_answers(q, g)

    def test_injective_path_query(self):
        q = path_endpoints_query(1)
        g = complete_graph(4)
        quantum = injective_answers_quantum(q)
        assert quantum.count_answers(g) == count_injective_answers(q, g)


def _rename_free(query, mapping):
    """Rename only the listed variables, keeping the rest."""
    from repro.queries import relabel_query

    full = {v: mapping.get(v, v) for v in query.graph.vertices()}
    return relabel_query(query, full)
