"""Unit + integration tests for the Section-4 lower-bound machinery."""

import pytest

from repro.core import (
    answer_id_gap,
    build_full_query_witness,
    build_lower_bound_witness,
    cloned_pair,
    colour_prescribed_gap,
    count_extendable_assignments,
    extendability_matches_answers,
    search_clone_separation,
    verify_lower_bound,
    verify_wl_distinguished_at_width,
    verify_wl_equivalence,
)
from repro.errors import WitnessError
from repro.graphs import complete_graph
from repro.homs import count_homomorphisms
from repro.queries import (
    ConjunctiveQuery,
    full_query_from_graph,
    path_endpoints_query,
    star_query,
    star_with_redundant_path,
)


class TestConstruction:
    def test_star2_witness_shape(self):
        witness = build_lower_bound_witness(star_query(2))
        assert witness.width == 2
        assert witness.ell == 3
        assert witness.f_graph.num_vertices() == 2 + 3
        assert witness.twist_vertex in witness.query.free_variables
        # χ(K_{2,3}): 2·2² + 3·2 = 14 vertices.
        assert witness.untwisted.num_vertices() == 14
        assert witness.twisted.num_vertices() == 14

    def test_non_minimal_query_reduced_first(self):
        witness = build_lower_bound_witness(star_with_redundant_path(2))
        assert witness.query == star_query(2)

    def test_width_one_rejected(self):
        with pytest.raises(WitnessError):
            build_lower_bound_witness(star_query(1))

    def test_full_query_rejected_here(self):
        with pytest.raises(WitnessError):
            build_lower_bound_witness(
                full_query_from_graph(complete_graph(3)),
            )

    def test_even_ell_rejected(self):
        with pytest.raises(WitnessError):
            build_lower_bound_witness(star_query(2), ell=4)

    def test_colouring_is_h_colouring(self):
        from repro.homs import is_colouring

        witness = build_lower_bound_witness(star_query(2))
        assert is_colouring(
            witness.untwisted, witness.query.graph, witness.untwisted_colouring,
        )
        assert is_colouring(
            witness.twisted, witness.query.graph, witness.twisted_colouring,
        )


class TestColouredGap:
    def test_lemma56_strict_gap_star2(self):
        witness = build_lower_bound_witness(star_query(2))
        untwisted, twisted = colour_prescribed_gap(witness)
        assert untwisted > twisted

    def test_lemma50_cp_equals_id(self):
        witness = build_lower_bound_witness(star_query(2))
        assert colour_prescribed_gap(witness) == answer_id_gap(witness)

    def test_lemma55_extendability_characterisation(self):
        witness = build_lower_bound_witness(star_query(2))
        assert extendability_matches_answers(witness)

    def test_extendable_counts_match_cp(self):
        witness = build_lower_bound_witness(star_query(2))
        cp = colour_prescribed_gap(witness)
        extendable = (
            count_extendable_assignments(witness, twisted=False),
            count_extendable_assignments(witness, twisted=True),
        )
        assert cp == extendable

    def test_lemma52_strictness_on_path_query(self):
        witness = build_lower_bound_witness(path_endpoints_query(2))
        untwisted, twisted = colour_prescribed_gap(witness)
        assert untwisted > twisted


class TestWlEquivalence:
    def test_pair_equivalent_below_width(self):
        witness = build_lower_bound_witness(star_query(2))
        assert verify_wl_equivalence(witness)

    def test_pair_distinguished_at_width(self):
        witness = build_lower_bound_witness(star_query(2))
        assert verify_wl_distinguished_at_width(witness)

    def test_hom_count_gap_direction(self):
        """Theorem 32: hom counts can only drop on the twisted side."""
        witness = build_lower_bound_witness(star_query(2))
        assert count_homomorphisms(witness.f_graph, witness.untwisted) > (
            count_homomorphisms(witness.f_graph, witness.twisted)
        )


class TestCloneSeparation:
    def test_star2_separates(self):
        witness = build_lower_bound_witness(star_query(2))
        result = search_clone_separation(witness, max_multiplicity=2)
        assert result is not None
        _, untwisted, twisted = result
        assert untwisted != twisted

    def test_cloned_pair_shapes(self):
        witness = build_lower_bound_witness(star_query(2))
        first, second, colour_first, colour_second = cloned_pair(witness, (2, 1))
        assert first.num_vertices() == second.num_vertices()
        assert set(colour_first.values()) <= set(witness.query.graph.vertices())
        assert set(colour_second.values()) <= set(witness.query.graph.vertices())

    def test_wrong_multiplicity_arity(self):
        witness = build_lower_bound_witness(star_query(2))
        with pytest.raises(WitnessError):
            cloned_pair(witness, (1, 1, 1))


class TestFullReport:
    def test_star2_all_checks(self):
        report = verify_lower_bound(star_query(2))
        assert report.all_checks_pass
        assert report.clone_separation is not None

    def test_path_query_all_checks(self):
        report = verify_lower_bound(path_endpoints_query(2))
        assert report.all_checks_pass


class TestFullQueryWitness:
    def test_triangle_full_query(self):
        q = full_query_from_graph(complete_graph(3))
        witness = build_full_query_witness(q)
        assert witness.width == 2
        # Answers are hom counts; they differ across the pair (Roberson).
        first = count_homomorphisms(q.graph, witness.untwisted)
        second = count_homomorphisms(q.graph, witness.twisted)
        assert first > second
        # And the pair is 1-WL-equivalent.
        from repro.wl import k_wl_equivalent

        assert k_wl_equivalent(witness.untwisted, witness.twisted, 1)

    def test_tree_full_query_rejected(self):
        from repro.graphs import path_graph

        q = full_query_from_graph(path_graph(3))
        with pytest.raises(WitnessError):
            build_full_query_witness(q)

    def test_non_full_rejected(self):
        with pytest.raises(WitnessError):
            build_full_query_witness(star_query(2))
