"""Integration tests for Corollary 5's lower-bound construction — the
tensor trick that un-cancels quantum queries."""

import pytest

from repro.core.quantum import QuantumQuery, quantum_from_query
from repro.core.quantum_witness import (
    build_cancelling_quantum,
    quantum_lower_bound_witness,
)
from repro.core.witnesses import build_lower_bound_witness, cloned_pair
from repro.errors import WitnessError
from repro.queries import count_answers, star_query
from repro.wl import wl_1_equivalent


@pytest.fixture(scope="module")
def base_pair():
    witness = build_lower_bound_witness(star_query(2))
    first, second, _, _ = cloned_pair(witness, (1, 1))
    return first, second


class TestCancellingQuantum:
    def test_cancels_by_construction(self, base_pair):
        quantum = build_cancelling_quantum(base_pair)
        first, second = base_pair
        assert quantum.count_answers(first) == quantum.count_answers(second)
        # …even though each constituent separates the pair individually.
        for constituent in quantum.constituents():
            assert count_answers(constituent, first) != count_answers(
                constituent, second,
            )

    def test_rejects_non_separating_queries(self, base_pair):
        from repro.queries import path_endpoints_query

        with pytest.raises(WitnessError):
            build_cancelling_quantum(
                base_pair,
                query_a=star_query(2),
                query_b=path_endpoints_query(2),  # gap 0 on this pair
            )


class TestQuantumWitness:
    def test_simple_quantum_separates_without_helper(self):
        quantum = quantum_from_query(star_query(2))
        result = quantum_lower_bound_witness(quantum, helper_max_vertices=2)
        assert result.separates
        assert result.helper is None

    def test_tensor_trick_recovers_separation(self, base_pair):
        quantum = build_cancelling_quantum(base_pair)
        result = quantum_lower_bound_witness(quantum, helper_max_vertices=3)
        assert result.separates
        # This particular combination needs a helper (the base pair cancels).
        assert result.helper is not None
        assert result.helper.num_vertices() <= 3

    def test_witness_pair_still_wl_equivalent(self, base_pair):
        """Tensoring preserves the (k−1)-WL-equivalence (hom counts
        multiply over ⊗) — checked at level 1."""
        quantum = build_cancelling_quantum(base_pair)
        result = quantum_lower_bound_witness(quantum, helper_max_vertices=3)
        assert wl_1_equivalent(result.first, result.second)

    def test_zero_quantum_rejected(self):
        with pytest.raises(WitnessError):
            quantum_lower_bound_witness(QuantumQuery([]))

    def test_vacuous_bound_rejected(self):
        quantum = quantum_from_query(star_query(1))
        with pytest.raises(WitnessError):
            quantum_lower_bound_witness(quantum)
