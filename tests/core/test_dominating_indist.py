"""Unit tests for dominating-set counting (Corollary 6/68) and
Ψ-indistinguishability (Corollary 2/60)."""

import pytest

from repro.cfi import cfi_pair
from repro.core import (
    corollary2_forward_check,
    count_dominating_sets_brute,
    count_dominating_sets_via_stars,
    count_injective_star_answers,
    dominating_set_wl_dimension,
    is_dominating_set,
    psi_indistinguishable,
    query_battery,
    separating_query,
    star_injective_quantum,
)
from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
    six_cycle,
    star_graph,
    two_triangles,
)


class TestDominatingSets:
    def test_is_dominating_set(self):
        g = star_graph(3)
        assert is_dominating_set(g, {"y"})
        assert not is_dominating_set(g, {"x1"})
        assert is_dominating_set(g, {"x1", "y"})

    def test_brute_counts(self):
        g = cycle_graph(5)
        # Minimum dominating set of C5 has size 2; count pairs at distance
        # 1 or 2: all 10 pairs dominate except... check via brute oracle.
        assert count_dominating_sets_brute(g, 1) == 0
        assert count_dominating_sets_brute(g, 2) == 5
        assert count_dominating_sets_brute(g, 5) == 1

    def test_clique_dominating(self):
        g = complete_graph(4)
        assert count_dominating_sets_brute(g, 1) == 4
        assert count_dominating_sets_brute(g, 2) == 6

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_star_identity_matches_brute(self, seed, k):
        """Corollary 68's identity on random graphs."""
        g = random_graph(7, 0.45, seed=seed)
        assert count_dominating_sets_via_stars(g, k) == (
            count_dominating_sets_brute(g, k)
        )

    def test_star_identity_on_structured_graphs(self):
        for g in (cycle_graph(6), path_graph(5), star_graph(4)):
            for k in (1, 2):
                assert count_dominating_sets_via_stars(g, k) == (
                    count_dominating_sets_brute(g, k)
                )

    def test_wl_dimension(self):
        """Corollary 6: WL-dim(|Δ_k|) = k."""
        for k in (1, 2, 3, 4):
            assert dominating_set_wl_dimension(k) == k

    def test_injective_star_answers_closed_form(self):
        """On K_n every injective k-tuple has a common neighbour for
        k ≤ n−1: |Inj| = n!/(n−k)!."""
        g = complete_graph(5)
        assert count_injective_star_answers(g, 2) == 20
        assert count_injective_star_answers(g, 3) == 60

    def test_quantum_expansion_hsew(self):
        assert star_injective_quantum(3).hereditary_semantic_extension_width() == 3


class TestPsiIndistinguishability:
    def test_battery_nonempty_and_bounded(self):
        battery = query_battery(1, max_vertices=3)
        assert battery
        from repro.queries import semantic_extension_width

        for q in battery:
            assert q.is_connected()
            assert q.free_variables
            assert semantic_extension_width(q) <= 1

    def test_classic_pair_agrees_on_sew1(self):
        """Corollary 2 forward direction at k = 1: 2K3 ≅₁ C6 agree on all
        sew ≤ 1 queries."""
        assert corollary2_forward_check(two_triangles(), six_cycle(), 1, max_vertices=4)

    def test_classic_pair_separated_by_sew2(self):
        """And a sew-2 query (e.g. the full triangle query) separates them."""
        battery = query_battery(2, max_vertices=3)
        result = separating_query(two_triangles(), six_cycle(), battery)
        assert result is not None
        query, first, second = result
        from repro.queries import semantic_extension_width

        assert semantic_extension_width(query) == 2
        assert first != second

    def test_cfi_pair_agrees_below_width(self):
        """χ(K4) pair is 2-WL-equivalent: every sew ≤ 2 query agrees."""
        pair = cfi_pair(complete_graph(4))
        battery = query_battery(2, max_vertices=3)
        assert psi_indistinguishable(pair.untwisted, pair.twisted, battery)

    def test_isomorphic_graphs_indistinguishable(self):
        g = random_graph(6, 0.4, seed=50)
        h = g.relabelled({v: f"z{v}" for v in g.vertices()})
        battery = query_battery(1, max_vertices=3)
        assert psi_indistinguishable(g, h, battery)
