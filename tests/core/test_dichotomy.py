"""Unit tests for the complexity-dichotomy profiles (Corollary 4)."""

from repro.core import (
    classify_query_class,
    complexity_profile,
    contract_treewidth,
)
from repro.queries import (
    clique_query,
    path_endpoints_query,
    star_query,
    star_with_redundant_path,
)


class TestProfiles:
    def test_star_profile(self):
        profile = complexity_profile(star_query(3))
        assert profile.treewidth == 1
        assert profile.contract_treewidth == 2  # contract = K3
        assert profile.extension_width == 3
        assert profile.wl_dimension == 3
        assert profile.satisfies_sandwich

    def test_path_profile(self):
        profile = complexity_profile(path_endpoints_query(2))
        assert profile.treewidth == 1
        assert profile.contract_treewidth == 1  # contract = single edge
        assert profile.extension_width == 2
        assert profile.satisfies_sandwich

    def test_profile_minimises_first(self):
        raw = complexity_profile(star_with_redundant_path(2, tail=3))
        core = complexity_profile(star_query(2))
        assert raw == core

    def test_contract_treewidth_of_full_query(self):
        from repro.queries import full_query_from_graph
        from repro.graphs import complete_graph

        q = full_query_from_graph(complete_graph(4))
        assert contract_treewidth(q) == 3  # contract = H itself

    def test_sandwich_holds_on_battery(self):
        battery = [
            star_query(2),
            star_query(4),
            path_endpoints_query(1),
            path_endpoints_query(3),
            clique_query(3, 2),
            clique_query(4, 4),
        ]
        for query in battery:
            assert complexity_profile(query).satisfies_sandwich


class TestClassVerdicts:
    def test_bounded_class_tractable(self):
        """Path-endpoint queries: sew = 2 for every length ⇒ tractable."""
        verdict = classify_query_class(
            path_endpoints_query(internal) for internal in range(1, 6)
        )
        assert verdict.max_wl_dimension == 2
        assert verdict.polynomial_time_if_bounded_by(2)
        assert verdict.sample_size == 5

    def test_growing_class_intractable_signature(self):
        """Star queries: WL-dimension grows with k ⇒ unbounded ⇒ hard."""
        small = classify_query_class(star_query(k) for k in range(1, 3))
        large = classify_query_class(star_query(k) for k in range(1, 5))
        assert large.max_wl_dimension > small.max_wl_dimension
        assert not large.polynomial_time_if_bounded_by(small.max_wl_dimension)

    def test_verdict_tracks_both_widths(self):
        verdict = classify_query_class([clique_query(4, 2), star_query(3)])
        assert verdict.max_treewidth == 3
        assert verdict.max_contract_treewidth == 2
