"""Unit tests for twisted CFI pairs (Lemma 27) and colour-block cloning
(Definition 33, Lemmas 34/35)."""

import pytest

from repro.cfi import (
    cfi_pair,
    clone_colour_blocks,
    clone_colouring,
    clone_projection,
)
from repro.errors import GraphError
from repro.graphs import (
    Graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    path_graph,
)
from repro.homs import count_hom_tau, count_homomorphisms, is_colouring
from repro.homs.brute_force import enumerate_homomorphisms
from repro.wl import k_wl_equivalent


class TestCfiPair:
    def test_pair_construction(self):
        pair = cfi_pair(complete_graph(3))
        assert pair.untwisted.num_vertices() == pair.twisted.num_vertices() == 6
        assert pair.twist_vertex == 0

    def test_requires_connected(self):
        with pytest.raises(GraphError):
            cfi_pair(Graph(edges=[(0, 1), (2, 3)]))

    def test_requires_valid_twist(self):
        with pytest.raises(GraphError):
            cfi_pair(complete_graph(3), twist_vertex=9)

    def test_lemma27_k3(self):
        """tw(K3) = 2 ⇒ the pair is 1-WL-equivalent but not 2-WL-equivalent."""
        pair = cfi_pair(complete_graph(3))
        assert k_wl_equivalent(pair.untwisted, pair.twisted, 1)
        assert not k_wl_equivalent(pair.untwisted, pair.twisted, 2)

    def test_lemma27_k4(self):
        """tw(K4) = 3 ⇒ 2-WL-equivalent; distinguished by hom counts from
        K4 (a treewidth-3 pattern, Definition 19)."""
        pair = cfi_pair(complete_graph(4))
        assert k_wl_equivalent(pair.untwisted, pair.twisted, 2)
        assert count_homomorphisms(complete_graph(4), pair.untwisted) != (
            count_homomorphisms(complete_graph(4), pair.twisted)
        )

    def test_lemma27_k23(self):
        """tw(K_{2,3}) = 2 ⇒ 1-WL-equivalent, 2-WL-separated."""
        pair = cfi_pair(complete_bipartite_graph(2, 3))
        assert k_wl_equivalent(pair.untwisted, pair.twisted, 1)
        assert not k_wl_equivalent(pair.untwisted, pair.twisted, 2)

    def test_theorem32_one_sided_bound(self):
        """|Hom_τ(H, χ(F, W))| ≤ |Hom_τ(H, χ(F, ∅))| for every τ
        (Theorem 32), summed over τ via plain hom counts for H = F."""
        base = complete_graph(3)
        pair = cfi_pair(base)
        assert count_homomorphisms(base, pair.twisted) <= (
            count_homomorphisms(base, pair.untwisted)
        )


class TestCloning:
    def _setup(self):
        base = complete_graph(3)
        pair = cfi_pair(base)
        colouring = pair.untwisted_colouring
        return base, pair.untwisted, colouring

    def test_clone_sizes(self):
        base, cfi, colouring = self._setup()
        cloned = clone_colour_blocks(cfi, colouring, [0], [3])
        # Colour class of base vertex 0 has 2 CFI vertices; cloning ×3 adds 4.
        assert cloned.num_vertices() == cfi.num_vertices() + 4

    def test_multiplicity_one_isomorphic(self):
        from repro.graphs import are_isomorphic

        base, cfi, colouring = self._setup()
        cloned = clone_colour_blocks(cfi, colouring, [0], [1])
        assert are_isomorphic(cloned, cfi)

    def test_projection_is_homomorphism(self):
        base, cfi, colouring = self._setup()
        cloned = clone_colour_blocks(cfi, colouring, [0, 1], [2, 2])
        projection = clone_projection(cloned)
        for u, v in cloned.edges():
            assert cfi.has_edge(projection[u], projection[v])

    def test_clone_colouring_composes(self):
        base, cfi, colouring = self._setup()
        cloned = clone_colour_blocks(cfi, colouring, [0], [2])
        new_colouring = clone_colouring(cloned, colouring)
        assert is_colouring(cloned, base, new_colouring)

    def test_validation(self):
        base, cfi, colouring = self._setup()
        with pytest.raises(GraphError):
            clone_colour_blocks(cfi, colouring, [0, 0], [1, 2])
        with pytest.raises(GraphError):
            clone_colour_blocks(cfi, colouring, [0], [0])
        with pytest.raises(GraphError):
            clone_colour_blocks(cfi, colouring, [0], [1, 2])

    def test_lemma34_count_scaling(self):
        """|Hom_τ(H, G′)| = |Hom_τ(H, G)| · ∏ z_i^{d_i} (Lemma 34)."""
        base = complete_graph(3)
        pair = cfi_pair(base)
        cfi = pair.untwisted
        colouring = pair.untwisted_colouring
        pattern = path_graph(3)  # H
        z = 2
        cloned = clone_colour_blocks(cfi, colouring, [0], [z])
        cloned_colouring = clone_colouring(cloned, colouring)
        for tau in enumerate_homomorphisms(pattern, base):
            d = sum(1 for v in pattern.vertices() if tau[v] == 0)
            before = count_hom_tau(pattern, cfi, colouring, tau)
            after = count_hom_tau(pattern, cloned, cloned_colouring, tau)
            assert after == before * z ** d

    def test_lemma35_wl_equivalence_preserved(self):
        """Cloning both sides of a CFI pair preserves (t−1)-WL-equivalence."""
        base = complete_graph(3)  # treewidth 2
        pair = cfi_pair(base)
        for graph_pair in [
            (
                clone_colour_blocks(pair.untwisted, pair.untwisted_colouring, [0], [2]),
                clone_colour_blocks(pair.twisted, pair.twisted_colouring, [0], [2]),
            ),
        ]:
            assert k_wl_equivalent(graph_pair[0], graph_pair[1], 1)

    def test_clone_all_blocks(self):
        base = cycle_graph(4)
        pair = cfi_pair(base)
        cloned = clone_colour_blocks(
            pair.untwisted,
            pair.untwisted_colouring,
            base.vertices(),
            [2] * 4,
        )
        assert cloned.num_vertices() == 2 * pair.untwisted.num_vertices()
