"""Unit tests for the CFI construction χ(G, W) (Definition 25)."""

import pytest

from repro.cfi import cfi_graph, cfi_projection, cfi_size, verify_cfi_graph
from repro.errors import GraphError
from repro.graphs import (
    are_isomorphic,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    path_graph,
    star_graph,
)
from repro.homs import is_colouring


class TestVertexSets:
    def test_size_formula_k4(self):
        base = complete_graph(4)
        # Each vertex has degree 3: 2^(3-1) = 4 vertices each.
        assert cfi_graph(base).num_vertices() == 16
        assert cfi_size(base) == 16

    def test_size_formula_cycle(self):
        base = cycle_graph(5)
        assert cfi_graph(base).num_vertices() == 10
        assert cfi_size(base) == 10

    def test_parities(self):
        base = path_graph(3)
        untwisted = cfi_graph(base)
        for (w, s) in untwisted.vertices():
            assert len(s) % 2 == 0
        twisted = cfi_graph(base, (1,))
        for (w, s) in twisted.vertices():
            expected = 1 if w == 1 else 0
            assert len(s) % 2 == expected

    def test_twist_vertex_must_exist(self):
        with pytest.raises(GraphError):
            cfi_graph(path_graph(2), ("missing",))

    def test_definition_verified(self):
        for base in (complete_graph(3), cycle_graph(4), star_graph(3)):
            for twist in ((), (base.vertices()[0],)):
                cfi = cfi_graph(base, twist)
                assert verify_cfi_graph(base, twist, cfi)


class TestProjection:
    def test_projection_is_colouring(self):
        """Observation 29: π₁ is a homomorphism χ(G, W) → G."""
        base = complete_graph(3)
        for twist in ((), (0,)):
            cfi = cfi_graph(base, twist)
            assert is_colouring(cfi, base, cfi_projection(cfi))

    def test_projection_fibres_match_degrees(self):
        base = star_graph(3)
        cfi = cfi_graph(base)
        fibres: dict = {}
        for vertex, colour in cfi_projection(cfi).items():
            fibres.setdefault(colour, []).append(vertex)
        assert len(fibres["y"]) == 2 ** (3 - 1)
        assert all(len(fibres[f"x{i}"]) == 1 for i in range(1, 4))


class TestLemma26:
    """χ(G, W) ≅ χ(G, W′) iff |W| ≡ |W′| (mod 2), for connected G."""

    @pytest.mark.parametrize(
        "base_factory",
        [
            lambda: complete_graph(3),
            lambda: cycle_graph(4),
            lambda: complete_bipartite_graph(2, 3),
        ],
        ids=["K3", "C4", "K23"],
    )
    def test_even_twists_isomorphic(self, base_factory):
        base = base_factory()
        vertices = base.vertices()
        untwisted = cfi_graph(base, ())
        double_twist = cfi_graph(base, (vertices[0], vertices[1]))
        assert are_isomorphic(untwisted, double_twist)

    @pytest.mark.parametrize(
        "base_factory",
        [
            lambda: complete_graph(3),
            lambda: cycle_graph(4),
            lambda: complete_bipartite_graph(2, 3),
        ],
        ids=["K3", "C4", "K23"],
    )
    def test_odd_twist_not_isomorphic(self, base_factory):
        base = base_factory()
        untwisted = cfi_graph(base, ())
        twisted = cfi_graph(base, (base.vertices()[0],))
        assert not are_isomorphic(untwisted, twisted)

    def test_twist_location_irrelevant(self):
        base = cycle_graph(5)
        first = cfi_graph(base, (0,))
        second = cfi_graph(base, (3,))
        assert are_isomorphic(first, second)


class TestEdgeStructure:
    def test_cfi_of_single_edge(self):
        base = path_graph(2)
        cfi = cfi_graph(base)
        # Degree-1 vertices have only the empty set: χ(K2, ∅) = K2.
        assert cfi.num_vertices() == 2
        assert cfi.num_edges() == 1

    def test_cfi_of_triangle_structure(self):
        base = complete_graph(3)
        cfi = cfi_graph(base)
        assert cfi.num_vertices() == 6
        # Each base edge contributes 2·2/... : count directly.
        assert cfi.num_edges() == 6
        assert cfi.degree_sequence() == (2,) * 6

    def test_cfi_triangle_untwisted_is_two_triangles(self):
        """χ(K3, ∅) ≅ 2K3 and χ(K3, {w}) ≅ C6 — the classical example."""
        from repro.graphs import six_cycle, two_triangles

        assert are_isomorphic(cfi_graph(complete_graph(3)), two_triangles())
        assert are_isomorphic(
            cfi_graph(complete_graph(3), (0,)), six_cycle(),
        )
