"""Delta counting: inclusion–exclusion terms vs brute-force oracles."""

from __future__ import annotations

import random

import pytest

from repro.dynamic.delta import (
    batch_delta,
    compile_delta_plan,
    homs_touching_edge,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.homs.brute_force import (
    count_homomorphisms_brute,
    enumerate_homomorphisms,
)


def oracle_touching(pattern: Graph, target: Graph, u, v) -> int:
    """Homomorphisms whose image uses target edge {u, v} — by full
    enumeration and explicit image inspection."""
    total = 0
    edge = frozenset((u, v))
    for hom in enumerate_homomorphisms(pattern, target):
        if any(
            frozenset((hom[a], hom[b])) == edge for a, b in pattern.edges()
        ):
            total += 1
    return total


def connected_patterns():
    return [
        path_graph(2),
        path_graph(3),
        path_graph(4),
        cycle_graph(3),
        cycle_graph(4),
        cycle_graph(5),
        star_graph(3),
        complete_graph(4),
        Graph(edges=[(0, 1), (1, 2), (2, 0), (2, 3)]),  # triangle + tail
    ]


class TestCompile:
    def test_no_edges_and_oversized_patterns_return_none(self):
        assert compile_delta_plan(Graph(vertices=[0]).to_indexed()) is None
        big = path_graph(13)  # 12 edges > MAX_DELTA_EDGES
        assert compile_delta_plan(big.to_indexed()) is None

    def test_terms_are_merged_and_signed(self):
        plan = compile_delta_plan(path_graph(3).to_indexed())
        assert plan is not None
        assert all(term.coefficient != 0 for term in plan.terms)
        # single-edge subsets contribute positive terms
        assert any(term.coefficient > 0 for term in plan.terms)


class TestHomsTouchingEdge:
    @pytest.mark.parametrize(
        "pattern", connected_patterns(),
        ids=lambda g: f"n{g.num_vertices()}m{g.num_edges()}",
    )
    def test_matches_enumeration_oracle(self, pattern):
        rng = random.Random(pattern.num_edges())
        for seed in range(3):
            target = random_graph(8, 0.45, seed=seed)
            indexed = target.to_indexed()
            bitsets = list(indexed.bitsets())
            plan = compile_delta_plan(pattern.to_indexed())
            edges = list(indexed.edges())
            for x, y in rng.sample(edges, min(4, len(edges))):
                expected = oracle_touching(
                    pattern, target,
                    indexed.codec.decode(x), indexed.codec.decode(y),
                )
                assert homs_touching_edge(plan, bitsets, x, y) == expected

    def test_all_edges_of_a_cycle_cover_all_homs(self):
        # every hom of a cycle uses some edge, so summing T over a
        # single-edge graph's only edge equals the full count there
        pattern = cycle_graph(4)
        target = cycle_graph(4)
        indexed = target.to_indexed()
        plan = compile_delta_plan(pattern.to_indexed())
        bitsets = list(indexed.bitsets())
        # remove edges one at a time; the telescoped total must consume
        # the entire hom count (no homs survive into the empty graph)
        total = count_homomorphisms_brute(pattern, target)
        removed = 0
        for x, y in list(indexed.edges()):
            removed += homs_touching_edge(plan, bitsets, x, y)
            bitsets[x] &= ~(1 << y)
            bitsets[y] &= ~(1 << x)
        assert removed == total


class TestBatchDelta:
    @pytest.mark.parametrize("seed", range(5))
    def test_telescoped_batch_matches_full_recount(self, seed):
        rng = random.Random(seed)
        old = random_graph(9, 0.4, seed=seed)
        new = old.copy()
        vertices = list(old.vertices())
        added, removed = [], []
        for _ in range(4):
            u, v = rng.sample(vertices, 2)
            if new.has_edge(u, v):
                new.remove_edge(u, v)
                removed.append((u, v))
            else:
                new.add_edge(u, v)
                added.append((u, v))
        patterns = [path_graph(4), cycle_graph(3), star_graph(3)]
        plans = [compile_delta_plan(p.to_indexed()) for p in patterns]
        encode = old.to_indexed().codec.encode  # vertex set unchanged
        bitsets = list(old.to_indexed().bitsets())
        deltas = batch_delta(
            plans,
            bitsets,
            [(encode(u), encode(v)) for u, v in removed],
            [(encode(u), encode(v)) for u, v in added],
        )
        for pattern, delta in zip(patterns, deltas):
            expected = count_homomorphisms_brute(pattern, new) - \
                count_homomorphisms_brute(pattern, old)
            assert delta == expected
        # the replayed bitsets end exactly at the new graph
        assert bitsets == list(new.to_indexed().bitsets())
