"""Property suite: maintained counts == from-scratch counts, always.

Hypothesis drives randomized insert/delete/vertex/rollback sequences
against a :class:`DynamicGraph` while handles in every maintenance mode
(``auto``/``delta``/``recompute``) stay subscribed; after every batch the
maintained values must equal a from-scratch count on the current graph.
Patterns include disconnected ones (with isolated vertices — the case a
purely edge-wise delta would get wrong) and the KG layer is exercised
against the brute KG answer oracle.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.dynamic import (
    DynamicGraph,
    DynamicKnowledgeGraph,
    MaintainedAnswerCount,
    MaintainedCount,
    MaintainedKgAnswerCount,
    UpdateBatch,
)
from repro.engine import HomEngine
from repro.graphs import Graph, cycle_graph, path_graph, random_graph, star_graph
from repro.homs.brute_force import count_homomorphisms_brute
from repro.kg import KnowledgeGraph, count_kg_answers_brute
from repro.kg.queries import KgQuery
from repro.queries import count_answers, parse_query

MAINTAINED_PATTERNS = [
    path_graph(3),
    cycle_graph(4),
    star_graph(3),
    Graph(vertices=["iso"]),                                  # single vertex
    Graph(vertices=[0, 1, 2, 3, "iso"], edges=[(0, 1), (2, 3)]),  # disconnected + isolated
    Graph(edges=[(0, 1), (1, 2), (2, 0), (3, 4)]),            # triangle ⊎ edge
]

step_strategy = st.lists(
    st.tuples(
        st.sampled_from(["edge", "vertex", "rollback"]),
        st.integers(min_value=0, max_value=9),
        st.integers(min_value=0, max_value=9),
    ),
    min_size=1,
    max_size=12,
)


def apply_step(dyn: DynamicGraph, kind: str, a: int, b: int) -> None:
    graph = dyn.graph
    if kind == "rollback":
        try:
            dyn.rollback()
        except Exception:
            dyn.apply(UpdateBatch())  # nothing to roll back: empty batch
        return
    if kind == "vertex":
        label = ("v", a)
        if graph.has_vertex(label):
            dyn.apply(remove_vertices=[label])
        else:
            anchor = graph.vertices()[a % graph.num_vertices()]
            dyn.apply(add_vertices=[label], add_edges=[(label, anchor)])
        return
    vertices = graph.vertices()
    u = vertices[a % len(vertices)]
    v = vertices[b % len(vertices)]
    if u == v:
        return
    if graph.has_edge(u, v):
        dyn.apply(remove_edges=[(u, v)])
    else:
        dyn.apply(add_edges=[(u, v)])


class TestMaintainedCountProperty:
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(steps=step_strategy, seed=st.integers(min_value=0, max_value=5))
    def test_matches_from_scratch_after_any_sequence(self, steps, seed):
        engine = HomEngine()
        dyn = DynamicGraph(random_graph(8, 0.35, seed=seed))
        handles = [
            MaintainedCount(pattern, dyn, engine=engine, mode=mode)
            for pattern in MAINTAINED_PATTERNS
            for mode in ("auto", "delta", "recompute")
        ]
        for kind, a, b in steps:
            apply_step(dyn, kind, a, b)
            graph = dyn.graph
            for handle in handles:
                expected = count_homomorphisms_brute(handle.pattern, graph)
                assert handle.value == expected, (
                    kind, handle.mode, handle.method,
                )

    def test_provenance_tracks_methods(self):
        engine = HomEngine()
        dyn = DynamicGraph(random_graph(8, 0.35, seed=1))
        handle = MaintainedCount(path_graph(3), dyn, engine=engine, mode="delta")
        dyn.apply(add_edges=[(0, 5)])
        dyn.rollback()
        methods = [entry["method"] for entry in handle.provenance]
        assert methods[0] == "initial"
        assert methods[1] == "delta"
        assert methods[2] == "rollback"


QUERIES = [
    "q(x1, x2) :- E(x1, y), E(x2, y)",        # interpolation route
    "q(x) :- E(x, y), E(y, z)",               # one free variable
    "q() :- E(x, y), E(y, z), E(z, x)",       # Boolean
    "q(x, y) :- E(x, y)",                     # full
]


class TestMaintainedAnswerCountProperty:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(steps=step_strategy, seed=st.integers(min_value=0, max_value=3))
    def test_matches_count_answers(self, steps, seed):
        engine = HomEngine()
        dyn = DynamicGraph(random_graph(7, 0.35, seed=seed))
        queries = [parse_query(text) for text in QUERIES]
        handles = [
            MaintainedAnswerCount(query, dyn, engine=engine)
            for query in queries
        ]
        for kind, a, b in steps[:6]:
            apply_step(dyn, kind, a, b)
            graph = dyn.graph
            for query, handle in zip(queries, handles):
                assert handle.value == count_answers(query, graph)


def seed_kg() -> KnowledgeGraph:
    kg = KnowledgeGraph()
    for name, label in [
        ("a", "person"), ("b", "person"), ("p", "paper"), ("q", "paper"),
    ]:
        kg.add_vertex(name, label)
    kg.add_edge("a", "wrote", "p")
    kg.add_edge("b", "wrote", "q")
    kg.add_edge("a", "cites", "q")
    return kg


def author_query() -> KgQuery:
    pattern = KnowledgeGraph()
    pattern.add_vertex("X", "person")
    pattern.add_vertex("P", "paper")
    pattern.add_edge("X", "wrote", "P")
    return KgQuery(pattern, ["X"])


kg_step_strategy = st.lists(
    st.tuples(
        st.sampled_from(["add", "remove", "vertex", "rollback"]),
        st.integers(min_value=0, max_value=3),
        st.integers(min_value=0, max_value=3),
        st.sampled_from(["wrote", "cites"]),
    ),
    min_size=1,
    max_size=8,
)


class TestMaintainedKgAnswerCountProperty:
    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(steps=kg_step_strategy)
    def test_matches_brute_kg_answers(self, steps):
        engine = HomEngine()
        dkg = DynamicKnowledgeGraph(seed_kg())
        query = author_query()
        handle = MaintainedKgAnswerCount(query, dkg, engine=engine)
        people = ["a", "b", "c", "d"]
        papers = ["p", "q", "r", "s"]
        for kind, i, j, label in steps:
            kg = dkg.kg
            source, target = people[i], papers[j]
            if kind == "rollback":
                try:
                    dkg.rollback()
                except Exception:
                    pass
            elif kind == "vertex":
                if source not in set(kg.vertices()):
                    dkg.apply(add_vertices=[(source, "person")])
            elif kind == "add":
                if not kg.has_edge(source, label, target):
                    dkg.apply(
                        add_vertices=[
                            (name, kind_label)
                            for name, kind_label in
                            [(source, "person"), (target, "paper")]
                            if name not in set(kg.vertices())
                        ],
                        add_triples=[(source, label, target)],
                    )
            else:
                if kg.has_edge(source, label, target):
                    dkg.apply(remove_triples=[(source, label, target)])
            assert handle.value == count_kg_answers_brute(query, dkg.kg)
            assert dkg.kg.num_triples() == dkg.encoding.kg.num_triples()
