"""DynamicKnowledgeGraph unit tests: net batches, summaries, rollback."""

from __future__ import annotations

import pytest

from repro.dynamic import DynamicKnowledgeGraph, MaintainedKgAnswerCount
from repro.engine import HomEngine
from repro.errors import GraphError
from repro.kg import KnowledgeGraph, count_kg_answers_brute
from repro.kg.queries import KgQuery


def seed_kg() -> KnowledgeGraph:
    return KnowledgeGraph(
        vertices={"a": "person", "b": "person", "p": "paper"},
        triples=[("a", "wrote", "p")],
    )


class TestApply:
    def test_applied_summary_speaks_triples_not_gadgets(self):
        dkg = DynamicKnowledgeGraph(seed_kg())
        version = dkg.apply(
            add_vertices=[("q", "paper")],
            add_triples=[("b", "wrote", "q")],
        )
        # one triple, one vertex — not the 2 midpoints / 3 gadget edges
        assert version.applied_summary() == {
            "triples_added": 1,
            "triples_removed": 0,
            "vertices_added": 1,
        }
        assert version.patched  # append-only: index patched, not recompiled

    def test_add_and_remove_same_triple_in_one_batch_is_a_noop(self):
        dkg = DynamicKnowledgeGraph(seed_kg())
        version = dkg.apply(
            add_triples=[("b", "cites", "p")],
            remove_triples=[("b", "cites", "p")],
        )
        assert version.applied_summary()["triples_added"] == 0
        assert version.applied_summary()["triples_removed"] == 0
        assert not dkg.kg.has_edge("b", "cites", "p")
        assert dkg.stats.index_recompiles == 0

    def test_removing_an_absent_triple_errors_cleanly(self):
        dkg = DynamicKnowledgeGraph(seed_kg())
        with pytest.raises(GraphError) as excinfo:
            dkg.apply(remove_triples=[("b", "wrote", "p")])
        assert "not in knowledge graph" in str(excinfo.value)
        assert dkg.version == 0

    def test_duplicate_triple_add_is_idempotent(self):
        dkg = DynamicKnowledgeGraph(seed_kg())
        version = dkg.apply(add_triples=[("a", "wrote", "p")])
        assert version.applied_summary()["triples_added"] == 0
        assert dkg.kg.num_triples() == 1


class TestMaintainedHandle:
    def test_value_tracks_updates_and_rollback(self):
        engine = HomEngine()
        dkg = DynamicKnowledgeGraph(seed_kg())
        query = KgQuery(
            KnowledgeGraph(
                vertices={"X": "person", "P": "paper"},
                triples=[("X", "wrote", "P")],
            ),
            ["X"],
        )
        handle = MaintainedKgAnswerCount(query, dkg, engine=engine)
        assert handle.value == count_kg_answers_brute(query, dkg.kg) == 1
        dkg.apply(
            add_vertices=[("q", "paper")], add_triples=[("b", "wrote", "q")],
        )
        assert handle.value == count_kg_answers_brute(query, dkg.kg) == 2
        dkg.rollback()
        assert handle.value == 1
        assert len(handle.provenance) >= 2
