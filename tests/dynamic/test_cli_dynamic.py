"""CLI coverage for the dynamic verbs: update, watch, engine-stats."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.engine import set_default_engine
from repro.graphs import path_graph, random_graph
from repro.homs.brute_force import count_homomorphisms_brute
from repro.service import BackgroundServer, ServiceClient


@pytest.fixture(autouse=True)
def _restore_default_engine():
    yield
    set_default_engine(None)


@pytest.fixture
def server():
    with BackgroundServer(workers=2, max_queue=32) as running:
        yield running


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port)


class TestUpdateCommand:
    def test_update_json_emits_the_service_payload(self, capsys, server, client):
        host = random_graph(10, 0.3, seed=41)
        client.register_graph("hosts", host)
        client.subscribe("hosts", pattern=path_graph(3), subscription_id="p3")
        drop_u, drop_v = host.edges()[0]
        add_u, add_v = next(
            (u, v)
            for u in host.vertices() for v in host.vertices()
            if u != v and not host.has_edge(u, v)
        )
        code = main([
            "update", "--port", str(server.port), "--target", "hosts",
            "--add-edge", f"{add_u},{add_v}",
            "--remove-edge", f"{drop_u},{drop_v}", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "target-update"
        assert payload["target"] == "hosts"
        assert payload["version"] == 1
        assert payload["dynamic"]["kind"] == "dynamic-stats"
        assert set(payload["applied"]) == {
            "edges_added", "edges_removed", "vertices_added", "vertices_removed",
        }
        mutated = host.copy()
        mutated.add_edge(add_u, add_v)
        mutated.remove_edge(drop_u, drop_v)
        (entry,) = payload["subscriptions"]
        assert entry["value"] == count_homomorphisms_brute(path_graph(3), mutated)

    def test_update_human_output(self, capsys, server, client):
        client.register_graph("hosts", random_graph(8, 0.3, seed=42))
        code = main([
            "update", "--port", str(server.port), "--target", "hosts",
            "--add-vertex", "extra",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "version 1" in out and "patch ratio" in out

    def test_update_without_operations_errors(self, capsys, server, client):
        client.register_graph("hosts", random_graph(8, 0.3, seed=43))
        code = main([
            "update", "--port", str(server.port), "--target", "hosts",
        ])
        assert code == 2
        assert "at least one" in capsys.readouterr().err

    def test_update_unknown_dataset_reports_service_error(self, capsys, server):
        code = main([
            "update", "--port", str(server.port), "--target", "nope",
            "--add-edge", "0,1",
        ])
        assert code == 2
        assert "unknown dataset" in capsys.readouterr().err


class TestWatchCommand:
    def test_watch_json_tick(self, capsys, server, client):
        client.register_graph("hosts", random_graph(8, 0.3, seed=44))
        client.subscribe("hosts", pattern=path_graph(2), subscription_id="edges")
        code = main([
            "watch", "--port", str(server.port), "--count", "2",
            "--interval", "0.01", "--json",
        ])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["kind"] == "watch" and first["tick"] == 0
        assert first["subscriptions"][0]["id"] == "edges"

    def test_watch_human_output_prints_changes_once(self, capsys, server, client):
        client.register_graph("hosts", random_graph(8, 0.3, seed=45))
        client.subscribe("hosts", pattern=path_graph(2), subscription_id="edges")
        code = main([
            "watch", "--port", str(server.port), "--count", "2",
            "--interval", "0.01",
        ])
        assert code == 0
        out = capsys.readouterr().out
        # unchanged between the two polls: printed exactly once
        assert out.count("hosts/edges") == 1


class TestEngineStatsDynamic:
    def test_engine_stats_reports_dynamic_block(self, capsys):
        code = main([
            "engine-stats", "--targets", "2", "--n", "8",
            "--dynamic-batches", "2",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "dynamic workload" in out
        assert "patch_ratio" in out and "deltas_applied" in out

    def test_engine_stats_json_shape(self, capsys):
        code = main([
            "engine-stats", "--targets", "2", "--n", "8",
            "--dynamic-batches", "2", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "engine-stats"
        dynamic = payload["dynamic"]
        assert dynamic["kind"] == "dynamic-stats"
        assert dynamic["updates_applied"] == 2
        assert dynamic["rollbacks"] == 1
        for field in (
            "patch_ratio", "index_patches", "index_recompiles",
            "deltas_applied", "delta_fallbacks", "delta_ratio",
        ):
            assert field in dynamic
