"""DynamicGraph: versioning, incremental index patching, journal, rollback."""

from __future__ import annotations

import pytest

from repro.dynamic import DynamicGraph, UpdateBatch
from repro.errors import GraphError
from repro.graphs import Graph, cycle_graph, random_graph
from repro.graphs.indexed import IndexedGraph


def assert_index_matches(dyn: DynamicGraph) -> None:
    """The (patched) index must agree with a from-scratch encode."""
    fresh = IndexedGraph.from_graph(dyn.graph)
    assert dyn.indexed.codec.labels == fresh.codec.labels
    assert dyn.indexed.adjacency_lists() == fresh.adjacency_lists()
    assert dyn.indexed.bitsets() == fresh.bitsets()
    assert dyn.indexed.structural_digest() == fresh.structural_digest()
    assert dyn.graph.to_indexed() is dyn.indexed  # adopted, not recompiled


class TestApply:
    def test_apply_produces_new_immutable_version(self):
        dyn = DynamicGraph(Graph(edges=[(0, 1), (1, 2)]))
        old = dyn.snapshot()
        record = dyn.apply(add_edges=[(0, 2)])
        assert record.version == 1 and dyn.version == 1
        assert old.graph.num_edges() == 2  # previous snapshot untouched
        assert record.graph.num_edges() == 3
        assert record.graph is not old.graph
        assert_index_matches(dyn)

    def test_net_effect_within_a_batch(self):
        dyn = DynamicGraph(Graph(edges=[(0, 1), (1, 2)]))
        record = dyn.apply(
            add_edges=[(0, 2), (2, 0)],       # duplicate add
            remove_edges=[(0, 1)],
        )
        assert record.net_added_edges == ((0, 2),)
        assert record.net_removed_edges == ((0, 1),)
        assert record.applied_summary()["edges_added"] == 1

    def test_add_edge_implicitly_adds_vertices(self):
        dyn = DynamicGraph(Graph(edges=[(0, 1)]))
        record = dyn.apply(add_edges=[(1, "new")])
        assert record.net_added_vertices == ("new",)
        assert record.patched
        assert_index_matches(dyn)

    def test_vertex_removal_recompiles(self):
        dyn = DynamicGraph(cycle_graph(5))
        patched = dyn.apply(add_edges=[(0, 2)])
        assert patched.patched and dyn.stats.index_patches == 1
        recompiled = dyn.apply(remove_vertices=[3])
        assert not recompiled.patched and dyn.stats.index_recompiles == 1
        assert recompiled.net_removed_vertices == (3,)
        # incident edges are reported as removed
        assert {frozenset(e) for e in recompiled.net_removed_edges} == {
            frozenset({3, 2}), frozenset({3, 4}),
        }
        assert_index_matches(dyn)
        assert dyn.stats.patch_ratio == 0.5

    def test_invalid_operation_leaves_no_version_behind(self):
        dyn = DynamicGraph(cycle_graph(4))
        with pytest.raises(GraphError):
            dyn.apply(remove_edges=[(0, 2)])  # not an edge
        with pytest.raises(GraphError):
            dyn.apply(add_edges=[(1, 1)])  # self-loop
        assert dyn.version == 0 and dyn.stats.updates_applied == 0

    def test_patched_index_over_many_batches(self):
        dyn = DynamicGraph(random_graph(14, 0.3, seed=9))
        vertices = list(dyn.graph.vertices())
        import random

        rng = random.Random(1)
        for _ in range(20):
            graph = dyn.graph
            add_edges, remove_edges = [], []
            for _ in range(3):
                u, v = rng.sample(vertices, 2)
                (remove_edges if graph.has_edge(u, v) else add_edges).append((u, v))
            add_edges = list({frozenset(e): e for e in add_edges}.values())
            remove_edges = list({frozenset(e): e for e in remove_edges}.values())
            dyn.apply(UpdateBatch.build(add_edges=add_edges, remove_edges=remove_edges))
            assert_index_matches(dyn)
        assert dyn.stats.index_patches == 20


class TestDigests:
    def test_same_history_same_digest(self):
        base = random_graph(10, 0.3, seed=2)
        first = DynamicGraph(base)
        second = DynamicGraph(base.copy())
        assert first.digest == second.digest
        assert first.target_id == second.target_id
        for dyn in (first, second):
            dyn.apply(add_edges=[(0, 5)])
            dyn.apply(remove_edges=[(0, 5)], add_vertices=["x"])
        assert first.digest == second.digest
        assert first.target_id == second.target_id

    def test_version_zero_target_id_matches_inline_key(self):
        from repro.engine.cache import target_key

        base = random_graph(8, 0.4, seed=3)
        dyn = DynamicGraph(base)
        assert dyn.target_id == target_key(base)

    def test_updates_change_the_target_id(self):
        dyn = DynamicGraph(cycle_graph(6))
        seen = {dyn.target_id}
        for _ in range(3):
            dyn.apply(add_vertices=[f"v{dyn.version}"])
            assert dyn.target_id not in seen
            seen.add(dyn.target_id)

    def test_repr_colliding_labels_never_share_a_digest(self):
        """Version identity is exact label content, not a serialised
        form: distinct labels with identical repr (the collision class
        the indexed kernel eliminated from DP bags) must yield distinct
        version keys — a collision here would silently serve one
        version's cached counts for the other."""

        class Opaque:
            def __init__(self, tag):
                self.tag = tag

            def __repr__(self):
                return "L"  # deliberately collides

            def __hash__(self):
                return 0  # deliberately collides too

            def __eq__(self, other):
                return isinstance(other, Opaque) and self.tag == other.tag

        a, b, c, d = (Opaque(t) for t in "abcd")
        base = Graph(vertices=[a, b, c, d], edges=[(a, b), (b, c)])
        first = DynamicGraph(base.copy())
        second = DynamicGraph(base.copy())
        assert first.digest == second.digest  # equal content interns equal
        first.apply(add_edges=[(c, d)])
        second.apply(add_edges=[(b, d)])
        assert first.digest != second.digest
        assert first.target_id != second.target_id


class TestRollbackAndJournal:
    def test_rollback_restores_previous_version(self):
        dyn = DynamicGraph(cycle_graph(5))
        original_digest = dyn.digest
        dyn.apply(add_edges=[(0, 2)])
        restored = dyn.rollback()
        assert restored.version == 0
        assert dyn.digest == original_digest
        assert not dyn.graph.has_edge(0, 2)
        assert dyn.stats.rollbacks == 1

    def test_rollback_then_reapply_reuses_the_digest(self):
        dyn = DynamicGraph(cycle_graph(5))
        first = dyn.apply(add_edges=[(0, 2)])
        dyn.rollback()
        second = dyn.apply(add_edges=[(0, 2)])
        assert first.digest == second.digest  # old cache entries stay hot

    def test_rollback_beyond_history_fails(self):
        dyn = DynamicGraph(cycle_graph(4))
        with pytest.raises(GraphError):
            dyn.rollback()

    def test_history_limit_bounds_snapshots(self):
        dyn = DynamicGraph(cycle_graph(4), history_limit=3)
        for i in range(6):
            dyn.apply(add_vertices=[f"v{i}"])
        assert dyn.version_record(dyn.version - 2) is not None
        assert dyn.version_record(0) is None  # trimmed
        assert len(dyn.journal) == 7  # provenance is kept for everything

    def test_journal_records_provenance(self):
        dyn = DynamicGraph(cycle_graph(4))
        dyn.apply(add_edges=[(0, 2)])
        dyn.rollback()
        kinds = [entry.applied for entry in dyn.journal]
        assert kinds[0] == {}
        assert kinds[1]["edges_added"] == 1
        assert kinds[2] == {"rolled_back_from": 1}
