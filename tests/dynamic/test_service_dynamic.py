"""End-to-end dynamic-target service tests over a loopback socket."""

from __future__ import annotations

import pytest

from repro.engine import set_default_engine
from repro.graphs import cycle_graph, path_graph, random_graph, star_graph
from repro.homs.brute_force import count_homomorphisms_brute
from repro.kg import KnowledgeGraph, count_kg_answers_brute, kg_query_from_triples
from repro.queries import count_answers, parse_query
from repro.service import BackgroundServer, ServiceClient, ServiceError


@pytest.fixture(autouse=True)
def _restore_default_engine():
    yield
    set_default_engine(None)


@pytest.fixture
def server():
    with BackgroundServer(workers=2, max_queue=32) as running:
        yield running


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port)


class TestTargetUpdate:
    def test_update_advances_version_and_counts(self, client):
        host = random_graph(10, 0.3, seed=31)
        client.register_graph("hosts", host)
        pattern = path_graph(4)
        sub = client.subscribe("hosts", pattern=pattern, subscription_id="p4")
        assert sub["id"] == "p4" and sub["maintains"] == "hom-count"
        assert sub["value"] == count_homomorphisms_brute(pattern, host)

        payload = client.target_update(
            "hosts", add_edges=[[0, 5], [2, 7]], remove_edges=[[0, 1]],
        )
        assert payload["kind"] == "target-update"
        assert payload["version"] == 1
        assert payload["dynamic"]["kind"] == "dynamic-stats"
        assert payload["dynamic"]["updates_applied"] == 1

        mutated = host.copy()
        for u, v in ((0, 5), (2, 7)):
            if not mutated.has_edge(u, v):
                mutated.add_edge(u, v)
        mutated.remove_edge(0, 1)
        (entry,) = payload["subscriptions"]
        assert entry["value"] == count_homomorphisms_brute(pattern, mutated)
        assert entry["version"] == 1

        # counting against the updated dataset sees the new content
        count = client.count(pattern, "hosts")
        assert count["count"] == entry["value"]

    def test_update_then_revert_serves_cached_counts(self, client, server):
        host = random_graph(9, 0.35, seed=32)
        client.register_graph("hosts", host)
        pattern = cycle_graph(4)
        before = client.count(pattern, "hosts")["count"]
        client.target_update("hosts", add_edges=[[0, 4]])
        client.target_update("hosts", remove_edges=[[0, 4]])
        # content equals an earlier version only if the digests roll the
        # same way; a fresh count must at least be correct
        after = client.count(pattern, "hosts")["count"]
        assert after == before

    def test_answer_count_subscription_stays_current(self, client):
        host = random_graph(9, 0.3, seed=33)
        client.register_graph("hosts", host)
        text = "q(x1, x2) :- E(x1, y), E(x2, y)"
        sub = client.subscribe("hosts", query=text, subscription_id="q")
        assert sub["maintains"] == "answer-count"
        assert sub["value"] == count_answers(parse_query(text), host)
        payload = client.target_update("hosts", add_edges=[[0, 3], [1, 4]])
        mutated = host.copy()
        for u, v in ((0, 3), (1, 4)):
            if not mutated.has_edge(u, v):
                mutated.add_edge(u, v)
        (entry,) = payload["subscriptions"]
        assert entry["value"] == count_answers(parse_query(text), mutated)

    def test_kg_dataset_update_and_subscription(self, client):
        kg = KnowledgeGraph()
        for name, label in [("a", "person"), ("b", "person"), ("p", "paper")]:
            kg.add_vertex(name, label)
        kg.add_edge("a", "wrote", "p")
        client.register_kg("papers", kg)
        query = kg_query_from_triples(
            [("X", "wrote", "P")],
            free_variables=["X"],
            vertex_labels={"X": "person", "P": "paper"},
        )
        sub = client.subscribe("papers", kg_query=query, subscription_id="authors")
        assert sub["maintains"] == "kg-answer-count"
        assert sub["value"] == 1

        payload = client.target_update(
            "papers",
            add_vertices=[["q", "paper"]],
            add_triples=[["b", "wrote", "q"]],
        )
        assert payload["version"] == 1
        (entry,) = payload["subscriptions"]
        mutated = KnowledgeGraph(
            vertices={"a": "person", "b": "person", "p": "paper", "q": "paper"},
            triples=[("a", "wrote", "p"), ("b", "wrote", "q")],
        )
        assert entry["value"] == count_kg_answers_brute(query, mutated) == 2

        removal = client.target_update(
            "papers", remove_triples=[["a", "wrote", "p"]],
        )
        (entry,) = removal["subscriptions"]
        assert entry["value"] == 1
        # triple removal shrinks the gadget index: recompile, honestly
        assert removal["dynamic"]["index_recompiles"] >= 1

    def test_stats_and_subscriptions_endpoints(self, client):
        client.register_graph("g", cycle_graph(5))
        client.subscribe("g", pattern=star_graph(2), subscription_id="s")
        client.target_update("g", add_edges=[[0, 2]])
        stats = client.stats()
        assert stats["dynamic"]["g"]["updates_applied"] == 1
        assert stats["datasets"][0]["version"] == 1
        assert stats["datasets"][0]["subscriptions"] == 1
        subs = client.subscriptions()
        assert len(subs) == 1 and subs[0]["id"] == "s"

    def test_error_paths(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.target_update("missing", add_edges=[[0, 1]])
        assert excinfo.value.status == 404
        client.register_graph("g", cycle_graph(4))
        with pytest.raises(ServiceError):  # empty batch
            client.target_update("g")
        with pytest.raises(ServiceError):  # graph dataset, triple update
            client.target_update("g", add_triples=[["a", "r", "b"]])
        with pytest.raises(ServiceError):  # removing a non-edge
            client.target_update("g", remove_edges=[[0, 2]])
        with pytest.raises(ServiceError):  # subscribe without a body
            client.subscribe("g")
        assert client.stats()["dynamic"]["g"]["updates_applied"] == 0

    def test_replacing_a_subscription_id_closes_the_old_handle(self, client):
        client.register_graph("g", cycle_graph(5))
        client.subscribe("g", pattern=path_graph(2), subscription_id="x")
        client.subscribe("g", pattern=path_graph(3), subscription_id="x")
        subs = client.subscriptions()
        assert len(subs) == 1
        assert subs[0]["pattern"]["vertices"] == 3
