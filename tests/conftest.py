"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    random_graph,
    six_cycle,
    star_graph,
    two_triangles,
)
from repro.queries import star_query


@pytest.fixture
def triangle():
    return complete_graph(3)


@pytest.fixture
def k4():
    return complete_graph(4)


@pytest.fixture
def p4():
    return path_graph(4)


@pytest.fixture
def c5():
    return cycle_graph(5)


@pytest.fixture
def c6():
    return six_cycle()


@pytest.fixture
def double_triangle():
    return two_triangles()


@pytest.fixture
def petersen():
    return petersen_graph()


@pytest.fixture
def star3():
    return star_graph(3)


@pytest.fixture
def star2_query():
    return star_query(2)


@pytest.fixture
def star3_query():
    return star_query(3)


@pytest.fixture
def random_host():
    """A fixed 7-vertex random host used across answer-counting tests."""
    return random_graph(7, 0.4, seed=11)


@pytest.fixture
def random_hosts():
    """A small battery of random hosts for empirical equivalence checks."""
    return [
        random_graph(5, 0.3, seed=1),
        random_graph(5, 0.5, seed=2),
        random_graph(6, 0.4, seed=3),
        random_graph(6, 0.6, seed=4),
        random_graph(7, 0.35, seed=5),
    ]
