"""Unit tests for the treewidth-DP homomorphism counter — cross-checked
against brute force on randomised instances."""

import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.homs import (
    count_homomorphisms_brute,
    count_homomorphisms_dp,
    prepared_pattern,
)


class TestAgainstBruteForce:
    @pytest.mark.parametrize(
        "pattern_factory",
        [
            lambda: path_graph(4),
            lambda: cycle_graph(4),
            lambda: cycle_graph(5),
            lambda: star_graph(3),
            lambda: complete_graph(3),
            lambda: grid_graph(2, 3),
        ],
        ids=["P4", "C4", "C5", "S3", "K3", "grid2x3"],
    )
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_matches_brute_force(self, pattern_factory, seed):
        pattern = pattern_factory()
        target = random_graph(6, 0.5, seed=seed)
        assert count_homomorphisms_dp(pattern, target) == (
            count_homomorphisms_brute(pattern, target)
        )

    def test_disconnected_pattern(self):
        pattern = Graph(edges=[(0, 1), ("a", "b"), ("b", "c")])
        target = random_graph(5, 0.6, seed=3)
        assert count_homomorphisms_dp(pattern, target) == (
            count_homomorphisms_brute(pattern, target)
        )

    def test_pattern_with_isolated_vertex(self):
        pattern = path_graph(3)
        pattern.add_vertex("iso")
        target = random_graph(5, 0.5, seed=4)
        assert count_homomorphisms_dp(pattern, target) == (
            count_homomorphisms_brute(pattern, target)
        )


class TestEdgeCases:
    def test_empty_pattern(self):
        assert count_homomorphisms_dp(Graph(), cycle_graph(4)) == 1

    def test_empty_target(self):
        assert count_homomorphisms_dp(path_graph(2), Graph()) == 0

    def test_single_vertex(self):
        assert count_homomorphisms_dp(Graph(vertices=[0]), complete_graph(4)) == 4

    def test_allowed_restriction(self):
        pattern = path_graph(3)
        target = cycle_graph(5)
        allowed = {0: frozenset({0, 1}), 2: frozenset({2})}
        assert count_homomorphisms_dp(pattern, target, allowed=allowed) == (
            count_homomorphisms_brute(pattern, target, allowed=allowed)
        )

    def test_allowed_empty(self):
        pattern = path_graph(2)
        target = cycle_graph(4)
        assert count_homomorphisms_dp(
            pattern, target, allowed={0: frozenset()},
        ) == 0


class TestPreparedPattern:
    def test_reuse_across_targets(self):
        pattern = cycle_graph(5)
        root = prepared_pattern(pattern)
        for seed in range(3):
            target = random_graph(6, 0.5, seed=seed)
            assert count_homomorphisms_dp(pattern, target, root=root) == (
                count_homomorphisms_brute(pattern, target)
            )

    def test_larger_pattern_feasible(self):
        """A 9-vertex treewidth-2 pattern against an 8-vertex target —
        infeasible regions for naive |V(G)|^|V(H)| enumeration shrink to
        |V(G)|^3 table rows for the DP."""
        pattern = grid_graph(2, 4)  # 8 vertices, tw 2
        target = random_graph(8, 0.5, seed=7)
        value = count_homomorphisms_dp(pattern, target)
        assert value >= 0
        # Spot-check against brute force (still feasible at this size).
        assert value == count_homomorphisms_brute(pattern, target)
