"""Unit tests for coloured and injective homomorphism counting."""

import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.homs import (
    colour_classes,
    count_cp_hom,
    count_hom_tau,
    count_homomorphisms,
    count_injective_homomorphisms,
    count_injective_homomorphisms_brute,
    count_subgraph_embeddings,
    enumerate_cp_hom,
    hom_partition_by_tau,
    is_colouring,
)
from repro.homs.brute_force import enumerate_homomorphisms


class TestColouring:
    def test_is_colouring(self):
        target = cycle_graph(4)
        palette = path_graph(2)
        colouring = {0: 0, 1: 1, 2: 0, 3: 1}
        assert is_colouring(target, palette, colouring)

    def test_is_not_colouring(self):
        target = cycle_graph(3)
        palette = path_graph(2)
        colouring = {0: 0, 1: 1, 2: 0}  # edge {2,0} maps to non-edge {0,0}
        assert not is_colouring(target, palette, colouring)

    def test_colour_classes(self):
        target = cycle_graph(4)
        colouring = {0: "a", 1: "b", 2: "a", 3: "b"}
        classes = colour_classes(target, colouring)
        assert classes["a"] == frozenset({0, 2})
        assert classes["b"] == frozenset({1, 3})


class TestHomTau:
    def test_observation_31_partition(self):
        """|Hom(H, G)| = Σ_τ |Hom_τ(H, G, F, c)| over τ ∈ Hom(H, F)."""
        pattern = path_graph(3)
        palette = path_graph(2)
        target = cycle_graph(4)
        colouring = {0: 0, 1: 1, 2: 0, 3: 1}
        partition = hom_partition_by_tau(pattern, target, palette, colouring)
        assert sum(partition.values()) == count_homomorphisms(pattern, target)

    def test_tau_restriction_explicit(self):
        pattern = path_graph(2)
        target = cycle_graph(4)
        palette = path_graph(2)
        colouring = {0: 0, 1: 1, 2: 0, 3: 1}
        tau = {0: 0, 1: 1}
        # Pattern edge must go class {0,2} → class {1,3}: 4 ways.
        assert count_hom_tau(pattern, target, colouring, tau) == 4

    def test_methods_agree(self):
        pattern = cycle_graph(4)
        target = random_graph(6, 0.5, seed=8)
        palette = complete_graph(2)
        # 2-colour the target greedily onto K2 only if bipartite; use a
        # homomorphism to K2 of C4 instead as palette colour of pattern.
        colouring = {v: v % 2 for v in target.vertices()}
        if not is_colouring(target, palette, colouring):
            pytest.skip("random target not bipartite under parity colouring")

    def test_cp_hom_identity_palette(self):
        """cpHom with c = id on the pattern itself: exactly the
        automorphism-free 'identity' copies — for a path, 1."""
        pattern = path_graph(3)
        colouring = {v: v for v in pattern.vertices()}
        assert count_cp_hom(pattern, pattern, colouring) == 1

    def test_cp_hom_enumeration_consistent(self):
        pattern = path_graph(3)
        target = cycle_graph(6)
        colouring = {v: v % 3 for v in target.vertices()}
        # c: C6 → P3? not a hom; instead use explicit class map.
        colouring = {0: 0, 1: 1, 2: 2, 3: 1, 4: 2, 5: 1}
        count = count_cp_hom(pattern, target, colouring)
        assert count == sum(1 for _ in enumerate_cp_hom(pattern, target, colouring))


class TestInjective:
    @pytest.mark.parametrize(
        "pattern_factory",
        [
            lambda: path_graph(2),
            lambda: path_graph(3),
            lambda: complete_graph(3),
            lambda: star_graph(3),
            lambda: cycle_graph(4),
        ],
        ids=["K2", "P3", "K3", "S3", "C4"],
    )
    @pytest.mark.parametrize("seed", [0, 1])
    def test_moebius_matches_brute(self, pattern_factory, seed):
        pattern = pattern_factory()
        target = random_graph(6, 0.5, seed=seed)
        assert count_injective_homomorphisms(pattern, target) == (
            count_injective_homomorphisms_brute(pattern, target)
        )

    def test_injective_into_clique(self):
        # Injective homs of any pattern on m vertices into K_n: n!/(n-m)!
        assert count_injective_homomorphisms(path_graph(3), complete_graph(4)) == 24

    def test_triangle_count_via_embeddings(self):
        g = complete_graph(4)
        # K4 contains 4 triangles.
        assert count_subgraph_embeddings(complete_graph(3), g) == 4

    def test_edge_count_via_embeddings(self):
        g = random_graph(7, 0.5, seed=6)
        assert count_subgraph_embeddings(path_graph(2), g) == g.num_edges()

    def test_injective_larger_pattern_than_target(self):
        assert count_injective_homomorphisms(path_graph(4), complete_graph(3)) == 0


class TestInjectiveIdentities:
    def test_injective_leq_all(self):
        pattern = cycle_graph(4)
        target = random_graph(6, 0.6, seed=12)
        injective = count_injective_homomorphisms(pattern, target)
        total = count_homomorphisms(pattern, target)
        assert 0 <= injective <= total

    def test_enumeration_injectivity_filter(self):
        pattern = path_graph(3)
        target = cycle_graph(5)
        by_filter = sum(
            1
            for hom in enumerate_homomorphisms(pattern, target)
            if len(set(hom.values())) == 3
        )
        assert count_injective_homomorphisms(pattern, target) == by_filter
