"""Unit tests for the counting dispatcher and the hom-vector helper."""

import pytest

from repro.graphs import cycle_graph, grid_graph, path_graph, random_graph
from repro.homs import count_homomorphisms, hom_vector
from repro.homs.brute_force import count_homomorphisms_brute


class TestDispatcher:
    @pytest.mark.parametrize("method", ["auto", "brute", "dp"])
    def test_methods_agree(self, method):
        pattern = cycle_graph(4)
        target = random_graph(6, 0.5, seed=71)
        assert count_homomorphisms(pattern, target, method=method) == (
            count_homomorphisms_brute(pattern, target)
        )

    def test_auto_handles_large_patterns(self):
        # 8-vertex pattern: auto must route to the DP and stay fast.
        pattern = grid_graph(2, 4)
        target = random_graph(7, 0.5, seed=72)
        assert count_homomorphisms(pattern, target, method="auto") == (
            count_homomorphisms(pattern, target, method="dp")
        )

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            count_homomorphisms(path_graph(2), path_graph(2), method="magic")

    def test_allowed_passed_through(self):
        pattern = path_graph(2)
        target = cycle_graph(4)
        allowed = {0: frozenset({0})}
        for method in ("auto", "brute", "dp"):
            assert count_homomorphisms(
                pattern, target, method=method, allowed=allowed,
            ) == 2


class TestAutoCrossover:
    """method='auto' picks backends by treewidth, not a vertex cutoff."""

    def test_dense_small_patterns_route_to_brute(self):
        from repro.engine import select_backend
        from repro.graphs import complete_graph

        # K6/K7 exceed the old 5-vertex cutoff but tw + 1 = n: the DP
        # would enumerate the same n_G^n states plus decomposition cost.
        assert select_backend(complete_graph(6)) == "brute"
        assert select_backend(complete_graph(7)) == "brute"

    def test_sparse_patterns_route_to_dp(self):
        from repro.engine import select_backend
        from repro.graphs import star_graph

        # A 5-vertex tree sat below the old cutoff and went to brute
        # force; with tw = 1 the DP is the right backend at any size.
        assert select_backend(star_graph(4)) == "dp"
        assert select_backend(grid_graph(2, 4)) == "dp"

    def test_paths_and_cycles_route_to_closed_form(self):
        from repro.engine import select_backend

        assert select_backend(path_graph(6)) == "matrix"
        assert select_backend(cycle_graph(7)) == "matrix"

    def test_auto_agrees_on_dense_large_pattern(self):
        from repro.graphs import complete_graph

        pattern = complete_graph(6)
        target = random_graph(7, 0.8, seed=75)
        assert count_homomorphisms(pattern, target, method="auto") == (
            count_homomorphisms_brute(pattern, target)
        )


class TestHomVector:
    def test_profile_matches_individual_counts(self):
        patterns = [path_graph(2), path_graph(3), cycle_graph(3)]
        target = random_graph(6, 0.5, seed=73)
        profile = hom_vector(patterns, target)
        assert profile == tuple(
            count_homomorphisms(p, target) for p in patterns
        )

    def test_profile_invariant_under_relabelling(self):
        patterns = [path_graph(2), cycle_graph(4)]
        target = random_graph(6, 0.4, seed=74)
        renamed = target.relabelled({v: f"n{v}" for v in target.vertices()})
        assert hom_vector(patterns, target) == hom_vector(patterns, renamed)
