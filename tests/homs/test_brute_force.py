"""Unit tests for backtracking homomorphism enumeration.

Known closed forms used as oracles:
* |Hom(K2, G)| = 2·|E(G)|
* |Hom(P3, G)| = Σ_v deg(v)²      (walks of length 2)
* |Hom(C3, K_n)| = n(n-1)(n-2)
* |Hom(H, K_n)| = chromatic-polynomial-free special cases via injectivity
* bipartite patterns admit no homomorphism into bipartite-incompatible hosts
"""

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    random_graph,
    star_graph,
)
from repro.homs import (
    count_homomorphisms_brute,
    enumerate_homomorphisms,
    exists_homomorphism,
)


class TestClosedForms:
    def test_edge_into_graph(self):
        g = cycle_graph(5)
        assert count_homomorphisms_brute(path_graph(2), g) == 2 * g.num_edges()

    def test_path3_walk_count(self):
        g = random_graph(7, 0.5, seed=2)
        expected = sum(g.degree(v) ** 2 for v in g.vertices())
        assert count_homomorphisms_brute(path_graph(3), g) == expected

    def test_triangle_into_clique(self):
        assert count_homomorphisms_brute(complete_graph(3), complete_graph(4)) == 24
        assert count_homomorphisms_brute(complete_graph(3), complete_graph(5)) == 60

    def test_triangle_into_bipartite(self):
        from repro.graphs import complete_bipartite_graph

        assert count_homomorphisms_brute(
            complete_graph(3), complete_bipartite_graph(3, 3),
        ) == 0

    def test_odd_cycle_into_even_cycle(self):
        assert count_homomorphisms_brute(cycle_graph(5), cycle_graph(6)) == 0

    def test_even_cycle_into_edge(self):
        # C4 → K2: alternating assignments, 2 per proper 2-colouring = 2.
        assert count_homomorphisms_brute(cycle_graph(4), complete_graph(2)) == 2

    def test_single_vertex_pattern(self):
        g = random_graph(6, 0.3, seed=1)
        assert count_homomorphisms_brute(Graph(vertices=["v"]), g) == 6

    def test_empty_pattern(self):
        assert count_homomorphisms_brute(Graph(), cycle_graph(4)) == 1

    def test_pattern_into_empty_target(self):
        assert count_homomorphisms_brute(path_graph(2), Graph()) == 0

    def test_star_into_graph(self):
        # |Hom(S_k, G)| = Σ_v deg(v)^k (centre to v, leaves to neighbours).
        g = random_graph(6, 0.5, seed=9)
        k = 3
        expected = sum(g.degree(v) ** k for v in g.vertices())
        assert count_homomorphisms_brute(star_graph(k), g) == expected


class TestFixedAndAllowed:
    def test_fixed_assignment_restricts(self):
        pattern = path_graph(2)
        target = path_graph(3)  # 0-1-2
        assert count_homomorphisms_brute(pattern, target, fixed={0: 1}) == 2
        assert count_homomorphisms_brute(pattern, target, fixed={0: 0}) == 1

    def test_fixed_violating_edge_gives_zero(self):
        pattern = path_graph(2)
        target = path_graph(3)
        assert count_homomorphisms_brute(pattern, target, fixed={0: 0, 1: 2}) == 0

    def test_fixed_image_not_in_target(self):
        assert count_homomorphisms_brute(
            path_graph(2), path_graph(2), fixed={0: 99},
        ) == 0

    def test_allowed_restricts_candidates(self):
        pattern = path_graph(2)
        target = cycle_graph(4)
        allowed = {0: frozenset({0}), 1: frozenset({1, 3})}
        assert count_homomorphisms_brute(pattern, target, allowed=allowed) == 2

    def test_allowed_empty_set(self):
        pattern = path_graph(2)
        target = cycle_graph(4)
        allowed = {0: frozenset()}
        assert count_homomorphisms_brute(pattern, target, allowed=allowed) == 0

    def test_fixed_conflicts_with_allowed(self):
        pattern = path_graph(2)
        target = cycle_graph(4)
        assert count_homomorphisms_brute(
            pattern, target, fixed={0: 0}, allowed={0: frozenset({1})},
        ) == 0


class TestEnumeration:
    def test_all_results_are_homomorphisms(self):
        pattern = cycle_graph(4)
        target = complete_graph(3)
        for hom in enumerate_homomorphisms(pattern, target):
            for u, v in pattern.edges():
                assert target.has_edge(hom[u], hom[v])

    def test_enumeration_no_duplicates(self):
        pattern = path_graph(3)
        target = cycle_graph(4)
        homs = [
            tuple(sorted(h.items())) for h in enumerate_homomorphisms(pattern, target)
        ]
        assert len(homs) == len(set(homs))

    def test_exists_homomorphism(self):
        assert exists_homomorphism(path_graph(4), cycle_graph(5))
        assert not exists_homomorphism(complete_graph(3), path_graph(5))

    def test_disconnected_pattern(self):
        pattern = Graph(edges=[(0, 1), (2, 3)])
        target = complete_graph(3)
        # Components independent: (2·3)² = 36.
        assert count_homomorphisms_brute(pattern, target) == 36

    def test_petersen_triangle_free(self):
        assert not exists_homomorphism(complete_graph(3), petersen_graph())
