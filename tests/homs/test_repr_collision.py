"""Regression tests for ``repr``-sort fragility.

The seed ordered DP bags and brute-force candidate pools by ``repr`` of
the vertex labels.  Two distinct labels with equal ``repr`` then compared
equal under the sort key, so the bag order of equal bags could disagree
between DP nodes and corrupt table keys.  The indexed kernel orders by
codec index — a genuine total order — so counts must be correct however
degenerate the labels' ``repr`` is.
"""

from __future__ import annotations

import pytest

from repro.engine.plans import compile_dp_plan, compile_plan
from repro.graphs import Graph, cycle_graph, path_graph, random_graph
from repro.homs import (
    count_homomorphisms_brute,
    count_homomorphisms_dp,
    enumerate_homomorphisms,
)


class CollidingLabel:
    """Distinct, hashable labels whose ``repr`` (and ``str``) collide."""

    __slots__ = ("key",)

    def __init__(self, key):
        self.key = key

    def __repr__(self):
        return "<label>"

    def __hash__(self):
        return hash(("colliding", self.key))

    def __eq__(self, other):
        return isinstance(other, CollidingLabel) and self.key == other.key


def _with_colliding_labels(graph: Graph) -> tuple[Graph, dict]:
    mapping = {v: CollidingLabel(v) for v in graph.vertices()}
    return graph.relabelled(mapping), mapping


@pytest.mark.parametrize("seed", range(4))
def test_counts_immune_to_repr_collisions(seed):
    pattern = path_graph(5) if seed % 2 else cycle_graph(4)
    target = random_graph(7, 0.5, seed=seed)
    colliding_pattern, _ = _with_colliding_labels(pattern)
    colliding_target, _ = _with_colliding_labels(target)

    expected = count_homomorphisms_brute(pattern, target)
    assert count_homomorphisms_brute(colliding_pattern, colliding_target) == expected
    assert count_homomorphisms_dp(colliding_pattern, colliding_target) == expected


def test_dp_plan_bags_ordered_by_index_not_repr():
    pattern, _ = _with_colliding_labels(random_graph(6, 0.5, seed=9))
    target = random_graph(8, 0.4, seed=10)
    colliding_target, _ = _with_colliding_labels(target)
    plan = compile_dp_plan(pattern)
    reference = count_homomorphisms_brute(pattern, colliding_target)
    assert plan.execute(colliding_target) == reference
    assert compile_plan(pattern).execute(colliding_target) == reference


def test_enumeration_yields_label_space_assignments():
    pattern, pattern_map = _with_colliding_labels(path_graph(3))
    target, _ = _with_colliding_labels(cycle_graph(5))
    homs = list(enumerate_homomorphisms(pattern, target))
    assert len(homs) == count_homomorphisms_brute(pattern, target)
    for hom in homs:
        assert set(hom) == set(pattern_map.values())
        for u, v in pattern.edges():
            assert target.has_edge(hom[u], hom[v])


def test_restrictions_with_colliding_labels():
    pattern, pattern_map = _with_colliding_labels(path_graph(3))
    target, target_map = _with_colliding_labels(cycle_graph(6))
    anchor = pattern_map[0]
    image = target_map[0]
    restricted = count_homomorphisms_brute(
        pattern, target, fixed={anchor: image},
    )
    allowed = {anchor: frozenset({image})}
    assert (
        count_homomorphisms_brute(pattern, target, allowed=allowed) == restricted
    )
    assert count_homomorphisms_dp(pattern, target, allowed=allowed) == restricted
    # C6 is vertex-transitive: every anchor takes an equal share.
    assert restricted * 6 == count_homomorphisms_brute(pattern, target)
