"""Slow-query log: thresholding, capture contents, ring bounds."""

from __future__ import annotations

import pytest

from repro.api import HomCountTask, Session
from repro.api.executors import LocalExecutor
from repro.engine import HomEngine
from repro.errors import ObservabilityError
from repro.graphs import path_graph, random_graph
from repro.obs import (
    clear_slow_queries,
    maybe_record,
    registry,
    set_slowlog_limit,
    set_slowlog_threshold_ms,
    slow_queries,
    slowlog_limit,
    slowlog_threshold_ms,
)
from repro.obs.slowlog import DEFAULT_SLOWLOG_LIMIT


def fresh_session() -> Session:
    return Session(executor=LocalExecutor(engine=HomEngine()))


def metric(snapshot: dict, name: str, **labels) -> float:
    total = 0
    for sample in snapshot.get(name, {}).get("samples", ()):
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            value = sample["value"]
            total += value["count"] if isinstance(value, dict) else value
    return total


class TestThreshold:
    def test_set_returns_previous_and_rejects_negative(self):
        previous = set_slowlog_threshold_ms(5.0)
        assert slowlog_threshold_ms() == 5.0
        assert set_slowlog_threshold_ms(previous) == 5.0
        with pytest.raises(ObservabilityError):
            set_slowlog_threshold_ms(-1.0)

    def test_infinite_threshold_disables_capture(self):
        set_slowlog_threshold_ms(float("inf"))
        session = fresh_session()
        result = session.run(HomCountTask(path_graph(3), path_graph(5)))
        assert maybe_record(None, result) is None
        assert slow_queries() == []


class TestCapture:
    def test_slow_task_entry_carries_key_cost_and_trace(self):
        set_slowlog_threshold_ms(0.0)
        session = fresh_session()
        task = HomCountTask(path_graph(3), random_graph(12, 0.3, seed=1))
        result = session.run(task)

        entries = slow_queries()
        assert entries
        entry = entries[-1]
        assert entry["task_key"] == task.cache_key()
        assert entry["kind"] == "hom-count"
        assert entry["executor"] == "local"
        assert entry["elapsed_ms"] >= 0
        assert entry["threshold_ms"] == 0.0
        assert entry["trace_id"] == result.trace.trace_id
        # cold run: the cost walk saw real compile/execute work
        assert entry["cost"]["total_ms"] >= 0
        assert entry["cost"]["execute_spans"] >= 1
        # the explain text is the full plan + provenance + trace rendering
        assert "task.hom-count" in entry["explain"]
        assert entry["backend"] in entry["explain"]

    def test_fast_results_are_skipped(self):
        set_slowlog_threshold_ms(1000.0)
        session = fresh_session()
        session.run(HomCountTask(path_graph(2), path_graph(6)))
        assert slow_queries() == []

    def test_taskless_record_has_null_key(self):
        set_slowlog_threshold_ms(0.0)
        session = fresh_session()
        result = session.run(HomCountTask(path_graph(3), path_graph(5)))
        entry = maybe_record(None, result)
        assert entry is not None
        assert entry["task_key"] is None

    def test_counter_increments_per_capture(self):
        set_slowlog_threshold_ms(0.0)
        session = fresh_session()
        before = registry().snapshot()
        session.run(HomCountTask(path_graph(3), random_graph(10, 0.3, seed=2)))
        session.run(HomCountTask(path_graph(4), random_graph(10, 0.3, seed=2)))
        after = registry().snapshot()
        delta = (
            metric(after, "repro_slow_queries_total",
                   kind="hom-count", executor="local")
            - metric(before, "repro_slow_queries_total",
                     kind="hom-count", executor="local")
        )
        assert delta == 2


class TestRing:
    def test_limit_keeps_newest_entries_in_order(self):
        set_slowlog_threshold_ms(0.0)
        session = fresh_session()
        tasks = [
            HomCountTask(path_graph(n), path_graph(7)) for n in range(2, 7)
        ]
        previous = set_slowlog_limit(3)
        try:
            assert slowlog_limit() == 3
            for task in tasks:
                session.run(task)
            entries = slow_queries()
            assert len(entries) == 3
            assert [e["task_key"] for e in entries] == [
                task.cache_key() for task in tasks[-3:]
            ]
            seqs = [e["seq"] for e in entries]
            assert seqs == sorted(seqs)
            # a smaller slice returns the newest entries
            assert slow_queries(limit=1)[0]["task_key"] \
                == tasks[-1].cache_key()
        finally:
            set_slowlog_limit(previous)
        assert slowlog_limit() == DEFAULT_SLOWLOG_LIMIT

    def test_limit_rejects_nonpositive(self):
        with pytest.raises(ObservabilityError):
            set_slowlog_limit(0)

    def test_clear(self):
        set_slowlog_threshold_ms(0.0)
        session = fresh_session()
        session.run(HomCountTask(path_graph(3), path_graph(5)))
        assert slow_queries()
        clear_slow_queries()
        assert slow_queries() == []
