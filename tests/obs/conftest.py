"""Shared state management for the observability tests.

Tracing configuration is process-global; every test here runs with
tracing on, sampling 1 (retain every root trace — determinism beats
amortisation in tests), and the default slow threshold, and restores
whatever was set before it ran.
"""

from __future__ import annotations

import pytest

from repro.obs import (
    clear_slow_queries,
    clear_traces,
    set_slow_threshold_ms,
    set_slowlog_threshold_ms,
    set_trace_sampling,
    set_tracing,
    slowlog_threshold_ms,
)


@pytest.fixture(autouse=True)
def _trace_state():
    previous_enabled = set_tracing(True)
    previous_sampling = set_trace_sampling(1)
    previous_slow = set_slow_threshold_ms(100.0)
    previous_slowlog = slowlog_threshold_ms()
    set_slowlog_threshold_ms(100.0)
    clear_traces()
    clear_slow_queries()
    yield
    set_tracing(previous_enabled)
    set_trace_sampling(previous_sampling)
    set_slow_threshold_ms(previous_slow)
    set_slowlog_threshold_ms(previous_slowlog)
    clear_traces()
    clear_slow_queries()
