"""Unit tests for structured logging: formatters, env switch, log_event."""

from __future__ import annotations

import json
import logging

import pytest

from repro.obs import configure_from_env, configure_logging, get_logger, log_event
from repro.obs.logging import (
    JsonFormatter,
    KeyValueFormatter,
    ROOT_NAME,
)
from repro.obs.trace import span


@pytest.fixture(autouse=True)
def _restore_root_logger():
    root = logging.getLogger(ROOT_NAME)
    handlers = list(root.handlers)
    level, propagate = root.level, root.propagate
    yield
    for handler in list(root.handlers):
        root.removeHandler(handler)
    for handler in handlers:
        root.addHandler(handler)
    root.setLevel(level)
    root.propagate = propagate


def _record(event: str, fields: dict) -> logging.LogRecord:
    record = logging.LogRecord(
        name="repro.engine",
        level=logging.INFO,
        pathname=__file__,
        lineno=1,
        msg=event,
        args=(),
        exc_info=None,
    )
    record.repro_fields = fields
    return record


class TestFormatters:
    def test_kv_line(self):
        line = KeyValueFormatter().format(
            _record("cache-miss", {"tier": "hot", "key": "a b"}),
        )
        assert "level=info" in line
        assert "logger=repro.engine" in line
        assert "event=cache-miss" in line
        assert 'key="a b"' in line  # values with spaces are quoted
        assert "tier=hot" in line
        assert line.index("key=") < line.index("tier=")  # fields sorted

    def test_json_line(self):
        line = JsonFormatter().format(
            _record("cache-miss", {"tier": "hot", "obj": object()}),
        )
        payload = json.loads(line)
        assert payload["event"] == "cache-miss"
        assert payload["logger"] == "repro.engine"
        assert payload["tier"] == "hot"
        assert payload["obj"].startswith("<object")  # repr fallback


class TestConfiguration:
    def test_configure_logging_is_idempotent(self):
        root = configure_logging("debug")
        configure_logging("info")
        assert len(root.handlers) == 1
        assert root.level == logging.INFO
        assert root.propagate is False

    def test_configure_logging_validates(self):
        with pytest.raises(ValueError):
            configure_logging("loud")
        with pytest.raises(ValueError):
            configure_logging("info", fmt="xml")

    def test_env_level_and_format(self):
        root = configure_from_env("debug")
        assert root.level == logging.DEBUG
        assert isinstance(root.handlers[0].formatter, KeyValueFormatter)
        root = configure_from_env("info,json")
        assert root.level == logging.INFO
        assert isinstance(root.handlers[0].formatter, JsonFormatter)

    def test_env_off_installs_null_handler_once(self):
        root = logging.getLogger(ROOT_NAME)
        for handler in list(root.handlers):
            root.removeHandler(handler)
        configure_from_env("off")
        configure_from_env("")
        assert len(root.handlers) == 1
        assert isinstance(root.handlers[0], logging.NullHandler)


class TestLogEvent:
    def _capture(self):
        configure_logging("info")
        root = logging.getLogger(ROOT_NAME)
        records: list[logging.LogRecord] = []

        class Sink(logging.Handler):
            def emit(self, record: logging.LogRecord) -> None:
                records.append(record)

        root.addHandler(Sink())
        return records

    def test_attaches_current_trace_id(self):
        records = self._capture()
        with span("request") as sp:
            log_event(get_logger("engine"), logging.INFO, "cache-miss", tier="hot")
        (record,) = records
        assert record.repro_fields == {
            "tier": "hot", "trace_id": sp.trace_id,
        }

    def test_explicit_trace_id_wins(self):
        records = self._capture()
        with span("request"):
            log_event(
                get_logger("engine"), logging.INFO, "e", trace_id="mine",
            )
        assert records[0].repro_fields["trace_id"] == "mine"

    def test_no_span_means_no_trace_id(self):
        records = self._capture()
        log_event(get_logger("engine"), logging.INFO, "e", k=1)
        assert records[0].repro_fields == {"k": 1}

    def test_disabled_level_short_circuits(self):
        records = self._capture()
        log_event(get_logger("engine"), logging.DEBUG, "quiet")
        assert records == []
