"""Cost accounting: span trees bucketed into compile/execute/encode/lookup."""

from __future__ import annotations

from repro.obs import (
    cost_breakdown,
    observe_task_cost,
    registry,
    render_cost,
    span,
)


def _tree(name, duration_ms, children=()):
    return {
        "name": name,
        "duration_ms": duration_ms,
        "children": list(children),
    }


def metric(snapshot: dict, name: str, **labels) -> float:
    total = 0
    for sample in snapshot.get(name, {}).get("samples", ()):
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            value = sample["value"]
            total += value["count"] if isinstance(value, dict) else value
    return total


class TestCostBreakdown:
    def test_none_in_none_out(self):
        assert cost_breakdown(None) is None

    def test_phases_bucketed_with_lookup_residual(self):
        trace = _tree("task.hom-count", 10.0, [
            _tree("engine.compile", 2.0),
            _tree("engine.execute", 5.0, [_tree("engine.execute.shard", 4.0)]),
            _tree("task.encode.target", 1.0),
        ])
        cost = cost_breakdown(trace)
        assert cost == {
            "total_ms": 10.0,
            "compile_ms": 2.0,
            "execute_ms": 5.0,
            "encode_ms": 1.0,
            "lookup_ms": 2.0,  # 10 - (2 + 5 + 1)
            "compile_spans": 1,
            "execute_spans": 1,
            "encode_spans": 1,
            "span_count": 5,
        }

    def test_phase_span_claims_its_subtree(self):
        # A compile nested under execute is execute time, not double
        # counted into both buckets.
        trace = _tree("task", 10.0, [
            _tree("engine.execute", 6.0, [_tree("engine.compile", 2.0)]),
        ])
        cost = cost_breakdown(trace)
        assert cost["execute_ms"] == 6.0
        assert cost["compile_ms"] == 0.0
        assert cost["span_count"] == 3

    def test_warm_hit_is_pure_lookup(self):
        cost = cost_breakdown(_tree("task.hom-count", 0.05))
        assert cost["lookup_ms"] == 0.05
        assert cost["compile_spans"] == 0
        assert cost["execute_spans"] == 0
        assert cost["encode_spans"] == 0
        assert cost["span_count"] == 1

    def test_residual_clamped_at_zero(self):
        # Child sums can exceed the parent by rounding; never negative.
        trace = _tree("task", 1.0, [_tree("engine.execute", 1.4)])
        assert cost_breakdown(trace)["lookup_ms"] == 0.0

    def test_live_span_trees_work_too(self):
        with span("task.demo") as sp:
            with span("engine.compile"):
                pass
            with span("task.encode.kg"):
                pass
        cost = cost_breakdown(sp)
        assert cost["compile_spans"] == 1
        assert cost["encode_spans"] == 1
        assert cost["span_count"] == 3
        assert cost["total_ms"] >= 0


class TestRenderCost:
    def test_zero_span_phases_are_omitted(self):
        text = render_cost(cost_breakdown(_tree("task", 4.0, [
            _tree("engine.execute", 3.0),
        ])))
        assert "total    4.000 ms" in text
        assert "execute" in text
        assert "compile" not in text
        assert "encode" not in text
        assert "lookup" in text  # always shown: the residual reading


class TestObserveTaskCost:
    def test_histogram_family_observes_active_phases(self):
        cost = cost_breakdown(_tree("task", 10.0, [
            _tree("engine.compile", 2.0),
        ]))
        before = registry().snapshot()
        observe_task_cost("unit-cost-kind", None, cost)
        after = registry().snapshot()

        def delta(**labels):
            return (
                metric(after, "repro_task_phase_ms", **labels)
                - metric(before, "repro_task_phase_ms", **labels)
            )

        # backend None renders as "-"; phases without spans are skipped,
        # lookup always observed.
        assert delta(kind="unit-cost-kind", backend="-", phase="compile") == 1
        assert delta(kind="unit-cost-kind", backend="-", phase="lookup") == 1
        assert delta(kind="unit-cost-kind", backend="-", phase="execute") == 0

    def test_none_cost_is_a_noop(self):
        before = registry().snapshot()
        observe_task_cost("unit-cost-kind-2", "dp", None)
        after = registry().snapshot()
        assert metric(after, "repro_task_phase_ms", kind="unit-cost-kind-2") \
            == metric(before, "repro_task_phase_ms", kind="unit-cost-kind-2")
