"""Health probes: verdict aggregation, monitors, and alert rules."""

from __future__ import annotations

import asyncio
import gc
import threading
import time

import pytest

from repro.errors import ObservabilityError
from repro.obs.alerts import AlertManager, probe_rule, threshold_rule
from repro.obs.health import (
    DEGRADED,
    FAILING,
    OK,
    EventLoopLagMonitor,
    GcPauseTracker,
    HealthRegistry,
    MemoryWatermarkProbe,
    ProbeResult,
    degraded,
    failing,
    ok,
    rss_bytes,
)


class TestProbeResult:
    def test_helpers_build_the_three_statuses(self):
        assert ok().status == OK
        assert degraded("slow").status == DEGRADED
        assert failing("dead").status == FAILING

    def test_unknown_status_rejected(self):
        with pytest.raises(ObservabilityError):
            ProbeResult("sideways")

    def test_to_dict_omits_empty_fields(self):
        assert ok().to_dict() == {"status": "ok"}
        assert degraded("slow", lag_ms=7).to_dict() == {
            "status": "degraded", "reason": "slow", "data": {"lag_ms": 7},
        }


class TestHealthRegistry:
    def test_worst_status_wins(self):
        registry = HealthRegistry()
        registry.register("a", lambda: ok())
        registry.register("b", lambda: degraded("meh"))
        assert registry.check().status == DEGRADED
        registry.register("c", lambda: failing("dead"))
        report = registry.check()
        assert report.status == FAILING
        assert report.reasons == {"b": "meh", "c": "dead"}

    def test_probe_exception_is_failing_not_a_crash(self):
        registry = HealthRegistry()

        def broken():
            raise RuntimeError("probe exploded")

        registry.register("broken", broken)
        report = registry.check()
        assert report.status == FAILING
        assert "probe exploded" in report.probes["broken"].reason

    def test_check_subset_and_unregister(self):
        registry = HealthRegistry()
        registry.register("good", lambda: ok())
        registry.register("bad", lambda: failing("dead"))
        assert registry.check(names=["good"]).status == OK
        registry.unregister("bad")
        assert registry.names() == ("good",)
        assert registry.check().status == OK

    def test_metric_families_encode_status_order(self):
        registry = HealthRegistry()
        registry.register("a", lambda: ok())
        registry.register("b", lambda: degraded("meh"))
        registry.register("c", lambda: failing("dead"))
        ((name, family),) = registry.metric_families()
        assert name == "repro_health_probe_status"
        values = {
            sample["labels"]["probe"]: sample["value"]
            for sample in family["samples"]
        }
        assert values == {"a": 0, "b": 1, "c": 2}

    def test_empty_registry_has_no_families_and_is_ok(self):
        registry = HealthRegistry()
        assert registry.metric_families() == []
        assert registry.check().status == OK


class TestEventLoopLagMonitor:
    def test_unstarted_monitor_is_ok(self):
        monitor = EventLoopLagMonitor()
        assert not monitor.running
        assert monitor.probe().status == OK

    def test_measures_lag_on_a_live_loop(self):
        monitor = EventLoopLagMonitor(interval_s=0.01)

        async def scenario():
            monitor.start(asyncio.get_running_loop())
            deadline = time.monotonic() + 5.0
            while monitor.samples == 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.01)

        asyncio.run(scenario())
        try:
            assert monitor.samples > 0
            assert monitor.current_lag_ms() is not None
        finally:
            monitor.stop()
        assert not monitor.running

    def test_pending_ping_age_counts_as_lag(self):
        """A wedged loop cannot run the pong — the probe must still see
        rising lag from the outside."""
        monitor = EventLoopLagMonitor(
            interval_s=0.01, degraded_ms=20.0, failing_ms=50.0,
        )
        loop = asyncio.new_event_loop()
        blocker = threading.Event()
        released = threading.Event()

        def runner():
            loop.run_until_complete(asyncio.sleep(0))
            loop.call_soon(lambda: (blocker.wait(5.0), released.set()))
            loop.run_until_complete(asyncio.sleep(0.2))

        thread = threading.Thread(target=runner, daemon=True)
        thread.start()
        try:
            monitor.start(loop)
            deadline = time.monotonic() + 5.0
            status = OK
            while status != FAILING and time.monotonic() < deadline:
                status = monitor.probe().status
                time.sleep(0.01)
            assert status == FAILING
        finally:
            blocker.set()
            monitor.stop()
            released.wait(5.0)
            thread.join(timeout=5.0)
            loop.close()


class TestGcPauseTracker:
    def test_records_pauses_while_installed(self):
        tracker = GcPauseTracker()
        assert tracker.probe().status == OK  # not installed → ok
        tracker.install()
        try:
            assert tracker.installed
            gc.collect()
            assert tracker.collections >= 1
            assert tracker.last_pause_ms is not None
            assert tracker.max_pause_ms >= tracker.last_pause_ms >= 0.0
            result = tracker.probe()
            assert result.data["collections"] == tracker.collections
        finally:
            tracker.uninstall()
        assert not tracker.installed

    def test_thresholds_escalate(self):
        tracker = GcPauseTracker(degraded_ms=0.0, failing_ms=10_000.0)
        tracker.install()
        try:
            gc.collect()
            # any observed pause is >= the 0ms degraded threshold
            assert tracker.probe().status == DEGRADED
        finally:
            tracker.uninstall()

    def test_double_install_is_idempotent(self):
        tracker = GcPauseTracker()
        tracker.install()
        tracker.install()
        try:
            assert gc.callbacks.count(tracker._callback) == 1
        finally:
            tracker.uninstall()
            tracker.uninstall()


class TestMemoryWatermark:
    def test_rss_is_measurable_here(self):
        rss = rss_bytes()
        assert rss is not None and rss > 0

    def test_probe_tracks_peak_and_escalates(self):
        probe = MemoryWatermarkProbe()
        first = probe.probe()
        assert first.status == OK
        assert probe.peak_rss_bytes > 0
        assert first.data["peak_rss_mb"] >= first.data["rss_mb"] > 0

        tiny = MemoryWatermarkProbe(degraded_mb=0.001, failing_mb=0.002)
        assert tiny.probe().status == FAILING
        mid = MemoryWatermarkProbe(degraded_mb=0.001, failing_mb=10**9)
        assert mid.probe().status == DEGRADED


class TestAlertRules:
    def test_probe_rule_fires_and_resolves_on_transitions(self):
        registry = HealthRegistry()
        state = {"status": ok()}
        registry.register("flappy", lambda: state["status"])
        manager = AlertManager()
        manager.add_rule(*probe_rule(registry, "flappy", severity="page"))

        assert manager.firing() == []
        state["status"] = failing("dead")
        (alert,) = manager.evaluate()
        assert alert["firing"] and alert["severity"] == "page"
        assert alert["reason"] == "dead"
        assert alert["for_seconds"] >= 0.0
        state["status"] = ok()
        (alert,) = manager.evaluate()
        assert not alert["firing"]

    def test_threshold_rule_and_broken_rule(self):
        manager = AlertManager()
        level = {"value": 0.5}
        manager.add_rule(*threshold_rule(
            "queue", lambda: level["value"], 0.8, unit="%",
        ))

        def broken():
            raise ValueError("no data source")

        manager.add_rule("broken", broken)
        states = {s["name"]: s for s in manager.evaluate()}
        assert not states["queue"]["firing"]
        assert not states["broken"]["firing"]
        assert "no data source" in states["broken"]["error"]
        level["value"] = 0.9
        states = {s["name"]: s for s in manager.evaluate()}
        assert states["queue"]["firing"]

    def test_metric_families_render_firing_gauge(self):
        manager = AlertManager()
        manager.add_rule("hot", lambda: (True, 1, "always"), severity="page")
        ((name, family),) = manager.metric_families()
        assert name == "repro_alerts_firing"
        (sample,) = family["samples"]
        assert sample["labels"] == {"alert": "hot", "severity": "page"}
        assert sample["value"] == 1
