"""Unit tests for span trees: nesting, propagation, ring buffers."""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.obs import (
    bind_current_context,
    child_span,
    clear_traces,
    current_span,
    current_trace_id,
    leaf_span,
    recent_traces,
    render_span,
    set_slow_threshold_ms,
    set_trace_sampling,
    set_tracing,
    slow_traces,
    span,
    span_to_dict,
    slow_threshold_ms,
    trace_sampling,
    tracing_enabled,
)


class TestNesting:
    def test_children_attach_to_the_enclosing_span(self):
        with span("outer", kind="demo") as outer:
            with span("mid") as mid:
                with span("inner"):
                    pass
        assert [c.name for c in outer.children] == ["mid"]
        assert [c.name for c in mid.children] == ["inner"]

    def test_trace_id_shared_down_the_tree(self):
        with span("outer") as outer:
            with span("inner") as inner:
                pass
        assert outer.trace_id is not None
        assert inner.trace_id == outer.trace_id

    def test_distinct_roots_get_distinct_ids(self):
        with span("a") as a:
            pass
        with span("b") as b:
            pass
        assert a.trace_id != b.trace_id

    def test_current_span_and_trace_id(self):
        assert current_span() is None
        assert current_trace_id() is None
        with span("outer") as outer:
            assert current_span() is outer
            assert current_trace_id() == outer.trace_id
        assert current_span() is None

    def test_exceptions_mark_the_span(self):
        with pytest.raises(ValueError):
            with span("boom") as sp:
                raise ValueError("no")
        assert sp.attrs["error"] == "ValueError"

    def test_duration_is_positive_and_available_mid_span(self):
        with span("timed") as sp:
            time.sleep(0.002)
            mid = sp.duration_ms
            assert mid > 0
        assert sp.duration_ms >= mid

    def test_annotate(self):
        with span("s") as sp:
            sp.annotate(backend="dp", cached=False)
        assert sp.attrs["backend"] == "dp"


class TestLeafAndChildSpans:
    def test_leaf_span_is_not_published(self):
        with leaf_span("leaf") as leaf:
            assert current_span() is None
            with span("stray") as stray:
                pass
        # The stray span could not discover the leaf: it became a root.
        assert stray.parent is None
        assert leaf.children == []

    def test_leaf_span_still_nests_under_ambient_parent(self):
        with span("outer") as outer:
            with leaf_span("leaf") as leaf:
                pass
        assert leaf.parent is outer
        assert outer.children == [leaf]
        assert leaf.trace_id == outer.trace_id

    def test_child_span_attaches_to_explicit_parent(self):
        leaf = leaf_span("task")
        with leaf:
            with child_span(leaf, "engine-step") as step:
                pass
        assert step.parent is leaf
        assert leaf.children == [step]
        assert step.trace_id == leaf.trace_id

    def test_child_span_without_parent_uses_ambient_discovery(self):
        with span("outer") as outer:
            with child_span(None, "step") as step:
                pass
        assert step.parent is outer


class TestContextPropagation:
    def test_asyncio_tasks_inherit_the_creating_span(self):
        async def child_work():
            with span("in-task") as sp:
                await asyncio.sleep(0)
            return sp

        async def main():
            with span("request") as request:
                inner = await asyncio.create_task(child_work())
            return request, inner

        request, inner = asyncio.run(main())
        assert inner.parent is request
        assert inner in request.children

    def test_bind_current_context_carries_spans_across_pools(self):
        def pool_work():
            with span("pool-side") as sp:
                pass
            return sp

        with ThreadPoolExecutor(max_workers=1) as pool:
            with span("caller") as caller:
                bound = pool.submit(bind_current_context(pool_work)).result()
                unbound = pool.submit(pool_work).result()
        assert bound.parent is caller
        assert unbound.parent is None

    def test_scheduler_style_ctx_run_keeps_trace_id(self):
        import contextvars

        with span("request") as request:
            ctx = contextvars.copy_context()
        # The worker runs later, outside the span's lifetime, in a copy of
        # the submit-time context — exactly the scheduler's arrangement.
        assert ctx.run(current_trace_id) == request.trace_id


class TestRingBuffers:
    def test_roots_land_in_recent_children_do_not(self):
        with span("root"):
            with span("child"):
                pass
        names = [sp.name for sp in recent_traces()]
        assert names == ["root"]

    def test_slow_traces_capture_over_threshold(self):
        previous = set_slow_threshold_ms(0.0)
        try:
            with span("slowpoke"):
                pass
        finally:
            set_slow_threshold_ms(previous)
        assert [sp.name for sp in slow_traces()] == ["slowpoke"]
        assert [sp.name for sp in recent_traces()] == ["slowpoke"]
        assert slow_threshold_ms() == previous

    def test_fast_roots_stay_out_of_slow_ring(self):
        with span("quick"):
            pass
        assert slow_traces() == []

    def test_sampling_stride_thins_the_recent_ring(self):
        set_trace_sampling(4)
        assert trace_sampling() == 4
        clear_traces()
        for _ in range(8):
            with span("sampled"):
                pass
        # The tick counter is global, so any 8 consecutive roots hit the
        # 1-in-4 stride exactly twice regardless of phase.
        assert len(recent_traces()) == 2

    def test_sampling_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            set_trace_sampling(0)

    def test_limit_and_clear(self):
        for _ in range(3):
            with span("r"):
                pass
        assert len(recent_traces(limit=2)) == 2
        clear_traces()
        assert recent_traces() == []


class TestRingEdgeCases:
    def test_slow_roots_survive_sampling_pressure(self):
        # A stride so large that effectively no fast root is retained;
        # slow roots must still land in BOTH rings unconditionally.
        set_trace_sampling(997)
        set_slow_threshold_ms(1.0)
        clear_traces()
        for _ in range(5):
            with span("fast"):
                pass
        with span("slow"):
            time.sleep(0.003)
        assert [sp.name for sp in slow_traces()] == ["slow"]
        recent = [sp.name for sp in recent_traces()]
        assert "slow" in recent
        # at most one fast root can have hit the global stride boundary
        assert recent.count("fast") <= 1

    def test_recent_ring_overflow_keeps_newest_in_order(self):
        from repro.obs.trace import RECENT_LIMIT

        for i in range(RECENT_LIMIT + 40):
            with span("r", i=i):
                pass
        kept = recent_traces()
        assert len(kept) == RECENT_LIMIT
        assert [sp.attrs["i"] for sp in kept] \
            == list(range(40, RECENT_LIMIT + 40))

    def test_slow_ring_overflow_keeps_newest_in_order(self):
        from repro.obs.trace import SLOW_LIMIT

        set_slow_threshold_ms(0.0)
        for i in range(SLOW_LIMIT + 8):
            with span("s", i=i):
                pass
        kept = slow_traces()
        assert len(kept) == SLOW_LIMIT
        assert [sp.attrs["i"] for sp in kept] \
            == list(range(8, SLOW_LIMIT + 8))


class TestAdoptTrace:
    def test_live_root_adopts_caller_id_for_whole_tree(self):
        with span("server.request") as root:
            root.adopt_trace("abc-123")
            with span("inner") as inner:
                pass
        assert root.trace_id == "abc-123"
        assert inner.trace_id == "abc-123"

    def test_nested_span_keeps_its_parents_trace(self):
        with span("outer") as outer:
            with span("inner") as inner:
                inner.adopt_trace("zzz-9")
        assert inner.trace_id == outer.trace_id
        assert outer.trace_id != "zzz-9"

    def test_dead_span_ignores_adoption(self):
        set_tracing(False)
        with span("x") as sp:
            sp.adopt_trace("abc")
        assert sp.trace_id is None

    def test_empty_id_falls_back_to_a_fresh_one(self):
        with span("a") as sp:
            sp.adopt_trace(None)
            sp.adopt_trace("")
        assert sp.trace_id  # freshly allocated, not the empty string
        assert sp.trace_id != ""


class TestDisabledTracing:
    def test_disabled_spans_time_but_build_nothing(self):
        set_tracing(False)
        assert tracing_enabled() is False
        with span("outer") as outer:
            assert current_span() is None
            with span("inner") as inner:
                pass
        assert outer.duration_ms >= 0
        assert outer.children == []
        assert inner.parent is None
        assert outer.trace_id is None
        assert recent_traces() == []

    def test_set_tracing_returns_previous(self):
        assert set_tracing(False) is True
        assert set_tracing(True) is False


class TestRendering:
    def test_span_to_dict_shape(self):
        with span("root", route="/count") as root:
            with span("child", obj=object()):
                pass
        data = span_to_dict(root)
        assert data["name"] == "root"
        assert data["trace_id"] == root.trace_id
        assert data["attrs"] == {"route": "/count"}
        (child,) = data["children"]
        assert child["name"] == "child"
        assert child["attrs"]["obj"].startswith("<object")  # repr fallback
        assert "trace_id" in child  # inherited, still serialised
        # Already-serialised trees pass through untouched.
        assert span_to_dict(data) is data

    def test_render_span_tree(self):
        with span("root", route="/count") as root:
            with span("child"):
                pass
        text = render_span(root)
        lines = text.splitlines()
        assert lines[0].startswith("root")
        assert "route=/count" in lines[0]
        assert f"[trace {root.trace_id}]" in lines[0]
        assert lines[1].startswith("  child")
        assert "[trace" not in lines[1]  # id shown on the root line only
