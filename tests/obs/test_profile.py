"""Sampling profiler: hook swapping, lifecycle, span attribution."""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    SamplingProfiler,
    profile_snapshot,
    profiling_active,
    span,
    start_profiling,
    stop_profiling,
)
from repro.obs import profile as _profile
from repro.obs import trace as _trace


@pytest.fixture(autouse=True)
def _no_leftover_profiler():
    """Profilers are process-global; never leak one across tests."""
    yield
    with _profile._active_lock:
        active = _profile._active
        _profile._active = None
    if active is not None and active.running:
        active.stop()
    _trace._set_profile_hook(False)


class TestHookSwap:
    def test_default_span_path_carries_no_profiler_code(self):
        assert _trace.Span.__enter__ is _trace._plain_enter
        assert _trace.Span.__exit__ is _trace._plain_exit

    def test_enabled_hook_publishes_current_span_per_thread(self):
        ident = threading.get_ident()
        _trace._set_profile_hook(True)
        try:
            assert _trace.Span.__enter__ is _trace._profiled_enter
            with span("outer"):
                assert _trace._profile_threads[ident].name == "outer"
                with span("inner"):
                    assert _trace._profile_threads[ident].name == "inner"
                # exiting a nested span restores its parent, not a blank
                assert _trace._profile_threads[ident].name == "outer"
            # exiting the root clears the thread's entry entirely
            assert ident not in _trace._profile_threads
        finally:
            _trace._set_profile_hook(False)
        assert _trace.Span.__enter__ is _trace._plain_enter

    def test_disable_clears_the_thread_table(self):
        _trace._set_profile_hook(True)
        sp = span("left-open").__enter__()
        assert _trace._profile_threads
        _trace._set_profile_hook(False)
        assert _trace._profile_threads == {}
        sp.__exit__(None, None, None)


class TestLifecycle:
    def test_interval_must_be_positive(self):
        for bad in (0, -1, -0.5):
            with pytest.raises(ObservabilityError):
                SamplingProfiler(interval_ms=bad)

    def test_start_stop_roundtrip(self):
        profiler = SamplingProfiler(interval_ms=1.0)
        assert profiler.running is False
        profiler.start()
        try:
            assert profiler.running is True
            assert _trace.Span.__enter__ is _trace._profiled_enter
            with pytest.raises(ObservabilityError):
                profiler.start()
        finally:
            snapshot = profiler.stop()
        assert profiler.running is False
        assert _trace.Span.__enter__ is _trace._plain_enter
        assert snapshot["running"] is False
        assert snapshot["interval_ms"] == 1.0
        # stopping an already-stopped profiler is a harmless snapshot
        assert profiler.stop()["running"] is False

    def test_reset_drops_samples(self):
        profiler = SamplingProfiler(interval_ms=1.0)
        profiler._stacks[("x", ("a",))] = 3
        profiler._samples = 3
        profiler.reset()
        assert profiler.snapshot()["samples"] == 0
        assert profiler.snapshot()["distinct_stacks"] == 0


class TestAttribution:
    def test_concurrent_threads_attribute_to_their_own_spans(self):
        stop_evt = threading.Event()

        def busy(name):
            with span(name):
                while not stop_evt.is_set():
                    sum(range(200))

        profiler = SamplingProfiler(interval_ms=1.0)
        workers = [
            threading.Thread(target=busy, args=(f"worker.{tag}",))
            for tag in ("alpha", "beta")
        ]
        profiler.start()
        try:
            for worker in workers:
                worker.start()
            wanted = {"worker.alpha", "worker.beta"}
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if wanted <= set(profiler.snapshot()["spans"]):
                    break
                time.sleep(0.01)
        finally:
            stop_evt.set()
            for worker in workers:
                worker.join()
            final = profiler.stop()
        assert wanted <= set(final["spans"])
        assert final["samples"] >= 2
        # every stack is span-attributed, leaf frames inside busy()
        ours = [
            stack for stack in final["stacks"]
            if stack["span"] in wanted
        ]
        assert ours
        assert all(stack["samples"] >= 1 for stack in ours)
        assert any(
            any("busy" in frame for frame in stack["frames"])
            for stack in ours
        )

    def test_collapsed_stacks_are_flamegraph_lines(self):
        profiler = SamplingProfiler(interval_ms=0.5)
        profiler.start()
        try:
            deadline = time.monotonic() + 10.0
            with span("hot.loop"):
                while (
                    profiler.snapshot()["samples"] < 3
                    and time.monotonic() < deadline
                ):
                    sum(range(100))
        finally:
            final = profiler.stop()
        assert final["samples"] >= 3
        text = profiler.render_collapsed()
        lines = text.strip().splitlines()
        assert lines
        for line in lines:
            stack_part, _, count = line.rpartition(" ")
            assert int(count) >= 1
            assert ";" in stack_part  # span prefix + at least one frame
        assert any(line.startswith("hot.loop;") for line in lines)


class TestGlobalProfiler:
    def test_global_lifecycle_and_snapshot(self):
        with _profile._active_lock:
            _profile._active = None  # a clean slate for the empty shape
        empty = profile_snapshot()
        assert empty["running"] is False
        assert empty["samples"] == 0
        assert empty["stacks"] == []
        assert _profile.render_collapsed() == ""
        with pytest.raises(ObservabilityError):
            stop_profiling()

        profiler = start_profiling(interval_ms=1.0)
        try:
            assert profiling_active() is True
            with pytest.raises(ObservabilityError):
                start_profiling()  # one at a time
        finally:
            final = stop_profiling()
        assert profiling_active() is False
        assert final["running"] is False
        # the stopped profiler's data stays readable until the next start
        assert profile_snapshot()["running"] is False
        assert profiler.running is False
