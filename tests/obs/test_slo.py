"""SLO grammar, rolling windows, burn rates, and the global tracker.

The window tests drive a fake monotonic clock so slice roll-over is
deterministic; the CI workflow additionally runs this file with
``REPRO_SLO`` set, which the env-seeding test below detects and asserts
against (it is a no-op under a plain ``pytest`` run).
"""

from __future__ import annotations

import os

import pytest

from repro.errors import ObservabilityError
from repro.obs.slo import (
    DEFAULT_SLICE_SECONDS,
    DEFAULT_SLICES,
    Objective,
    RollingWindow,
    SloTracker,
    configure_slo,
    observe_slo,
    parse_slo,
    set_slo_tracking,
    slo_report,
    tracker,
)


class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestParseGrammar:
    def test_full_grammar(self):
        objectives = parse_slo("count:p99<250ms,err<0.1%;hom-count:p95<50ms")
        assert [o.describe() for o in objectives] == [
            "count:p99<250ms", "count:err<0.1%", "hom-count:p95<50ms",
        ]
        latency = objectives[0]
        assert (latency.kind, latency.quantile, latency.threshold_ms) == (
            "latency", 0.99, 250.0,
        )
        errors = objectives[1]
        assert (errors.kind, errors.max_error_rate) == ("error-rate", 0.001)

    def test_empty_and_whitespace_parse_to_nothing(self):
        assert parse_slo("") == ()
        assert parse_slo("  ;  ") == ()

    @pytest.mark.parametrize("bad", [
        "count",                 # no colon
        ":p99<250ms",            # no key
        "count:",                # no conditions
        "count:p99<250",         # missing ms unit
        "count:p99>250ms",       # wrong comparator
        "count:err<0.1",         # missing % unit
        "count:p0<250ms",        # quantile not in (0, 100)
        "count:latency<250ms",   # unknown condition shape
    ])
    def test_malformed_specs_raise(self, bad):
        with pytest.raises(ObservabilityError):
            parse_slo(bad)

    def test_objective_describe_roundtrips_through_parse(self):
        objective = Objective("k", "latency", quantile=0.75, threshold_ms=5.0)
        assert parse_slo(objective.describe()) == (objective,)


class TestRollingWindow:
    def test_observations_age_out_after_the_window(self):
        clock = FakeClock()
        window = RollingWindow(
            slices=DEFAULT_SLICES,
            slice_seconds=DEFAULT_SLICE_SECONDS,
            clock=clock,
        )
        for _ in range(10):
            window.observe(1.0)
        assert window.snapshot()["count"] == 10
        # one slice short of a full rotation: still visible
        clock.advance(DEFAULT_SLICE_SECONDS * (DEFAULT_SLICES - 1))
        assert window.snapshot()["count"] == 10
        # past the window: gone
        clock.advance(DEFAULT_SLICE_SECONDS)
        assert window.snapshot()["count"] == 0

    def test_slot_reuse_resets_stale_counts(self):
        clock = FakeClock()
        window = RollingWindow(slices=2, slice_seconds=1.0, clock=clock)
        window.observe(1.0)
        clock.advance(2.0)  # same ring slot, two generations later
        window.observe(1.0)
        snap = window.snapshot()
        assert snap["count"] == 1  # stale generation was reset, not added

    def test_empty_window_quantile_and_fraction_are_none(self):
        window = RollingWindow(clock=FakeClock())
        assert window.quantile(0.99) is None
        assert window.fraction_within(100.0) is None
        snap = window.snapshot()
        assert snap["count"] == 0 and snap["error_rate"] == 0.0

    def test_quantile_is_conservative_bucket_upper_bound(self):
        window = RollingWindow(bounds=(1.0, 10.0, 100.0), clock=FakeClock())
        for _ in range(99):
            window.observe(0.5)  # bucket le=1.0
        window.observe(50.0)     # bucket le=100.0
        assert window.quantile(0.50) == 1.0
        assert window.quantile(0.99) == 1.0
        assert window.quantile(1.0) == 100.0

    def test_exact_boundary_observation_lands_in_its_bucket(self):
        """An observation equal to a bucket bound counts as within it
        (``le`` semantics, matching the metrics Histogram)."""
        window = RollingWindow(bounds=(1.0, 10.0), clock=FakeClock())
        window.observe(10.0)
        assert window.fraction_within(10.0) == 1.0
        assert window.quantile(1.0) == 10.0

    def test_overflow_bucket_reports_inf(self):
        window = RollingWindow(bounds=(1.0,), clock=FakeClock())
        window.observe(5.0)
        assert window.quantile(0.99) == float("inf")
        assert window.fraction_within(1.0) == 0.0

    def test_error_rate_tracks_flagged_observations(self):
        window = RollingWindow(clock=FakeClock())
        window.observe(1.0)
        window.observe(1.0, error=True)
        snap = window.snapshot()
        assert snap["errors"] == 1 and snap["error_rate"] == 0.5

    def test_config_validation(self):
        with pytest.raises(ObservabilityError):
            RollingWindow(bounds=())
        with pytest.raises(ObservabilityError):
            RollingWindow(bounds=(2.0, 1.0))
        with pytest.raises(ObservabilityError):
            RollingWindow(slices=1)
        with pytest.raises(ObservabilityError):
            RollingWindow(slice_seconds=0)
        with pytest.raises(ObservabilityError):
            RollingWindow(clock=FakeClock()).quantile(0.0)


class TestSloTracker:
    def _tracker(self, spec: str) -> SloTracker:
        return SloTracker(objectives=parse_slo(spec), clock=FakeClock())

    def test_attained_objective_reports_ok_and_low_burn(self):
        slo = self._tracker("count:p99<250ms,err<1%")
        for _ in range(100):
            slo.observe("count", 10.0)
        report = slo.report()
        assert all(status["ok"] for status in report["objectives"])
        assert slo.burn_rates() == {
            "count:p99<250ms": 0.0, "count:err<1%": 0.0,
        }
        assert report["windows"]["count"]["count"] == 100

    def test_violated_latency_objective_burns_budget(self):
        slo = self._tracker("count:p99<250ms")
        for _ in range(99):
            slo.observe("count", 1.0)
        for _ in range(99):
            slo.observe("count", 400.0)  # half the traffic over threshold
        (status,) = slo.report()["objectives"]
        assert not status["ok"]
        # 50% outside a 1% budget → burning 50x
        assert status["burn_rate"] == pytest.approx(50.0)

    def test_violated_error_objective_burns_budget(self):
        slo = self._tracker("count:err<0.1%")
        for i in range(100):
            slo.observe("count", 1.0, error=(i < 5))
        (status,) = slo.report()["objectives"]
        assert not status["ok"]
        assert status["error_rate"] == pytest.approx(0.05)
        assert status["burn_rate"] == pytest.approx(50.0)

    def test_objective_threshold_becomes_a_bucket_bound(self):
        """Attainment is measured exactly at the target boundary, not at
        the nearest default bucket."""
        slo = self._tracker("count:p99<250ms")
        window = slo._ensure_window("count")
        assert 250.0 in window.bounds
        slo.observe("count", 250.0)  # exactly on target: within budget
        (status,) = slo.report()["objectives"]
        assert status["ok"]

    def test_objective_with_no_traffic_is_vacuously_ok(self):
        slo = self._tracker("count:p99<250ms")
        (status,) = slo.report()["objectives"]
        assert status["ok"] and status["events"] == 0
        assert status["burn_rate"] == 0.0

    def test_metric_families_expose_burn_and_ok_gauges(self):
        slo = self._tracker("count:p99<250ms")
        slo.observe("count", 1.0)
        families = dict(slo.metric_families())
        burn = families["repro_slo_burn_rate"]["samples"][0]
        assert burn["labels"] == {
            "key": "count", "objective": "count:p99<250ms",
        }
        assert families["repro_slo_ok"]["samples"][0]["value"] == 1

    def test_set_objectives_keeps_windows(self):
        slo = self._tracker("count:p99<250ms")
        slo.observe("count", 1.0)
        previous = slo.set_objectives(parse_slo("count:err<1%"))
        assert [o.describe() for o in previous] == ["count:p99<250ms"]
        assert slo.report()["windows"]["count"]["count"] == 1


class TestGlobalTracker:
    @pytest.fixture(autouse=True)
    def _restore_global_state(self):
        previous_objectives = tracker().objectives
        previous_enabled = set_slo_tracking(True)
        yield
        tracker().set_objectives(previous_objectives)
        set_slo_tracking(previous_enabled)
        tracker().reset()

    def test_observe_slo_feeds_the_global_report(self):
        tracker().reset()
        configure_slo("probe-key:p50<100ms")
        observe_slo("probe-key", 1.0)
        report = slo_report()
        assert report["windows"]["probe-key"]["count"] == 1
        (status,) = [
            s for s in report["objectives"] if s["key"] == "probe-key"
        ]
        assert status["ok"]

    def test_disabled_tracking_is_a_no_op(self):
        tracker().reset()
        set_slo_tracking(False)
        observe_slo("ignored-key", 1.0)
        assert "ignored-key" not in slo_report()["windows"]

    def test_configure_slo_rejects_malformed_spec(self):
        with pytest.raises(ObservabilityError):
            configure_slo("count:p99<oops")

    def test_env_seeded_objectives_when_ci_sets_repro_slo(self):
        """Under the CI SLO job (REPRO_SLO exported before pytest starts)
        the global tracker must carry the env-seeded objectives."""
        spec = os.environ.get("REPRO_SLO")
        if not spec:
            pytest.skip("REPRO_SLO not set for this run")
        assert [o.describe() for o in tracker().objectives] == [
            o.describe() for o in parse_slo(spec)
        ]
