"""Unit tests for the metrics registry: instruments, families, renderers."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import (
    DEFAULT_MS_BUCKETS,
    Histogram,
    MetricsRegistry,
    family_snapshot,
)


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestInstruments:
    def test_counter_counts(self, reg):
        counter = reg.counter("c_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self, reg):
        with pytest.raises(ObservabilityError):
            reg.counter("c_total").inc(-1)

    def test_gauge_moves_both_ways(self, reg):
        gauge = reg.gauge("g")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec(5)
        assert gauge.value == 7

    def test_histogram_bucket_edges(self):
        hist = Histogram(bounds=(1.0, 5.0, 10.0))
        # le semantics: a value exactly on a bound lands in that bucket.
        for value in (0.5, 1.0, 5.0, 5.1, 10.0, 99.0):
            hist.observe(value)
        snap = hist.value
        assert snap["count"] == 6
        assert snap["sum"] == pytest.approx(120.6)
        # Cumulative: le=1 holds {0.5, 1.0}; le=5 adds {5.0}; le=10 adds
        # {5.1, 10.0}; 99.0 only exists in the implicit +Inf bucket.
        assert snap["buckets"] == [[1.0, 2], [5.0, 3], [10.0, 5]]

    def test_histogram_rejects_bad_buckets(self):
        with pytest.raises(ObservabilityError):
            Histogram(bounds=())
        with pytest.raises(ObservabilityError):
            Histogram(bounds=(5.0, 1.0))


class TestFamilies:
    def test_labeled_children_are_independent(self, reg):
        family = reg.counter("req_total", labelnames=("route",))
        family.labels(route="a").inc()
        family.labels(route="b").inc(2)
        snap = family.snapshot()
        assert snap["samples"] == [
            {"labels": {"route": "a"}, "value": 1},
            {"labels": {"route": "b"}, "value": 2},
        ]

    def test_labels_are_validated(self, reg):
        family = reg.counter("req_total", labelnames=("route",))
        with pytest.raises(ObservabilityError):
            family.labels(wrong="a")
        with pytest.raises(ObservabilityError):
            family.labels(route="a", extra="b")
        with pytest.raises(ObservabilityError):
            family.labels()

    def test_unlabelled_proxy_requires_no_labels(self, reg):
        family = reg.counter("req_total", labelnames=("route",))
        with pytest.raises(ObservabilityError):
            family.inc()

    def test_registration_is_idempotent(self, reg):
        first = reg.counter("c_total", labelnames=("k",))
        again = reg.counter("c_total", labelnames=("k",))
        assert first is again

    def test_conflicting_registration_raises(self, reg):
        reg.counter("c_total")
        with pytest.raises(ObservabilityError):
            reg.gauge("c_total")
        with pytest.raises(ObservabilityError):
            reg.counter("c_total", labelnames=("k",))

    def test_thread_hammer_loses_nothing(self, reg):
        counter = reg.counter("hammer_total", labelnames=("worker",))
        hist = reg.histogram("hammer_ms", buckets=DEFAULT_MS_BUCKETS)
        threads, per_thread = 8, 5000
        barrier = threading.Barrier(threads)

        def work(worker: int) -> None:
            child = counter.labels(worker=worker % 2)
            barrier.wait()
            for _ in range(per_thread):
                child.inc()
                hist.observe(1.0)

        pool = [
            threading.Thread(target=work, args=(i,)) for i in range(threads)
        ]
        for thread in pool:
            thread.start()
        for thread in pool:
            thread.join()
        snap = counter.snapshot()
        assert sum(s["value"] for s in snap["samples"]) == threads * per_thread
        assert hist.value["count"] == threads * per_thread


class TestCollectors:
    def test_collector_families_appear_in_snapshot(self, reg):
        reg.register_collector(
            lambda: [
                family_snapshot(
                    "col_total", "counter", [({"tier": "hot"}, 3)], "help!",
                ),
            ],
        )
        snap = reg.snapshot()
        assert snap["col_total"]["samples"] == [
            {"labels": {"tier": "hot"}, "value": 3},
        ]
        assert snap["col_total"]["help"] == "help!"

    def test_name_collision_extends_samples(self, reg):
        reg.counter("shared_total", labelnames=("who",)).labels(who="a").inc()
        reg.register_collector(
            lambda: [
                family_snapshot("shared_total", "counter", [({"who": "b"}, 7)]),
            ],
        )
        samples = reg.snapshot()["shared_total"]["samples"]
        assert {"labels": {"who": "a"}, "value": 1} in samples
        assert {"labels": {"who": "b"}, "value": 7} in samples

    def test_broken_collector_never_breaks_the_scrape(self, reg):
        def broken():
            raise RuntimeError("boom")

        reg.register_collector(broken)
        reg.counter("ok_total").inc()
        assert reg.snapshot()["ok_total"]["samples"][0]["value"] == 1

    def test_unregister(self, reg):
        collector = lambda: [family_snapshot("gone_total", "counter", [({}, 1)])]
        reg.register_collector(collector)
        assert "gone_total" in reg.snapshot()
        reg.unregister_collector(collector)
        assert "gone_total" not in reg.snapshot()


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self, reg):
        reg.counter("c_total", help="counts things").inc(2)
        reg.gauge("g", labelnames=("zone",)).labels(zone="eu").set(1.5)
        text = reg.render_prometheus()
        assert "# HELP c_total counts things" in text
        assert "# TYPE c_total counter" in text
        assert "c_total 2" in text  # integral floats render without .0
        assert 'g{zone="eu"} 1.5' in text
        assert text.endswith("\n")

    def test_histogram_exposition(self, reg):
        hist = reg.histogram("lat_ms", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        text = reg.render_prometheus()
        assert 'lat_ms_bucket{le="1"} 1' in text
        assert 'lat_ms_bucket{le="10"} 2' in text
        assert 'lat_ms_bucket{le="+Inf"} 3' in text
        assert "lat_ms_sum 55.5" in text
        assert "lat_ms_count 3" in text

    def test_label_escaping(self, reg):
        reg.counter("c_total", labelnames=("q",)).labels(q='a"b\nc').inc()
        text = reg.render_prometheus()
        assert 'q="a\\"b\\nc"' in text

    def test_families_render_sorted_by_name(self, reg):
        reg.counter("zz_total").inc()
        reg.counter("aa_total").inc()
        text = reg.render_prometheus()
        assert text.index("aa_total") < text.index("zz_total")


class TestRenderEdgeCases:
    def test_labeled_gauge_renders_every_child_with_sorted_labels(self, reg):
        family = reg.gauge("pool", labelnames=("zone", "tier"))
        family.labels(zone="eu", tier="hot").set(3)
        family.labels(zone="us", tier="cold").set(0.25)
        text = reg.render_prometheus()
        # label keys render sorted regardless of declaration order
        assert 'pool{tier="hot",zone="eu"} 3' in text
        assert 'pool{tier="cold",zone="us"} 0.25' in text

    def test_backslash_escapes_before_other_escapes(self, reg):
        reg.counter("c_total", labelnames=("path",)).labels(
            path='C:\\tmp\n"x"',
        ).inc()
        text = reg.render_prometheus()
        assert 'path="C:\\\\tmp\\n\\"x\\""' in text

    def test_empty_histogram_renders_all_zero_buckets(self, reg):
        reg.histogram("lat_ms", buckets=(1.0, 10.0))
        text = reg.render_prometheus()
        assert 'lat_ms_bucket{le="1"} 0' in text
        assert 'lat_ms_bucket{le="10"} 0' in text
        assert 'lat_ms_bucket{le="+Inf"} 0' in text
        assert "lat_ms_sum 0" in text
        assert "lat_ms_count 0" in text

    def test_exact_boundary_observation_renders_in_its_le_bucket(self, reg):
        hist = reg.histogram("lat_ms", buckets=(1.0, 10.0))
        hist.observe(10.0)  # le semantics: value == bound is within
        text = reg.render_prometheus()
        assert 'lat_ms_bucket{le="1"} 0' in text
        assert 'lat_ms_bucket{le="10"} 1' in text
        assert 'lat_ms_bucket{le="+Inf"} 1' in text

    def test_labeled_histogram_merges_le_with_other_labels(self, reg):
        family = reg.histogram(
            "lat_ms", buckets=(1.0,), labelnames=("route",),
        )
        family.labels(route="count").observe(0.5)
        text = reg.render_prometheus()
        assert 'lat_ms_bucket{route="count",le="1"} 1' in text
        assert 'lat_ms_sum{route="count"} 0.5' in text
        assert 'lat_ms_count{route="count"} 1' in text

    def test_empty_label_value_still_renders(self, reg):
        reg.counter("c_total", labelnames=("q",)).labels(q="").inc()
        assert 'c_total{q=""} 1' in reg.render_prometheus()
