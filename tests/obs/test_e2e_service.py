"""End-to-end: /metrics counters reconcile with client-observed traffic.

Runs a real loopback server, drives a known mix of requests (distinct
counts, warm repeats, one failure), and checks that the scraped counter
*deltas* match what the client saw.  Deltas, not absolutes: the metrics
registry is process-global and other tests in the same run feed it too.
"""

from __future__ import annotations

import pytest

from repro.engine import set_default_engine
from repro.graphs import cycle_graph, path_graph, random_graph
from repro.obs import span
from repro.obs import profile as _profile
from repro.service import BackgroundServer, ServiceClient, ServiceError


@pytest.fixture(autouse=True)
def _restore_default_engine():
    yield
    set_default_engine(None)


@pytest.fixture
def server():
    with BackgroundServer(workers=2, max_queue=32) as running:
        # readiness gate instead of trusting the startup event alone
        ServiceClient(port=running.port).wait_ready()
        yield running


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port)


def metric(snapshot: dict, name: str, **labels) -> float:
    """Sum the samples of ``name`` matching the given label subset."""
    total = 0
    for sample in snapshot.get(name, {}).get("samples", ()):
        if all(sample["labels"].get(k) == v for k, v in labels.items()):
            value = sample["value"]
            total += value["count"] if isinstance(value, dict) else value
    return total


class TestMetricsReconcile:
    def test_counters_match_observed_traffic(self, client):
        host = random_graph(12, 0.3, seed=5)
        client.register_graph("hosts", host)
        patterns = [path_graph(3), path_graph(4), cycle_graph(4)]

        before = client.metrics()

        ok = 0
        for _ in range(2):  # second round repeats → engine count-cache hits
            for pattern in patterns:
                response = client.count(pattern, "hosts")
                assert response["kind"] == "count"
                ok += 1
        with pytest.raises(ServiceError) as failure:
            client.count(patterns[0], "no-such-dataset")
        assert failure.value.status == 404
        error_code = failure.value.code
        assert error_code

        after = client.metrics()

        def delta(name, **labels):
            return metric(after, name, **labels) - metric(
                before, name, **labels,
            )

        # Server route counters: every request counted, errors separately.
        # Route labels are the request paths, matching /stats route keys.
        assert delta("repro_server_requests_total", route="/count") == ok + 1
        assert delta(
            "repro_server_errors_total", route="/count", code=error_code,
        ) == 1
        assert delta("repro_server_request_ms", route="/count") == ok + 1

        # Task counter: one hom-count execution per successful request.
        assert delta(
            "repro_tasks_total", kind="hom-count", executor="local",
        ) == ok

        # Scheduler: sequential distinct requests — each submitted job ran.
        assert delta("repro_scheduler_requests_total", event="submitted") == ok
        assert delta("repro_scheduler_requests_total", event="executed") == ok
        assert delta("repro_scheduler_wait_ms") == ok
        assert delta("repro_scheduler_run_ms") == ok

        # Engine count cache: the repeat round hit once per pattern.
        assert delta(
            "repro_engine_cache_events_total", cache="count", event="hit",
        ) >= len(patterns)

    def test_trace_header_and_traces_endpoint(self, client):
        host = random_graph(8, 0.4, seed=9)
        client.register_graph("traced", host)
        client.count(path_graph(3), "traced")
        trace_id = client.last_trace_id
        assert trace_id

        traces = client.traces(limit=64)
        assert traces["kind"] == "traces"
        ours = [
            trace for trace in traces["recent"]
            if trace.get("trace_id") == trace_id
        ]
        assert len(ours) == 1
        (trace,) = ours
        assert trace["name"] == "server.request"
        assert trace["attrs"]["route"] == "/count"
        assert trace["attrs"]["status"] == 200
        assert trace["duration_ms"] >= 0

    def test_error_payloads_carry_trace_and_stable_code(self, client):
        with pytest.raises(ServiceError) as failure:
            client.request("POST", "/count", {"pattern": "not-a-graph"})
        assert failure.value.status == 400
        assert failure.value.code  # stable repro.errors code, not a message
        assert client.last_trace_id  # error responses are traced too

    def test_client_trace_propagates_to_server_spans(self, client):
        host = random_graph(8, 0.4, seed=21)
        client.register_graph("linked", host)
        with span("client.op") as sp:
            client.count(path_graph(3), "linked")
            client_trace = sp.trace_id
        # the response echoes the id the server worked under — adopted
        # from the X-Repro-Trace request header, not freshly allocated
        assert client.last_trace_id == client_trace

        traces = client.traces(limit=64)
        adopted = [
            trace for trace in traces["recent"]
            if trace.get("trace_id") == client_trace
            and trace["name"] == "server.request"
        ]
        assert len(adopted) == 1
        assert adopted[0]["attrs"]["route"] == "/count"

    def test_slow_request_lands_in_slow_query_log(self, client):
        host = random_graph(14, 0.3, seed=11)
        client.register_graph("slowhost", host)

        response = client.slow_queries(threshold_ms=0.0)
        assert response["kind"] == "slow-queries"
        assert response["threshold_ms"] == 0.0

        client.count(cycle_graph(5), "slowhost")
        request_trace = client.last_trace_id

        log = client.slow_queries(limit=50)
        entries = [
            entry for entry in log["slow_queries"]
            if entry["trace_id"] == request_trace
        ]
        assert len(entries) == 1
        (entry,) = entries
        # the entry alone reconstructs the request: canonical task key,
        # plan explain output, cost breakdown, trace id
        assert entry["kind"] == "hom-count"
        assert entry["task_key"]
        assert entry["backend"]
        assert "task.hom-count" in entry["explain"]
        assert entry["cost"]["total_ms"] >= 0
        assert entry["cost"]["span_count"] >= 1
        assert entry["elapsed_ms"] >= 0

    def test_profile_endpoints_roundtrip(self, client):
        baseline = client.profile()
        assert baseline["running"] is False

        started = client.profile_start(interval_ms=1.0)
        try:
            assert started["kind"] == "profile"
            assert started["running"] is True
            assert started["interval_ms"] == 1.0

            client.register_graph(
                "profhost", random_graph(10, 0.3, seed=3),
            )
            for size in (3, 4, 5):
                client.count(path_graph(size), "profhost")
            assert client.profile()["running"] is True
        finally:
            final = client.profile_stop()
        assert final["running"] is False
        assert final["interval_ms"] == 1.0
        assert final["samples"] >= 0
        collapsed = client.profile_collapsed()
        assert isinstance(collapsed, str)
        assert client.profile()["running"] is False
        with _profile._active_lock:
            _profile._active = None  # don't leak state across tests

    def test_prometheus_text_and_stats_snapshot(self, client):
        client.health()
        text = client.metrics_text()
        assert "# TYPE repro_server_requests_total counter" in text
        assert 'repro_server_requests_total{route="/health"}' in text

        stats = client.stats()
        assert stats["kind"] == "stats"  # old fields stay put
        assert "engine" in stats and "scheduler" in stats
        assert "repro_server_requests_total" in stats["metrics"]
