"""Unit tests for the knowledge-graph extension (remark (C))."""

import pytest

from repro.errors import GraphError, QueryError
from repro.kg import (
    KgQuery,
    KnowledgeGraph,
    count_kg_answers,
    count_kg_homomorphisms,
    enumerate_kg_homomorphisms,
    kg_colour_refinement,
    kg_extension_graph,
    kg_extension_width,
    kg_query_from_triples,
    kg_wl_1_equivalent,
)


def _social_kg() -> KnowledgeGraph:
    """A small labelled instance: people follow people, people like posts."""
    kg = KnowledgeGraph(
        vertices={
            "alice": "person",
            "bob": "person",
            "carol": "person",
            "p1": "post",
            "p2": "post",
        },
    )
    kg.add_edge("alice", "follows", "bob")
    kg.add_edge("bob", "follows", "carol")
    kg.add_edge("carol", "follows", "alice")
    kg.add_edge("alice", "likes", "p1")
    kg.add_edge("bob", "likes", "p1")
    kg.add_edge("bob", "likes", "p2")
    return kg


class TestStructure:
    def test_basic_accessors(self):
        kg = _social_kg()
        assert kg.num_vertices() == 5
        assert kg.num_triples() == 6
        assert kg.vertex_label("p1") == "post"
        assert kg.has_edge("alice", "follows", "bob")
        assert not kg.has_edge("bob", "follows", "alice")

    def test_parallel_edges_distinct_labels(self):
        kg = KnowledgeGraph()
        kg.add_edge("a", "r", "b")
        kg.add_edge("a", "s", "b")
        assert kg.num_triples() == 2

    def test_self_loops_rejected(self):
        with pytest.raises(GraphError):
            KnowledgeGraph(triples=[("a", "r", "a")])

    def test_label_conflict_rejected(self):
        kg = KnowledgeGraph(vertices={"a": "person"})
        with pytest.raises(GraphError):
            kg.add_vertex("a", "robot")

    def test_gaifman_graph(self):
        kg = _social_kg()
        gaifman = kg.gaifman_graph()
        assert gaifman.has_edge("alice", "bob")
        assert gaifman.has_edge("alice", "p1")
        assert not gaifman.has_edge("p1", "p2")

    def test_directionality_of_edges(self):
        kg = _social_kg()
        assert ("follows", "bob") in kg.out_edges("alice")
        assert ("follows", "alice") not in kg.out_edges("bob")
        assert ("follows", "alice") in kg.in_edges("bob")


class TestHomomorphisms:
    def test_direction_matters(self):
        pattern = KnowledgeGraph(triples=[("u", "follows", "v")])
        target = _social_kg()
        count = count_kg_homomorphisms(pattern, target)
        assert count == 3  # the directed follows-triangle

    def test_labels_matter(self):
        kg = _social_kg()
        likes = KnowledgeGraph(triples=[("u", "likes", "v")])
        assert count_kg_homomorphisms(likes, kg) == 3

    def test_vertex_labels_restrict(self):
        kg = _social_kg()
        pattern = KnowledgeGraph(
            vertices={"u": "person", "v": "person"},
            triples=[("u", "likes", "v")],
        )
        # likes-edges all point to posts: no label-respecting image.
        assert count_kg_homomorphisms(pattern, kg) == 0

    def test_wildcard_vertex_labels(self):
        kg = _social_kg()
        pattern = KnowledgeGraph(triples=[("u", "likes", "v")])
        assert pattern.vertex_label("u") is None
        assert count_kg_homomorphisms(pattern, kg) == 3

    def test_fixed_assignment(self):
        kg = _social_kg()
        pattern = KnowledgeGraph(triples=[("u", "likes", "v")])
        homs = list(
            enumerate_kg_homomorphisms(pattern, kg, fixed={"v": "p1"}),
        )
        assert {h["u"] for h in homs} == {"alice", "bob"}

    def test_two_atom_pattern(self):
        kg = _social_kg()
        pattern = KnowledgeGraph(
            triples=[("u", "follows", "w"), ("w", "likes", "p")],
        )
        count = count_kg_homomorphisms(pattern, kg)
        # u→w follows with w liking something: alice→bob (p1, p2),
        # carol→alice (p1): 3.
        assert count == 3


class TestColourRefinement:
    def test_labels_seed_partition(self):
        kg = _social_kg()
        colours = kg_colour_refinement(kg)
        assert colours["p1"] != colours["alice"]

    def test_refinement_sees_direction(self):
        # a→b vs b→a patterns: in a directed path, source and sink differ.
        chain = KnowledgeGraph(triples=[("a", "r", "b"), ("b", "r", "c")])
        colours = kg_colour_refinement(chain)
        assert len({colours["a"], colours["b"], colours["c"]}) == 3

    def test_kg_wl1_equivalence_positive(self):
        first = KnowledgeGraph(triples=[("a", "r", "b"), ("b", "r", "c"), ("c", "r", "a")])
        second = KnowledgeGraph(triples=[("x", "r", "y"), ("y", "r", "z"), ("z", "r", "x")])
        assert kg_wl_1_equivalent(first, second)

    def test_kg_wl1_equivalence_negative_by_label(self):
        first = KnowledgeGraph(triples=[("a", "r", "b")])
        second = KnowledgeGraph(triples=[("a", "s", "b")])
        assert not kg_wl_1_equivalent(first, second)

    def test_kg_wl1_direction_sensitivity(self):
        # Two directed edges into one vertex vs out of one vertex.
        sink = KnowledgeGraph(triples=[("a", "r", "c"), ("b", "r", "c")])
        source = KnowledgeGraph(triples=[("c", "r", "a"), ("c", "r", "b")])
        assert not kg_wl_1_equivalent(sink, source)


class TestKgQueries:
    def test_answer_counting(self):
        kg = _social_kg()
        # who likes a post also liked by someone else they are followed by?
        query = kg_query_from_triples(
            [("x", "likes", "p"), ("y", "likes", "p")],
            ["x", "y"],
        )
        answers = count_kg_answers(query, kg)
        # pairs (x, y) sharing a liked post: (a,a),(a,b),(b,a),(b,b) via p1,
        # plus (b,b) via p2 (already counted): 4.
        assert answers == 4

    def test_free_variables_validated(self):
        pattern = KnowledgeGraph(triples=[("u", "r", "v")])
        with pytest.raises(QueryError):
            KgQuery(pattern, ["missing"])

    def test_boolean_kg_query(self):
        kg = _social_kg()
        query = kg_query_from_triples([("x", "follows", "y")], [])
        assert count_kg_answers(query, kg) == 1

    def test_extension_graph_cliques(self):
        # Shared quantified 'post' induces the x-y clique edge in Γ.
        query = kg_query_from_triples(
            [("x", "likes", "p"), ("y", "likes", "p")],
            ["x", "y"],
        )
        gamma = kg_extension_graph(query)
        assert gamma.has_edge("x", "y")

    def test_kg_extension_width_star_analogue(self):
        """The KG 2-star has extension width 2, mirroring the undirected
        theory (remark (C): the analysis carries over)."""
        query = kg_query_from_triples(
            [("x1", "likes", "p"), ("x2", "likes", "p")],
            ["x1", "x2"],
        )
        assert kg_extension_width(query) == 2

    def test_kg_full_query_width(self):
        query = kg_query_from_triples(
            [("a", "r", "b"), ("b", "r", "c")],
            ["a", "b", "c"],
        )
        assert kg_extension_width(query) == 1
