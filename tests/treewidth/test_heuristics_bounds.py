"""Unit tests for treewidth heuristics and lower bounds."""

import pytest

from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    petersen_graph,
    random_graph,
    star_graph,
)
from repro.treewidth import (
    clique_lower_bound,
    degeneracy,
    heuristic_decomposition,
    heuristic_treewidth_upper_bound,
    max_clique_size,
    min_degree_ordering,
    min_fill_ordering,
    mmd_lower_bound,
    ordering_width,
    treewidth,
    treewidth_lower_bound,
)


class TestHeuristics:
    def test_min_degree_on_tree_is_optimal(self):
        g = star_graph(4)
        ordering = min_degree_ordering(g)
        assert ordering_width(g, ordering) == 1

    def test_min_fill_on_cycle_is_optimal(self):
        g = cycle_graph(7)
        ordering = min_fill_ordering(g)
        assert ordering_width(g, ordering) == 2

    def test_upper_bound_at_least_exact(self):
        for seed in range(4):
            g = random_graph(8, 0.4, seed=seed)
            ub, ordering = heuristic_treewidth_upper_bound(g)
            assert ub >= treewidth(g)
            assert ordering_width(g, ordering) == ub

    def test_heuristic_decomposition_valid(self):
        g = grid_graph(3, 3)
        decomposition = heuristic_decomposition(g)
        decomposition.validate(g)
        assert decomposition.width >= treewidth(g)

    def test_orderings_cover_all_vertices(self):
        g = petersen_graph()
        assert sorted(min_degree_ordering(g)) == sorted(g.vertices())
        assert sorted(min_fill_ordering(g)) == sorted(g.vertices())


class TestBounds:
    def test_degeneracy_values(self):
        assert degeneracy(path_graph(5)) == 1
        assert degeneracy(cycle_graph(5)) == 2
        assert degeneracy(complete_graph(5)) == 4
        assert degeneracy(petersen_graph()) == 3

    def test_mmd_is_lower_bound(self):
        for g in (cycle_graph(6), grid_graph(3, 3), petersen_graph()):
            assert mmd_lower_bound(g) <= treewidth(g)

    def test_max_clique(self):
        assert max_clique_size(complete_graph(5)) == 5
        assert max_clique_size(cycle_graph(5)) == 2
        assert max_clique_size(petersen_graph()) == 2
        assert max_clique_size(grid_graph(2, 2)) == 2

    def test_max_clique_with_limit(self):
        assert max_clique_size(complete_graph(6), limit=3) >= 3

    def test_clique_lower_bound(self):
        assert clique_lower_bound(complete_graph(4)) == 3
        assert clique_lower_bound(path_graph(3)) == 1

    def test_combined_lower_bound_sandwich(self):
        for seed in range(4):
            g = random_graph(8, 0.5, seed=10 + seed)
            assert treewidth_lower_bound(g) <= treewidth(g)

    def test_empty_graph_bounds(self):
        from repro.graphs import Graph

        assert treewidth_lower_bound(Graph()) == 0
        assert max_clique_size(Graph()) == 0


@pytest.mark.parametrize(
    "graph_factory,expected",
    [
        (lambda: complete_graph(5), 4),
        (lambda: cycle_graph(9), 2),
        (lambda: grid_graph(2, 5), 2),
    ],
)
def test_heuristics_exact_on_easy_families(graph_factory, expected):
    g = graph_factory()
    ub, _ = heuristic_treewidth_upper_bound(g)
    assert ub == expected
