"""Cross-check of the two independent exact treewidth solvers."""

import pytest

from repro.errors import IntractableError
from repro.graphs import (
    Graph,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    grid_graph,
    path_graph,
    petersen_graph,
    random_graph,
)
from repro.treewidth import treewidth
from repro.treewidth.subset_dp import treewidth_subset_dp


@pytest.mark.parametrize(
    "graph_factory,expected",
    [
        (lambda: path_graph(6), 1),
        (lambda: cycle_graph(7), 2),
        (lambda: complete_graph(5), 4),
        (lambda: complete_bipartite_graph(3, 3), 3),
        (lambda: grid_graph(3, 3), 3),
        (lambda: petersen_graph(), 4),
    ],
    ids=["P6", "C7", "K5", "K33", "grid3x3", "Petersen"],
)
def test_known_values(graph_factory, expected):
    assert treewidth_subset_dp(graph_factory()) == expected


@pytest.mark.parametrize("seed", range(6))
def test_agrees_with_branch_and_bound(seed):
    graph = random_graph(9, 0.35 + 0.05 * (seed % 3), seed=seed)
    assert treewidth_subset_dp(graph) == treewidth(graph)


def test_edge_cases():
    assert treewidth_subset_dp(Graph()) == 0
    assert treewidth_subset_dp(Graph(vertices=[0])) == 0
    assert treewidth_subset_dp(Graph(vertices=range(4))) == 0


def test_disconnected():
    graph = disjoint_union(complete_graph(4), cycle_graph(5))
    assert treewidth_subset_dp(graph) == 3


def test_size_limit():
    graph = Graph(vertices=range(25))
    with pytest.raises(IntractableError):
        treewidth_subset_dp(graph, max_vertices=20)
