"""Unit tests for exact treewidth — known values for classical families."""

import pytest

from repro.graphs import (
    Graph,
    binary_tree,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    disjoint_union,
    grid_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    prism_graph,
    random_graph,
    star_graph,
    wheel_graph,
)
from repro.treewidth import (
    decomposition_from_elimination_ordering,
    is_treewidth_at_most,
    optimal_tree_decomposition,
    treewidth,
    treewidth_with_ordering,
)


class TestKnownValues:
    def test_empty_and_singleton(self):
        assert treewidth(Graph()) == 0
        assert treewidth(Graph(vertices=[0])) == 0

    def test_edgeless(self):
        assert treewidth(Graph(vertices=range(5))) == 0

    def test_trees_have_treewidth_one(self):
        assert treewidth(path_graph(7)) == 1
        assert treewidth(star_graph(5)) == 1
        assert treewidth(binary_tree(3)) == 1

    def test_cycles_have_treewidth_two(self):
        for n in (3, 4, 5, 8):
            assert treewidth(cycle_graph(n)) == 2

    def test_cliques(self):
        for n in (2, 3, 4, 5, 6):
            assert treewidth(complete_graph(n)) == n - 1

    def test_complete_bipartite(self):
        # tw(K_{a,b}) = min(a, b) for a, b >= 1.
        assert treewidth(complete_bipartite_graph(2, 3)) == 2
        assert treewidth(complete_bipartite_graph(3, 3)) == 3
        assert treewidth(complete_bipartite_graph(1, 4)) == 1
        assert treewidth(complete_bipartite_graph(2, 5)) == 2

    def test_grids(self):
        # tw(grid m×n) = min(m, n).
        assert treewidth(grid_graph(2, 4)) == 2
        assert treewidth(grid_graph(3, 3)) == 3
        assert treewidth(grid_graph(3, 4)) == 3

    def test_petersen(self):
        assert treewidth(petersen_graph()) == 4

    def test_prism(self):
        assert treewidth(prism_graph(4)) == 3

    def test_hypercube_q3(self):
        assert treewidth(hypercube_graph(3)) == 3

    def test_wheel(self):
        assert treewidth(wheel_graph(5)) == 3

    def test_disconnected_max_over_components(self):
        g = disjoint_union(complete_graph(4), cycle_graph(5))
        assert treewidth(g) == 3


class TestOrderingAndDecomposition:
    def test_ordering_achieves_width(self):
        g = grid_graph(3, 3)
        width, ordering = treewidth_with_ordering(g)
        decomposition = decomposition_from_elimination_ordering(g, ordering)
        assert decomposition.width == width
        decomposition.validate(g)

    def test_optimal_decomposition_valid(self):
        for g in (cycle_graph(6), petersen_graph(), complete_bipartite_graph(2, 4)):
            decomposition = optimal_tree_decomposition(g)
            decomposition.validate(g)
            assert decomposition.width == treewidth(g)

    def test_optimal_decomposition_empty_graph(self):
        decomposition = optimal_tree_decomposition(Graph())
        assert decomposition.width == -1  # single empty bag

    def test_decomposition_for_disconnected(self):
        g = disjoint_union(cycle_graph(4), path_graph(3))
        decomposition = optimal_tree_decomposition(g)
        decomposition.validate(g)
        assert decomposition.width == 2


class TestDecisionVariant:
    def test_is_treewidth_at_most(self):
        g = cycle_graph(5)
        assert not is_treewidth_at_most(g, 1)
        assert is_treewidth_at_most(g, 2)
        assert is_treewidth_at_most(g, 3)


class TestRandomisedCrossCheck:
    @pytest.mark.parametrize("seed", range(5))
    def test_exact_at_most_heuristic(self, seed):
        from repro.treewidth import heuristic_treewidth_upper_bound, treewidth_lower_bound

        g = random_graph(9, 0.35, seed=seed)
        exact = treewidth(g)
        ub, _ = heuristic_treewidth_upper_bound(g)
        lb = treewidth_lower_bound(g)
        assert lb <= exact <= ub

    @pytest.mark.parametrize("seed", range(3))
    def test_decomposition_width_matches(self, seed):
        g = random_graph(8, 0.45, seed=100 + seed)
        decomposition = optimal_tree_decomposition(g)
        decomposition.validate(g)
        assert decomposition.width == treewidth(g)
