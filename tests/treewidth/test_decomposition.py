"""Unit tests for tree decompositions and their validation."""

import pytest

from repro.errors import DecompositionError
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph
from repro.treewidth import (
    TreeDecomposition,
    decomposition_from_elimination_ordering,
    ordering_width,
    trivial_decomposition,
)


def _path_decomposition():
    """A valid decomposition of P4: bags {0,1}, {1,2}, {2,3} on a path."""
    tree = Graph(edges=[("a", "b"), ("b", "c")])
    bags = {"a": {0, 1}, "b": {1, 2}, "c": {2, 3}}
    return TreeDecomposition(tree, bags)


class TestValidation:
    def test_valid_path_decomposition(self):
        decomposition = _path_decomposition()
        decomposition.validate(path_graph(4))
        assert decomposition.width == 1

    def test_trivial_decomposition(self):
        g = complete_graph(4)
        decomposition = trivial_decomposition(g)
        decomposition.validate(g)
        assert decomposition.width == 3

    def test_t1_violation_detected(self):
        tree = Graph(vertices=["a"])
        decomposition = TreeDecomposition(tree, {"a": {0, 1}})
        with pytest.raises(DecompositionError, match=r"\(T1\)"):
            decomposition.validate(path_graph(3))

    def test_t2_violation_detected(self):
        # Vertex 0 appears in two non-adjacent bags.
        tree = Graph(edges=[("a", "b"), ("b", "c")])
        bags = {"a": {0, 1}, "b": {1, 2}, "c": {0, 2}}
        decomposition = TreeDecomposition(tree, bags)
        with pytest.raises(DecompositionError, match=r"\(T2\)"):
            decomposition.validate(path_graph(3))

    def test_t3_violation_detected(self):
        tree = Graph(edges=[("a", "b")])
        bags = {"a": {0}, "b": {1}}
        decomposition = TreeDecomposition(tree, bags)
        with pytest.raises(DecompositionError, match=r"\(T3\)"):
            decomposition.validate(path_graph(2))

    def test_is_valid_for(self):
        assert _path_decomposition().is_valid_for(path_graph(4))
        assert not _path_decomposition().is_valid_for(complete_graph(4))


class TestStructuralChecks:
    def test_tree_must_be_connected(self):
        tree = Graph(vertices=["a", "b"])  # two isolated nodes
        with pytest.raises(DecompositionError):
            TreeDecomposition(tree, {"a": {0}, "b": {1}})

    def test_tree_must_be_acyclic(self):
        tree = cycle_graph(3)
        with pytest.raises(DecompositionError):
            TreeDecomposition(tree, {0: {0}, 1: {1}, 2: {2}})

    def test_bags_must_match_nodes(self):
        tree = Graph(vertices=["a"])
        with pytest.raises(DecompositionError):
            TreeDecomposition(tree, {"b": {0}})

    def test_at_least_one_bag(self):
        with pytest.raises(DecompositionError):
            TreeDecomposition(Graph(), {})


class TestEliminationOrderings:
    def test_ordering_width_path(self):
        assert ordering_width(path_graph(4), [0, 1, 2, 3]) == 1

    def test_ordering_width_bad_order(self):
        # Eliminating the middle of a star first creates a clique.
        from repro.graphs import star_graph

        g = star_graph(3)
        assert ordering_width(g, ["y", "x1", "x2", "x3"]) == 3
        assert ordering_width(g, ["x1", "x2", "x3", "y"]) == 1

    def test_decomposition_from_ordering_valid(self):
        g = cycle_graph(5)
        decomposition = decomposition_from_elimination_ordering(g, [0, 1, 2, 3, 4])
        decomposition.validate(g)
        assert decomposition.width == ordering_width(g, [0, 1, 2, 3, 4])

    def test_ordering_must_cover_vertices(self):
        with pytest.raises(DecompositionError):
            decomposition_from_elimination_ordering(path_graph(3), [0, 1])

    def test_disconnected_graph_ordering(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        decomposition = decomposition_from_elimination_ordering(g, [0, 1, 2, 3])
        decomposition.validate(g)
