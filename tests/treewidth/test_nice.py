"""Unit tests for nice tree decompositions."""

import pytest

from repro.errors import DecompositionError
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.treewidth import (
    NiceNode,
    nice_tree_decomposition,
    optimal_tree_decomposition,
    treewidth,
    validate_nice,
)


def _nice_for(graph):
    return nice_tree_decomposition(optimal_tree_decomposition(graph))


class TestConversion:
    @pytest.mark.parametrize(
        "graph_factory",
        [
            lambda: path_graph(5),
            lambda: cycle_graph(6),
            lambda: complete_graph(4),
            lambda: star_graph(4),
            lambda: grid_graph(3, 3),
        ],
    )
    def test_valid_nice_decomposition(self, graph_factory):
        graph = graph_factory()
        root = _nice_for(graph)
        validate_nice(root, graph)

    def test_root_bag_empty(self):
        root = _nice_for(cycle_graph(5))
        assert root.bag == frozenset()

    def test_width_preserved(self):
        for graph in (cycle_graph(6), grid_graph(2, 4), complete_graph(4)):
            root = _nice_for(graph)
            assert root.width() == treewidth(graph)

    def test_every_node_kind_valid(self):
        root = _nice_for(grid_graph(2, 3))
        kinds = {node.kind for node in root.iter_postorder()}
        assert kinds <= {"leaf", "introduce", "forget", "join"}
        assert "leaf" in kinds
        assert "introduce" in kinds
        assert "forget" in kinds

    def test_join_appears_for_branching_graphs(self):
        root = _nice_for(star_graph(4))
        kinds = [node.kind for node in root.iter_postorder()]
        assert "join" in kinds

    def test_postorder_children_first(self):
        root = _nice_for(path_graph(4))
        seen: set[int] = set()
        for node in root.iter_postorder():
            for child in node.children:
                assert id(child) in seen
            seen.add(id(node))

    def test_node_count_linear(self):
        graph = random_graph(8, 0.4, seed=5)
        root = _nice_for(graph)
        # Generous linearity bound: each bag expands into O(width) nodes.
        assert root.count_nodes() <= 30 * (graph.num_vertices() + 1)

    def test_random_graphs_validate(self):
        for seed in range(4):
            graph = random_graph(7, 0.45, seed=seed)
            validate_nice(_nice_for(graph), graph)


class TestValidateNiceRejects:
    def test_bad_introduce(self):
        leaf = NiceNode(kind="leaf", bag=frozenset())
        bad = NiceNode(
            kind="introduce", bag=frozenset({1, 2}), children=[leaf], vertex=1,
        )
        with pytest.raises(DecompositionError):
            validate_nice(bad, Graph(vertices=[1, 2]))

    def test_bad_join(self):
        leaf_a = NiceNode(kind="leaf", bag=frozenset())
        intro = NiceNode(
            kind="introduce", bag=frozenset({1}), children=[leaf_a], vertex=1,
        )
        leaf_b = NiceNode(kind="leaf", bag=frozenset())
        bad = NiceNode(kind="join", bag=frozenset({1}), children=[intro, leaf_b])
        with pytest.raises(DecompositionError):
            validate_nice(bad, Graph(vertices=[1]))

    def test_leaf_with_bag_rejected(self):
        bad = NiceNode(kind="leaf", bag=frozenset({1}))
        with pytest.raises(DecompositionError):
            validate_nice(bad, Graph(vertices=[1]))

    def test_missing_edge_coverage_rejected(self):
        # Nice decomposition of the edgeless structure can't cover an edge.
        leaf = NiceNode(kind="leaf", bag=frozenset())
        intro1 = NiceNode(
            kind="introduce", bag=frozenset({0}), children=[leaf], vertex=0,
        )
        forget1 = NiceNode(
            kind="forget", bag=frozenset(), children=[intro1], vertex=0,
        )
        intro2 = NiceNode(
            kind="introduce", bag=frozenset({1}), children=[forget1], vertex=1,
        )
        root = NiceNode(
            kind="forget", bag=frozenset(), children=[intro2], vertex=1,
        )
        with pytest.raises(DecompositionError):
            validate_nice(root, path_graph(2))
