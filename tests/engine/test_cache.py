"""Unit tests for the LRU caches, keys, and statistics."""

from repro.engine import HomEngine, LRUCache
from repro.engine.cache import (
    EngineCache,
    pattern_key,
    restriction_key,
    target_key,
)
from repro.graphs import cycle_graph, path_graph, random_graph


class TestLRUCache:
    def test_put_get(self):
        cache = LRUCache(4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.get("b", 0) == 0

    def test_eviction_is_least_recently_used(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # refresh a; b becomes the LRU entry
        cache.put("c", 3)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        assert cache.evictions == 1

    def test_overwrite_does_not_evict(self):
        cache = LRUCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)
        assert len(cache) == 2
        assert cache.evictions == 0
        assert cache.get("a") == 10

    def test_rejects_nonpositive_size(self):
        import pytest

        with pytest.raises(ValueError):
            LRUCache(0)


class TestKeys:
    def test_isomorphic_small_patterns_share_keys(self):
        first = cycle_graph(5)
        second = first.relabelled({v: f"x{v}" for v in first.vertices()})
        assert pattern_key(first) == pattern_key(second)

    def test_non_isomorphic_patterns_differ(self):
        assert pattern_key(path_graph(4)) != pattern_key(cycle_graph(4))

    def test_large_patterns_use_label_keys(self):
        first = cycle_graph(9)
        second = first.relabelled({v: f"x{v}" for v in first.vertices()})
        assert pattern_key(first)[0] == "label"
        assert pattern_key(first) != pattern_key(second)

    def test_target_key_tracks_mutation(self):
        graph = random_graph(6, 0.5, seed=5)
        before = target_key(graph)
        mutated = graph.copy()
        mutated.add_edge(graph.vertices()[0], "fresh")
        assert target_key(mutated) != before

    def test_restriction_key(self):
        assert restriction_key(None) is None
        a = restriction_key({0: frozenset({1, 2})})
        b = restriction_key({0: frozenset({2, 1})})
        c = restriction_key({0: frozenset({1})})
        assert a == b
        assert a != c


class TestEngineCacheStats:
    def test_plan_cache_shared_across_isomorphic_patterns(self):
        engine = HomEngine()
        target = random_graph(7, 0.5, seed=9)
        pattern = cycle_graph(5)
        relabelled = pattern.relabelled(
            {v: f"y{v}" for v in pattern.vertices()},
        )
        engine.count(pattern, target)
        engine.count(relabelled, target)
        # One compilation serves both labelings; the second call is also a
        # count-cache hit because the canonical keys coincide.
        assert engine.plans_compiled == 1
        assert engine.stats.count_hits == 1

    def test_restricted_counts_do_not_share_canonical_keys(self):
        # 'allowed' is expressed in pattern labels, so two isomorphic
        # patterns with the same restriction mean different counts; the
        # canonical plan/count sharing must not apply.
        from repro.graphs import Graph, star_graph
        from repro.homs import count_homomorphisms_brute

        first = Graph(edges=[("a", "b"), ("b", "c")])   # centre b
        second = Graph(edges=[("b", "a"), ("a", "c")])  # centre a
        target = star_graph(3)
        allowed = {"a": frozenset({"y"})}  # 'y' is the star's hub
        engine = HomEngine()
        for pattern in (first, second):
            assert engine.count(pattern, target, allowed=allowed) == (
                count_homomorphisms_brute(pattern, target, allowed=allowed)
            )

    def test_lru_bound_evicts_counts(self):
        cache = EngineCache(plan_capacity=2, count_capacity=2)
        for i in range(4):
            cache.store_count(("k", i), i)
        assert cache.stats.count_evictions == 2
        assert len(cache.counts) == 2

    def test_stats_reset(self):
        engine = HomEngine()
        engine.count(path_graph(3), random_graph(5, 0.4, seed=2))
        assert engine.stats.count_requests > 0
        engine.reset_stats()
        assert engine.stats.count_requests == 0
        assert engine.plans_compiled == 0

    def test_clear_drops_plans_but_keeps_results_correct(self):
        engine = HomEngine()
        target = random_graph(6, 0.5, seed=3)
        pattern = cycle_graph(4)
        first = engine.count(pattern, target)
        engine.clear()
        assert engine.count(pattern, target) == first
        assert engine.plans_compiled == 2  # recompiled after clear
