"""Property tests: the engine agrees with the brute-force oracle, and a
warm cache is deterministic with zero recomputation."""

from hypothesis import given, settings, strategies as st

from repro.engine import HomEngine
from repro.graphs import Graph
from repro.homs import count_homomorphisms, count_homomorphisms_brute


@st.composite
def graphs(draw, max_vertices=6, min_vertices=0):
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    graph = Graph(vertices=range(n))
    possible = [(i, j) for i in range(n) for j in range(i + 1, n)]
    for edge in possible:
        if draw(st.booleans()):
            graph.add_edge(*edge)
    return graph


@given(pattern=graphs(max_vertices=5), target=graphs(max_vertices=6))
@settings(max_examples=60, deadline=None)
def test_engine_matches_brute_oracle(pattern, target):
    engine = HomEngine()
    assert engine.count(pattern, target) == count_homomorphisms_brute(
        pattern, target,
    )


@given(pattern=graphs(max_vertices=5, min_vertices=1), target=graphs(max_vertices=6))
@settings(max_examples=40, deadline=None)
def test_dispatcher_auto_matches_oracle(pattern, target):
    # The default path every caller takes: auto → shared engine.
    assert count_homomorphisms(pattern, target) == count_homomorphisms_brute(
        pattern, target,
    )


@given(pattern=graphs(max_vertices=5), target=graphs(max_vertices=6))
@settings(max_examples=40, deadline=None)
def test_warm_cache_is_deterministic_and_free(pattern, target):
    engine = HomEngine()
    first = engine.count(pattern, target)
    compiled = engine.plans_compiled
    executed = engine.counts_executed
    second = engine.count(pattern, target)
    assert second == first
    # Zero recomputation: no new plan, no plan execution, one cache hit.
    assert engine.plans_compiled == compiled
    assert engine.counts_executed == executed
    assert engine.stats.count_hits == 1


@given(
    pattern=graphs(max_vertices=4, min_vertices=1),
    target=graphs(max_vertices=5, min_vertices=1),
    data=st.data(),
)
@settings(max_examples=30, deadline=None)
def test_engine_respects_restrictions(pattern, target, data):
    target_pool = target.vertices()
    allowed = {
        v: frozenset(
            data.draw(
                st.sets(st.sampled_from(target_pool), max_size=len(target_pool)),
                label=f"allowed[{v}]",
            ),
        )
        for v in pattern.vertices()
        if data.draw(st.booleans(), label=f"restrict[{v}]")
    }
    engine = HomEngine()
    assert engine.count(pattern, target, allowed=allowed or None) == (
        count_homomorphisms_brute(pattern, target, allowed=allowed or None)
    )


@given(targets=st.lists(graphs(max_vertices=5), min_size=1, max_size=4))
@settings(max_examples=25, deadline=None)
def test_batch_columns_match_single_counts(targets):
    from repro.graphs import cycle_graph, path_graph

    patterns = [path_graph(3), cycle_graph(3)]
    engine = HomEngine()
    rows = engine.count_batch(patterns, targets)
    for i, pattern in enumerate(patterns):
        for j, target in enumerate(targets):
            assert rows[i][j] == count_homomorphisms_brute(pattern, target)
