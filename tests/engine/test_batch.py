"""Unit tests for batched evaluation and the facade's cache behaviour."""

from repro.engine import HomEngine
from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_graph,
)
from repro.homs import count_homomorphisms_brute


def _patterns():
    return [path_graph(3), cycle_graph(4), complete_graph(3), grid_graph(2, 3)]


def _targets():
    return [random_graph(6, 0.4, seed=200 + i) for i in range(5)]


class TestBatch:
    def test_matches_individual_counts(self):
        engine = HomEngine()
        patterns, targets = _patterns(), _targets()
        rows = engine.count_batch(patterns, targets)
        assert rows == [
            [count_homomorphisms_brute(p, t) for t in targets]
            for p in patterns
        ]

    def test_empty_inputs(self):
        engine = HomEngine()
        assert engine.count_batch([], _targets()) == []
        assert engine.count_batch(_patterns(), []) == [[], [], [], []]

    def test_plan_compiled_once_per_pattern(self):
        engine = HomEngine()
        engine.count_batch(_patterns(), _targets())
        assert engine.plans_compiled == len(_patterns())

    def test_warm_batch_recomputes_nothing(self):
        engine = HomEngine()
        patterns, targets = _patterns(), _targets()
        cold = engine.count_batch(patterns, targets)
        executed = engine.counts_executed
        warm = engine.count_batch(patterns, targets)
        assert warm == cold
        assert engine.counts_executed == executed

    def test_restricted_batch(self):
        engine = HomEngine()
        allowed = {0: frozenset({0, 1})}
        patterns = [path_graph(3), cycle_graph(4)]
        targets = _targets()[:2]
        rows = engine.count_batch(patterns, targets, allowed=allowed)
        assert rows == [
            [count_homomorphisms_brute(p, t, allowed=allowed) for t in targets]
            for p in patterns
        ]

    def test_pool_path_matches_sequential(self):
        sequential = HomEngine().count_batch(_patterns(), _targets())
        pooled_engine = HomEngine()
        pooled = pooled_engine.count_batch(
            _patterns(), _targets(), processes=2,
        )
        assert pooled == sequential
        # Pool results are folded back into the cache: a sequential repeat
        # is served without executing any plan.
        executed = pooled_engine.counts_executed
        assert pooled_engine.count_batch(_patterns(), _targets()) == sequential
        assert pooled_engine.counts_executed == executed

    def test_thread_pool_matches_sequential(self):
        sequential = HomEngine().count_batch(_patterns(), _targets())
        threaded_engine = HomEngine()
        threaded = threaded_engine.count_batch(
            _patterns(), _targets(), processes=2, pool="thread",
        )
        assert threaded == sequential
        executed = threaded_engine.counts_executed
        assert threaded_engine.count_batch(_patterns(), _targets()) == (
            sequential
        )
        assert threaded_engine.counts_executed == executed

    def test_pool_flavour_validated(self):
        import pytest

        with pytest.raises(ValueError):
            HomEngine().count_batch(
                _patterns(), _targets(), processes=2, pool="fibers",
            )

    def test_automatic_pool_choice_follows_kernel(self):
        from repro import kernel
        from repro.engine.batch import _pick_pool

        small = [random_graph(6, 0.3, seed=1)]
        large = [random_graph(64, 0.1, seed=2)]
        if kernel.numpy_available():
            assert _pick_pool(small) == "process"
            assert _pick_pool(large) == "thread"
        with kernel.force_backend("python"):
            assert _pick_pool(large) == "process"


class TestFacade:
    def test_hom_vector(self):
        engine = HomEngine()
        target = random_graph(7, 0.5, seed=77)
        patterns = _patterns()
        assert engine.hom_vector(patterns, target) == tuple(
            count_homomorphisms_brute(p, target) for p in patterns
        )

    def test_cached_count_never_computes(self):
        engine = HomEngine()
        pattern, target = cycle_graph(4), random_graph(6, 0.5, seed=6)
        assert engine.cached_count(pattern, target) is None
        assert engine.counts_executed == 0
        value = engine.count(pattern, target)
        assert engine.cached_count(pattern, target) == value

    def test_stats_summary_keys(self):
        engine = HomEngine()
        engine.count(path_graph(2), random_graph(4, 0.5, seed=1))
        summary = engine.stats_summary()
        for key in (
            "plan_hits",
            "count_hits",
            "count_requests",
            "plans_compiled",
            "counts_executed",
            "counts_cached",
        ):
            assert key in summary
