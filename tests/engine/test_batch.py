"""Unit tests for batched evaluation and the facade's cache behaviour."""

from repro.engine import HomEngine
from repro.graphs import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_graph,
)
from repro.homs import count_homomorphisms_brute


def _patterns():
    return [path_graph(3), cycle_graph(4), complete_graph(3), grid_graph(2, 3)]


def _targets():
    return [random_graph(6, 0.4, seed=200 + i) for i in range(5)]


class TestBatch:
    def test_matches_individual_counts(self):
        engine = HomEngine()
        patterns, targets = _patterns(), _targets()
        rows = engine.count_batch(patterns, targets)
        assert rows == [
            [count_homomorphisms_brute(p, t) for t in targets]
            for p in patterns
        ]

    def test_empty_inputs(self):
        engine = HomEngine()
        assert engine.count_batch([], _targets()) == []
        assert engine.count_batch(_patterns(), []) == [[], [], [], []]

    def test_plan_compiled_once_per_pattern(self):
        engine = HomEngine()
        engine.count_batch(_patterns(), _targets())
        assert engine.plans_compiled == len(_patterns())

    def test_warm_batch_recomputes_nothing(self):
        engine = HomEngine()
        patterns, targets = _patterns(), _targets()
        cold = engine.count_batch(patterns, targets)
        executed = engine.counts_executed
        warm = engine.count_batch(patterns, targets)
        assert warm == cold
        assert engine.counts_executed == executed

    def test_restricted_batch(self):
        engine = HomEngine()
        allowed = {0: frozenset({0, 1})}
        patterns = [path_graph(3), cycle_graph(4)]
        targets = _targets()[:2]
        rows = engine.count_batch(patterns, targets, allowed=allowed)
        assert rows == [
            [count_homomorphisms_brute(p, t, allowed=allowed) for t in targets]
            for p in patterns
        ]

    def test_pool_path_matches_sequential(self):
        sequential = HomEngine().count_batch(_patterns(), _targets())
        pooled_engine = HomEngine()
        pooled = pooled_engine.count_batch(
            _patterns(), _targets(), processes=2,
        )
        assert pooled == sequential
        # Pool results are folded back into the cache: a sequential repeat
        # is served without executing any plan.
        executed = pooled_engine.counts_executed
        assert pooled_engine.count_batch(_patterns(), _targets()) == sequential
        assert pooled_engine.counts_executed == executed

    def test_thread_pool_matches_sequential(self):
        sequential = HomEngine().count_batch(_patterns(), _targets())
        threaded_engine = HomEngine()
        threaded = threaded_engine.count_batch(
            _patterns(), _targets(), processes=2, pool="thread",
        )
        assert threaded == sequential
        executed = threaded_engine.counts_executed
        assert threaded_engine.count_batch(_patterns(), _targets()) == (
            sequential
        )
        assert threaded_engine.counts_executed == executed

    def test_pool_flavour_validated(self):
        import pytest

        with pytest.raises(ValueError):
            HomEngine().count_batch(
                _patterns(), _targets(), processes=2, pool="fibers",
            )

    def test_automatic_pool_choice_follows_kernel(self):
        from repro import kernel
        from repro.engine.batch import _pick_pool

        small = [random_graph(6, 0.3, seed=1)]
        large = [random_graph(64, 0.1, seed=2)]
        if kernel.numpy_available():
            assert _pick_pool(small) == "process"
            assert _pick_pool(large) == "thread"
        with kernel.force_backend("python"):
            assert _pick_pool(large) == "process"


class TestFacade:
    def test_hom_vector(self):
        engine = HomEngine()
        target = random_graph(7, 0.5, seed=77)
        patterns = _patterns()
        assert engine.hom_vector(patterns, target) == tuple(
            count_homomorphisms_brute(p, target) for p in patterns
        )

    def test_cached_count_never_computes(self):
        engine = HomEngine()
        pattern, target = cycle_graph(4), random_graph(6, 0.5, seed=6)
        assert engine.cached_count(pattern, target) is None
        assert engine.counts_executed == 0
        value = engine.count(pattern, target)
        assert engine.cached_count(pattern, target) == value

    def test_stats_summary_keys(self):
        engine = HomEngine()
        engine.count(path_graph(2), random_graph(4, 0.5, seed=1))
        summary = engine.stats_summary()
        for key in (
            "plan_hits",
            "count_hits",
            "count_requests",
            "plans_compiled",
            "counts_executed",
            "counts_cached",
        ):
            assert key in summary


class TestShardBatch:
    """The service executors' sharded-count path (thread pool when the
    numpy tier carries the shards)."""

    def _shards(self, count=4, size=20):
        shards = [random_graph(size, 0.25, seed=300 + i) for i in range(count)]
        shard_ids = [("shard", i) for i in range(count)]
        return shards, shard_ids

    def test_matches_oracle_and_seeds_cache(self):
        from repro.engine.batch import run_shard_batch

        engine = HomEngine()
        pattern = path_graph(3)
        shards, shard_ids = self._shards()
        total, cached = run_shard_batch(
            engine, pattern, shards, shard_ids, processes=2,
        )
        assert total == sum(
            count_homomorphisms_brute(pattern, shard) for shard in shards
        )
        assert cached is False
        # Results were seeded under the shard ids: a repeat is all-warm.
        warm_total, warm_cached = run_shard_batch(
            engine, pattern, shards, shard_ids, processes=2,
        )
        assert (warm_total, warm_cached) == (total, True)
        for shard, shard_id in zip(shards, shard_ids):
            assert engine.cached_count(
                pattern, shard, target_id=shard_id,
            ) is not None

    def test_partial_cache_mix(self):
        from repro.engine.batch import run_shard_batch

        engine = HomEngine()
        pattern = cycle_graph(4)
        shards, shard_ids = self._shards(count=3, size=8)
        # Pre-warm one shard only.
        engine.count(pattern, shards[1], target_id=shard_ids[1])
        total, cached = run_shard_batch(
            engine, pattern, shards, shard_ids, processes=2,
        )
        assert cached is False
        assert total == sum(
            count_homomorphisms_brute(pattern, shard) for shard in shards
        )

    def test_sequential_when_single_process(self):
        from repro.engine.batch import run_shard_batch

        engine = HomEngine()
        pattern = path_graph(2)
        shards, shard_ids = self._shards(count=2, size=6)
        total, cached = run_shard_batch(
            engine, pattern, shards, shard_ids, processes=1,
        )
        assert total == sum(
            count_homomorphisms_brute(pattern, shard) for shard in shards
        )
        assert cached is False

    def test_seed_counts_with_target_ids(self):
        engine = HomEngine()
        pattern = path_graph(3)
        shards, shard_ids = self._shards(count=2, size=6)
        values = [count_homomorphisms_brute(pattern, s) for s in shards]
        engine.seed_counts(pattern, shards, values, target_ids=shard_ids)
        for shard, shard_id, value in zip(shards, shard_ids, values):
            assert engine.cached_count(
                pattern, shard, target_id=shard_id,
            ) == value
        # Fingerprint-keyed lookups (no target_id) must not see them:
        # the ids are the cache key, exactly as the executors look up.
        assert engine.counts_executed == 0
