"""Unit tests for plan compilation and the treewidth-aware backend choice."""

import pytest

from repro.engine import (
    BrutePlan,
    ConstantPlan,
    DPPlan,
    MatrixPlan,
    compile_dp_plan,
    compile_plan,
    select_backend,
)
from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    random_graph,
    star_graph,
    two_triangles,
)
from repro.homs import count_homomorphisms_brute, count_homomorphisms_dp


class TestSelection:
    def test_paths_and_cycles_get_matrix_plans(self):
        for pattern in (path_graph(2), path_graph(7), cycle_graph(3), cycle_graph(9)):
            assert select_backend(pattern) == "matrix"
            assert isinstance(compile_plan(pattern), MatrixPlan)

    def test_dense_small_pattern_picks_brute(self):
        # K5 has tw = 4: the DP explores n_G^5 states anyway, so the
        # decomposition buys nothing.  The old 5-vertex cutoff got this
        # right by accident; K6 and K7 it got wrong.
        for n in (4, 5, 6, 7):
            assert select_backend(complete_graph(n)) == "brute"

    def test_sparse_large_pattern_picks_dp(self):
        # Trees and grids above the tiny limit: tw + 2 <= n.
        assert select_backend(star_graph(4)) == "dp"
        assert select_backend(grid_graph(2, 4)) == "dp"
        assert select_backend(grid_graph(3, 3)) == "dp"

    def test_tiny_patterns_stay_brute(self):
        # Edge plus isolated vertex: too small for any decomposition to pay.
        pattern = Graph(vertices=[0, 1, 2], edges=[(0, 1)])
        assert select_backend(pattern) == "brute"

    def test_disconnected_pattern_never_matrix(self):
        assert select_backend(two_triangles()) != "matrix"

    def test_empty_pattern_constant(self):
        plan = compile_plan(Graph())
        assert isinstance(plan, ConstantPlan)
        assert plan.execute(random_graph(5, 0.5, seed=1)) == 1
        assert plan.execute(Graph()) == 1


class TestPlanCorrectness:
    HOST = random_graph(9, 0.45, seed=41)

    @pytest.mark.parametrize(
        "pattern",
        [
            path_graph(1),
            path_graph(2),
            path_graph(5),
            cycle_graph(3),
            cycle_graph(6),
            complete_graph(4),
            star_graph(4),
            grid_graph(2, 3),
            two_triangles(),
        ],
        ids=lambda g: f"n{g.num_vertices()}m{g.num_edges()}",
    )
    def test_matches_brute_oracle(self, pattern):
        plan = compile_plan(pattern)
        assert plan.execute(self.HOST) == count_homomorphisms_brute(
            pattern, self.HOST,
        )

    def test_empty_target(self):
        for pattern in (path_graph(3), cycle_graph(4), grid_graph(2, 3)):
            assert compile_plan(pattern).execute(Graph()) == 0

    def test_matrix_plan_falls_back_under_restrictions(self):
        pattern = path_graph(2)
        target = cycle_graph(4)
        plan = compile_plan(pattern)
        assert isinstance(plan, MatrixPlan)
        allowed = {0: frozenset({0})}
        assert plan.execute(target, allowed=allowed) == (
            count_homomorphisms_brute(pattern, target, allowed=allowed)
        )

    def test_dp_plan_respects_restrictions(self):
        pattern = grid_graph(2, 3)
        target = random_graph(7, 0.5, seed=42)
        allowed = {(0, 0): frozenset({0, 1}), (1, 2): frozenset({2, 3, 4})}
        plan = compile_dp_plan(pattern)
        assert plan.execute(target, allowed=allowed) == (
            count_homomorphisms_brute(pattern, target, allowed=allowed)
        )


class TestDPPlanTape:
    def test_tape_matches_recomputed_dp(self):
        for seed in range(5):
            pattern = random_graph(6, 0.5, seed=seed)
            plan = compile_dp_plan(pattern)
            assert isinstance(plan, DPPlan)
            for target_seed in range(3):
                target = random_graph(7, 0.45, seed=100 + target_seed)
                assert plan.execute(target) == count_homomorphisms_dp(
                    pattern, target,
                )

    def test_width_and_nodes_recorded(self):
        plan = compile_dp_plan(grid_graph(2, 4))
        assert plan.width == 2
        assert plan.node_count == len(plan.instructions)

    def test_plan_reuse_is_stateless(self):
        plan = compile_plan(grid_graph(2, 3))
        target = random_graph(8, 0.4, seed=7)
        first = plan.execute(target)
        assert plan.execute(target) == first

    def test_describe_mentions_kind(self):
        assert "dp" in compile_dp_plan(star_graph(4)).describe()
        assert isinstance(compile_plan(complete_graph(5)), BrutePlan)
