"""Unit tests for the typed task specs: validation, identity, immutability."""

from __future__ import annotations

import pytest

from repro.api import (
    AnalyzeTask,
    AnswerCountTask,
    HomCountTask,
    KgAnswerCountTask,
    TaskBatch,
    WlDimensionTask,
)
from repro.errors import ParseError, TaskError
from repro.graphs import cycle_graph, path_graph, random_graph
from repro.kg import KnowledgeGraph, kg_query_from_triples
from repro.queries import parse_query

TEXT = "q(x1, x2) :- E(x1, y), E(x2, y)"


class TestConstruction:
    def test_hom_count_copies_pattern(self):
        pattern = cycle_graph(4)
        task = HomCountTask(pattern, path_graph(3))
        pattern.add_edge(0, 2)
        assert task.pattern.num_edges() == 4  # the chord never reached the task

    def test_hom_count_decodes_specs(self):
        task = HomCountTask({"graph6": "Cl"}, {"graph6": "D?{"})
        assert task.pattern.num_vertices() == 4

    def test_dataset_name_target(self):
        task = HomCountTask(cycle_graph(3), "hosts")
        assert task.target == "hosts"

    def test_empty_dataset_name_rejected(self):
        with pytest.raises(TaskError):
            HomCountTask(cycle_graph(3), "")

    def test_bad_pattern_rejected(self):
        with pytest.raises(TaskError):
            HomCountTask(42, cycle_graph(3))

    def test_query_text_validated_eagerly(self):
        with pytest.raises(ParseError):
            AnswerCountTask("q(x) :- R(x, y)", cycle_graph(3))
        with pytest.raises(ParseError):
            WlDimensionTask("not a query")

    def test_query_object_accepted(self):
        task = AnswerCountTask(parse_query(TEXT), cycle_graph(4))
        assert task.parsed().free_variables == parse_query(TEXT).free_variables

    def test_unknown_method_rejected(self):
        with pytest.raises(TaskError):
            AnswerCountTask(TEXT, cycle_graph(3), method="quantum")

    def test_kg_task_from_spec(self):
        query = kg_query_from_triples([("x", "likes", "z")], ["x"])
        kg = KnowledgeGraph(triples=[("a", "likes", "b")])
        task = KgAnswerCountTask(query, kg)
        assert task.target is kg
        with pytest.raises(TaskError):
            KgAnswerCountTask("not a query", kg)

    def test_batch_members_validated(self):
        inner = TaskBatch([AnalyzeTask(TEXT)])
        with pytest.raises(TaskError):
            TaskBatch([TEXT])
        with pytest.raises(TaskError):
            TaskBatch([inner])  # no nesting

    def test_batch_container_protocol(self):
        tasks = [WlDimensionTask(TEXT), AnalyzeTask(TEXT)]
        batch = TaskBatch(tasks)
        assert len(batch) == 2
        assert list(batch) == list(batch.tasks)
        assert batch[1].kind == "analyze"


class TestIdentity:
    def test_frozen(self):
        task = WlDimensionTask(TEXT)
        with pytest.raises(Exception):
            task.query = "q(x) :- E(x, y)"

    def test_equality_is_canonical(self):
        host = random_graph(6, 0.5, seed=3)
        left = HomCountTask(cycle_graph(4), host)
        right = HomCountTask({"graph6": "Cl"}, host.copy())
        assert left == right
        assert hash(left) == hash(right)
        assert left.cache_key() == right.cache_key()

    def test_distinct_specs_differ(self):
        host = random_graph(6, 0.5, seed=3)
        assert HomCountTask(cycle_graph(4), host) != HomCountTask(cycle_graph(5), host)
        assert AnswerCountTask(TEXT, host) != AnswerCountTask(
            TEXT, host, method="direct",
        )
        assert WlDimensionTask(TEXT) != AnalyzeTask(TEXT)

    def test_cache_key_is_process_independent_shape(self):
        key = AnalyzeTask(TEXT).cache_key()
        assert isinstance(key, str) and len(key) == 64  # sha256 hex

    def test_repr_mentions_shape(self):
        task = HomCountTask(cycle_graph(4), "hosts")
        assert "n4m4" in repr(task) and "hosts" in repr(task)
