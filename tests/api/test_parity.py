"""Shared parity tests: CLI ``--json``, server request handling, and
client calls all construct and consume the same canonical spec payloads.

Three assertions per verb:

1. the body the client actually POSTs is exactly ``task_to_wire(task)``;
2. the server decodes that body into an *equal* spec and re-encodes it
   byte-identically (request handling is canonical);
3. the CLI's ``--json`` stdout equals the HTTP response for the same
   inputs (response-side parity, via the shared Result rendering).
"""

from __future__ import annotations

import json

import pytest

from repro.api import (
    AnswerCountTask,
    HomCountTask,
    KgAnswerCountTask,
    WlDimensionTask,
)
from repro.cli import main
from repro.engine import set_default_engine
from repro.graphs import cycle_graph, random_graph
from repro.graphs.io import to_graph6
from repro.kg import KnowledgeGraph, kg_query_from_triples
from repro.service import BackgroundServer, ServiceClient
from repro.service.client import ServiceClient as ClientClass
from repro.service.wire import task_from_wire, task_to_wire

TEXT = "q(x1, x2) :- E(x1, y), E(x2, y)"


@pytest.fixture(autouse=True)
def _restore_default_engine():
    yield
    set_default_engine(None)


@pytest.fixture
def recording_client(monkeypatch):
    """A client whose POST bodies are captured instead of sent."""
    client = ClientClass(port=1)
    bodies = []

    def fake_post(path, payload):
        bodies.append((path, payload))
        return {
            "dataset": {}, "subscription": {}, "kind": "result",
            "task": None, "value": None, "results": [],
        }

    monkeypatch.setattr(client, "_post", fake_post)
    return client, bodies


def canonical(payload) -> str:
    return json.dumps(payload, sort_keys=True)


class TestClientSendsCanonicalSpecs:
    def test_every_verb_posts_task_to_wire(self, recording_client):
        client, bodies = recording_client
        host = random_graph(7, 0.4, seed=3)
        kg = KnowledgeGraph(
            vertices={"a": "User", "b": "Item"}, triples=[("a", "likes", "b")],
        )
        kg_query = kg_query_from_triples([("x", "likes", "y")], ["x"])

        client.count(cycle_graph(4), host)
        client.count(cycle_graph(4), "hosts")
        client.count_answers(TEXT, host)
        client.count_kg_answers(kg_query, kg)
        client.wl_dim(TEXT)
        client.analyze(TEXT)
        client.run_task(WlDimensionTask(TEXT))

        expected = [
            ("/count", HomCountTask(cycle_graph(4), host)),
            ("/count", HomCountTask(cycle_graph(4), "hosts")),
            ("/count-answers", AnswerCountTask(TEXT, host)),
            ("/count-answers", KgAnswerCountTask(kg_query, kg)),
            ("/wl-dim", WlDimensionTask(TEXT)),
            ("/analyze", WlDimensionTask(TEXT)),
            ("/task", WlDimensionTask(TEXT)),
        ]
        assert len(bodies) == len(expected)
        for (path, body), (want_path, task) in zip(bodies, expected):
            assert path == want_path
            if path == "/analyze":  # same query field, different kind
                assert body["query"] == task.query
                continue
            assert canonical(body) == canonical(task_to_wire(task))

    def test_server_decode_is_canonical(self, recording_client):
        """Request handling consumes the exact payload the client sent:
        decoding and re-encoding the body is the identity."""
        client, bodies = recording_client
        host = random_graph(7, 0.4, seed=3)
        client.count(cycle_graph(4), host)
        client.count_answers(TEXT, "hosts")
        for _, body in bodies:
            decoded = task_from_wire(body)  # what the server route runs
            assert canonical(task_to_wire(decoded)) == canonical(body)
            assert decoded == task_from_wire(task_to_wire(decoded))


class TestCliServicePayloadParity:
    def test_wl_dim_and_analyze_parity(self, capsys):
        assert main(["wl-dim", TEXT, "--json"]) == 0
        cli_wl = json.loads(capsys.readouterr().out)
        assert main(["analyze", TEXT, "--json"]) == 0
        cli_analyze = json.loads(capsys.readouterr().out)
        try:
            with BackgroundServer(workers=1) as server:
                client = ServiceClient(port=server.port)
                client.wait_ready()
                assert client.wl_dim(TEXT) == cli_wl
                assert client.analyze(TEXT) == cli_analyze
        finally:
            set_default_engine(None)

    def test_count_parity_including_task_route(self, capsys):
        host = random_graph(7, 0.4, seed=3)
        assert main(["count", TEXT, "--graph6", to_graph6(host), "--json"]) == 0
        cli_payload = json.loads(capsys.readouterr().out)
        task = AnswerCountTask(TEXT, host)
        try:
            with BackgroundServer(workers=1) as server:
                client = ServiceClient(port=server.port)
                client.wait_ready()
                verb_payload = client.count_answers(TEXT, host)
                task_payload = client.run_task(task)
        finally:
            set_default_engine(None)
        assert cli_payload == verb_payload
        # the generic route carries the same value and spec identity
        assert task_payload["kind"] == "result"
        assert task_payload["task"] == task.kind
        assert task_payload["value"] == verb_payload["count"]
        assert task_payload["backend"] == verb_payload["method"]
        assert task_payload["provenance"]["target"] == verb_payload["target"]
