"""Hypothesis property tests: every spec type round-trips byte-identically
through the wire codecs.

`task -> to_wire -> from_wire -> to_wire` must reproduce the exact
canonical JSON (sorted-key dumps compared byte for byte), and the decoded
spec must be *equal* to the original (same cache key), for every task
kind over randomly generated graphs, queries, and knowledge graphs.
"""

from __future__ import annotations

import json

from hypothesis import given, settings, strategies as st

from repro.api import (
    AnalyzeTask,
    AnswerCountTask,
    HomCountTask,
    KgAnswerCountTask,
    TaskBatch,
    WlDimensionTask,
)
from repro.graphs import Graph
from repro.kg import KnowledgeGraph, KgQuery
from repro.service.wire import task_from_wire, task_to_wire


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def graphs(draw, min_vertices: int = 0, max_vertices: int = 7):
    n = draw(st.integers(min_value=min_vertices, max_value=max_vertices))
    graph = Graph(vertices=range(n))
    if n >= 2:
        pairs = [(i, j) for i in range(n) for j in range(i + 1, n)]
        for index in draw(
            st.sets(st.integers(0, len(pairs) - 1), max_size=len(pairs)),
        ):
            graph.add_edge(*pairs[index])
    return graph


@st.composite
def query_texts(draw):
    """Random CQ text: variables v0..v5, >= 1 atom, free ⊆ used."""
    n = draw(st.integers(min_value=2, max_value=6))
    names = [f"v{i}" for i in range(n)]
    pairs = [(a, b) for i, a in enumerate(names) for b in names[i + 1:]]
    chosen = sorted(
        draw(st.sets(st.integers(0, len(pairs) - 1), min_size=1, max_size=6)),
    )
    atoms = [pairs[index] for index in chosen]
    used = sorted({v for atom in atoms for v in atom})
    free = sorted(draw(st.sets(st.sampled_from(used), max_size=len(used))))
    head = ", ".join(free)
    body = ", ".join(f"E({u}, {v})" for u, v in atoms)
    return f"q({head}) :- {body}"


@st.composite
def knowledge_graphs(draw, with_labels: bool = True):
    n = draw(st.integers(min_value=1, max_value=5))
    names = [f"e{i}" for i in range(n)]
    labels = st.sampled_from(["User", "Item", None]) if with_labels else st.none()
    kg = KnowledgeGraph(
        vertices={name: draw(labels) for name in names},
    )
    edge_labels = ["likes", "follows"]
    for _ in range(draw(st.integers(min_value=0, max_value=5))):
        source = draw(st.sampled_from(names))
        others = [name for name in names if name != source]
        if not others:
            break
        kg.add_edge(
            source,
            draw(st.sampled_from(edge_labels)),
            draw(st.sampled_from(others)),
        )
    return kg


@st.composite
def kg_queries(draw):
    m = draw(st.integers(min_value=1, max_value=3))
    variables = [f"x{i}" for i in range(m + 1)]
    pattern = KnowledgeGraph(vertices={v: None for v in variables})
    for i in range(m):
        pattern.add_edge(
            variables[i],
            draw(st.sampled_from(["likes", "follows"])),
            variables[i + 1],
        )
    free = sorted(draw(st.sets(st.sampled_from(variables), max_size=2)))
    return KgQuery(pattern, free)


def targets():
    return st.one_of(graphs(), st.sampled_from(["hosts", "shards", "big"]))


# ----------------------------------------------------------------------
# the property
# ----------------------------------------------------------------------
def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def assert_roundtrip(task):
    first = task_to_wire(task)
    decoded = task_from_wire(first)
    second = task_to_wire(decoded)
    assert canonical(first) == canonical(second)
    assert decoded == task
    assert decoded.cache_key() == task.cache_key()
    # and the wire payload is actually JSON-transportable
    assert task_to_wire(task_from_wire(json.loads(canonical(first)))) == first


class TestRoundTrips:
    @settings(max_examples=60, deadline=None)
    @given(graphs(min_vertices=1), targets())
    def test_hom_count(self, pattern, target):
        assert_roundtrip(HomCountTask(pattern, target))

    @settings(max_examples=60, deadline=None)
    @given(
        query_texts(),
        targets(),
        st.sampled_from(["auto", "direct", "interpolation"]),
    )
    def test_answer_count(self, text, target, method):
        assert_roundtrip(AnswerCountTask(text, target, method=method))

    @settings(max_examples=60, deadline=None)
    @given(
        kg_queries(),
        st.one_of(knowledge_graphs(), st.sampled_from(["taste", "kgx"])),
    )
    def test_kg_answer_count(self, query, target):
        assert_roundtrip(KgAnswerCountTask(query, target))

    @settings(max_examples=40, deadline=None)
    @given(query_texts())
    def test_wl_dimension(self, text):
        assert_roundtrip(WlDimensionTask(text))

    @settings(max_examples=40, deadline=None)
    @given(query_texts())
    def test_analyze(self, text):
        assert_roundtrip(AnalyzeTask(text))

    @settings(max_examples=25, deadline=None)
    @given(graphs(min_vertices=1), query_texts())
    def test_batch(self, pattern, text):
        batch = TaskBatch(
            [
                HomCountTask(pattern, "hosts"),
                AnswerCountTask(text, pattern),
                WlDimensionTask(text),
            ],
        )
        assert_roundtrip(batch)


class TestLargeGraphSpecs:
    def test_over_62_vertices_uses_edge_lists(self):
        graph = Graph(vertices=range(70))
        for i in range(69):
            graph.add_edge(i, i + 1)
        task = HomCountTask(Graph(vertices=[0, 1]), graph)
        payload = task_to_wire(task)
        assert "vertices" in payload["target"]
        assert_roundtrip(task)
