"""Cross-executor equivalence: one spec, three execution contexts.

The same task specs run on a :class:`LocalExecutor`, a
:class:`ServiceExecutor` (real loopback HTTP service), and a
:class:`DynamicExecutor` (maintained handles), and must return identical
values wrapped in the same :class:`Result` shape.  The dynamic executor
must additionally track target updates that the local executor sees
through the shared registry.
"""

from __future__ import annotations

import pytest

from repro.api import (
    AnalyzeTask,
    AnswerCountTask,
    DynamicExecutor,
    HomCountTask,
    KgAnswerCountTask,
    Result,
    ServiceExecutor,
    Session,
    TaskBatch,
    WlDimensionTask,
)
from repro.engine import set_default_engine
from repro.errors import TaskError
from repro.graphs import cycle_graph, path_graph, random_graph
from repro.homs.brute_force import count_homomorphisms_brute
from repro.kg import KnowledgeGraph, count_kg_answers_brute, kg_query_from_triples
from repro.queries import count_answers, parse_query
from repro.service import BackgroundServer

TEXT = "q(x1, x2) :- E(x1, y), E(x2, y)"


@pytest.fixture(autouse=True)
def _restore_default_engine():
    yield
    set_default_engine(None)


@pytest.fixture(scope="module")
def host():
    return random_graph(9, 0.4, seed=5)


@pytest.fixture(scope="module")
def taste_kg():
    return KnowledgeGraph(
        vertices={"u1": "User", "u2": "User", "m1": "Item", "m2": "Item"},
        triples=[
            ("u1", "likes", "m1"), ("u2", "likes", "m1"), ("u2", "likes", "m2"),
        ],
    )


@pytest.fixture
def kg_query():
    return kg_query_from_triples(
        [("x", "likes", "z"), ("y", "likes", "z")], ["x", "y"],
    )


def task_suite(host, kg, kg_query):
    return [
        HomCountTask(cycle_graph(4), "hosts"),
        HomCountTask(path_graph(3), host),
        AnswerCountTask(TEXT, "hosts"),
        AnswerCountTask("q() :- E(x, y)", host),
        KgAnswerCountTask(kg_query, "taste"),
        KgAnswerCountTask(kg_query, kg),
        WlDimensionTask(TEXT),
        AnalyzeTask(TEXT),
    ]


def assert_result_shape(result, task, executor_name):
    assert isinstance(result, Result)
    assert result.kind == task.kind
    assert result.executor == executor_name
    assert isinstance(result.backend, str)
    assert isinstance(result.provenance, dict)
    assert isinstance(result.elapsed_ms, float)
    assert isinstance(result.explain(), str) and task.kind in result.explain()
    if isinstance(getattr(task, "target", None), str):
        assert result.version is not None
        assert result.provenance["target"] == task.target


class TestCrossExecutorEquivalence:
    def test_same_spec_same_value_everywhere(self, host, taste_kg, kg_query):
        local = Session()
        local.register("hosts", host)
        local.register("taste", taste_kg)
        dynamic = Session(DynamicExecutor(registry=local.registry))
        tasks = task_suite(host, taste_kg, kg_query)

        # ground truth from the reference (brute) implementations
        expected = [
            count_homomorphisms_brute(cycle_graph(4), host),
            count_homomorphisms_brute(path_graph(3), host),
            count_answers(parse_query(TEXT), host),
            count_answers(parse_query("q() :- E(x, y)"), host),
            count_kg_answers_brute(kg_query, taste_kg),
            count_kg_answers_brute(kg_query, taste_kg),
            2,
            None,  # analysis dict compared across executors only
        ]

        try:
            with BackgroundServer(workers=2) as server:
                remote = Session(ServiceExecutor(port=server.port))
                remote.register("hosts", host)
                remote.register("taste", taste_kg)
                by_executor = {}
                for session, name in (
                    (local, "local"), (remote, "service"), (dynamic, "dynamic"),
                ):
                    results = [session.run(task) for task in tasks]
                    for task, result in zip(tasks, results):
                        assert_result_shape(result, task, name)
                    by_executor[name] = [result.value for result in results]
        finally:
            dynamic.close()

        assert by_executor["local"] == by_executor["service"] == by_executor["dynamic"]
        for value, want in zip(by_executor["local"], expected):
            if want is not None:
                assert value == want

    def test_dynamic_tracks_updates_local_recomputes(self, host):
        local = Session()
        local.register("hosts", host)
        dynamic = Session(DynamicExecutor(registry=local.registry))
        task = HomCountTask(cycle_graph(4), "hosts")
        try:
            before = dynamic.run(task)
            assert before.value == local.run(task).value
            assert before.backend == "maintained/initial"

            missing = [
                (u, v)
                for u in host.vertices()
                for v in host.vertices()
                if u < v and not host.has_edge(u, v)
            ]
            version = local.update("hosts", add_edges=[missing[0]])
            after = dynamic.run(task)
            assert after.version == version
            assert after.value == local.run(task).value
            assert after.backend in (
                "maintained/delta", "maintained/recompute",
            )
        finally:
            dynamic.close()

    def test_batches_and_misuse(self, host):
        session = Session()
        batch = TaskBatch([
            HomCountTask(cycle_graph(3), host),
            WlDimensionTask(TEXT),
        ])
        values = [result.value for result in session.run_batch(batch)]
        assert values == [
            count_homomorphisms_brute(cycle_graph(3), host), 2,
        ]
        # iterables of specs are wrapped transparently
        assert [
            r.value for r in session.run_batch(iter(batch.tasks))
        ] == values
        with pytest.raises(TaskError):
            session.run(batch)

    def test_service_executor_batch(self, host):
        batch = TaskBatch([
            HomCountTask(cycle_graph(3), host),
            AnswerCountTask(TEXT, host),
        ])
        local_values = [r.value for r in Session().run_batch(batch)]
        try:
            with BackgroundServer(workers=2) as server:
                remote = Session(ServiceExecutor(port=server.port))
                results = remote.run_batch(batch)
                assert [r.value for r in results] == local_values
                assert all(r.executor == "service" for r in results)
        finally:
            set_default_engine(None)

    def test_local_warm_cache_provenance(self, host):
        session = Session()
        task = HomCountTask(cycle_graph(4), host)
        cold = session.run(task)
        warm = session.run(task)
        assert cold.value == warm.value
        assert cold.cached is False and warm.cached is True

    def test_using_rebinds_the_registry(self, host):
        local = Session()
        local.register("hosts", host)
        live = local.using(DynamicExecutor())  # no registry= needed
        task = HomCountTask(cycle_graph(4), "hosts")
        try:
            assert live.run(task).value == local.run(task).value
            assert live.registry is local.registry
            assert live.executor.registry is local.registry
        finally:
            live.close()

    def test_executor_plus_registry_rejected(self):
        with pytest.raises(TaskError):
            Session(executor=DynamicExecutor(), registry=Session().registry)

    def test_using_rejects_populated_executors(self, host):
        occupied = DynamicExecutor()
        occupied.registry.register_graph("mine", host)
        with pytest.raises(TaskError):
            Session().using(occupied)  # would strand 'mine'
