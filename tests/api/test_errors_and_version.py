"""Structured error payloads, stable error codes, and the --version flag."""

from __future__ import annotations

import subprocess
import sys

import pytest

import repro
from repro.engine import EngineCache, set_default_engine
from repro.errors import (
    EngineError,
    GraphError,
    ReproError,
    ServiceError,
    UpdateError,
)
from repro.graphs import cycle_graph, random_graph
from repro.service import BackgroundServer, ServiceClient


@pytest.fixture(autouse=True)
def _restore_default_engine():
    yield
    set_default_engine(None)


class TestErrorRouting:
    def test_engine_errors_stay_value_errors(self):
        with pytest.raises(EngineError):
            EngineCache(plan_capacity=0)
        with pytest.raises(ValueError):  # historical contract preserved
            EngineCache(plan_capacity=0)
        from repro.homs import count_homomorphisms

        with pytest.raises(EngineError):
            count_homomorphisms(cycle_graph(3), cycle_graph(3), method="magic")

    def test_update_errors_stay_graph_errors(self):
        from repro.dynamic import DynamicGraph, MaintainedCount

        with pytest.raises(UpdateError):
            DynamicGraph(cycle_graph(3), history_limit=1)
        assert issubclass(UpdateError, GraphError)
        assert issubclass(UpdateError, ValueError)
        dynamic = DynamicGraph(cycle_graph(4))
        with pytest.raises(UpdateError):
            MaintainedCount(cycle_graph(3), dynamic, mode="psychic")
        with pytest.raises(UpdateError):
            dynamic.rollback()  # no retained version yet

    def test_scheduler_config_errors(self):
        from repro.service import RequestScheduler

        with pytest.raises(ServiceError):
            RequestScheduler(workers=0)
        with pytest.raises(ServiceError):
            RequestScheduler(max_queue=0)

    def test_stable_codes(self):
        from repro.errors import ParseError, QueryError, TaskError
        from repro.service.registry import (
            DatasetKindError,
            DatasetNameError,
            RegistryError,
        )
        from repro.service.wire import WireError

        assert EngineError("x").code == "engine-error"
        assert ServiceError("x").code == "service-error"
        assert UpdateError("x").code == "update-rejected"
        assert TaskError("x").code == "bad-task"
        assert WireError("x").code == "bad-request"
        assert QueryError("x").code == "bad-query"
        assert ParseError("x").code == "parse-error"
        assert ReproError("x").code == "repro-error"
        assert RegistryError("x").code == "unknown-dataset"
        assert DatasetKindError("x").code == "wrong-dataset-kind"
        assert DatasetNameError("x").code == "bad-dataset-name"


class TestHttpErrorPayloads:
    def test_codes_reach_the_client(self):
        with BackgroundServer(workers=1) as server:
            client = ServiceClient(port=server.port)

            with pytest.raises(ServiceError) as excinfo:
                client.request("POST", "/count", {"pattern": {"graph6": "Cl"}})
            assert excinfo.value.status == 400
            assert excinfo.value.code == "bad-request"

            with pytest.raises(ServiceError) as excinfo:
                client.count(cycle_graph(3), "nope")
            assert excinfo.value.status == 404
            assert excinfo.value.code == "unknown-dataset"

            from repro.kg import KnowledgeGraph

            client.register_kg(
                "akg", KnowledgeGraph(triples=[("a", "likes", "b")]),
            )
            with pytest.raises(ServiceError) as excinfo:
                client.count(cycle_graph(3), "akg")  # KG dataset, graph verb
            assert excinfo.value.status == 404
            assert excinfo.value.code == "wrong-dataset-kind"

            with pytest.raises(ServiceError) as excinfo:
                client.request("POST", "/frobnicate", {})
            assert excinfo.value.status == 404
            assert excinfo.value.code == "unknown-route"

            with pytest.raises(ServiceError) as excinfo:
                client.request(
                    "POST", "/count-answers",
                    {"query": "q(x) :- R(x, y)", "target": {"graph6": "Cl"}},
                )
            assert excinfo.value.status == 400
            assert excinfo.value.code == "parse-error"

            with pytest.raises(ServiceError) as excinfo:
                client.request("POST", "/task", {"task": "frobnicate"})
            assert excinfo.value.status == 400
            assert excinfo.value.code == "bad-request"

    def test_error_payload_shape(self):
        with BackgroundServer(workers=1) as server:
            client = ServiceClient(port=server.port)
            payload = client.request("GET", "/health")
            # kind/status are byte-compatible with the pre-health-layer
            # stub; probes/reasons are the additive aggregated verdict.
            assert payload["kind"] == "health"
            assert payload["status"] == "ok"
            assert all(
                probe["status"] == "ok"
                for probe in payload["probes"].values()
            )
            assert payload["reasons"] == {}
            # raw transport-level check of the structured error shape
            import http.client
            import json

            connection = http.client.HTTPConnection("127.0.0.1", server.port)
            connection.request(
                "POST", "/count", body=b"[]",
                headers={"Content-Type": "application/json"},
            )
            response = connection.getresponse()
            body = json.loads(response.read())
            connection.close()
            assert response.status == 400
            assert body["kind"] == "error"
            assert body["code"] == "bad-request"
            assert "error" in body

    def test_client_side_validation_mirrors_400(self):
        client = ServiceClient(port=1)  # nothing listening: never reached
        with pytest.raises(ServiceError) as excinfo:
            client.count_answers("q(x) :- R(x, y)", cycle_graph(4))
        assert excinfo.value.status == 400
        assert excinfo.value.code == "parse-error"


class TestVersionFlag:
    def test_version_flag_prints_package_version(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert capsys.readouterr().out.strip() == f"repro {repro.__version__}"

    def test_version_flag_subprocess(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.cli", "--version"],
            capture_output=True,
            text=True,
            check=True,
        )
        assert completed.stdout.strip() == f"repro {repro.__version__}"


def test_shims_share_one_route():
    """The legacy count_* entry points and the task API agree exactly."""
    from repro import HomCountTask, Session, count_homomorphisms
    from repro.homs.brute_force import count_homomorphisms_brute

    pattern, host = cycle_graph(4), random_graph(8, 0.4, seed=9)
    via_shim = count_homomorphisms(pattern, host)
    via_task = Session().run(HomCountTask(pattern, host)).value
    assert via_shim == via_task == count_homomorphisms_brute(pattern, host)
