"""Regression lockfile: the concrete numbers this reproduction derives.

The paper proves inequalities and equalities; our constructions realise
them with specific values.  These tests pin those values so any behavioural
drift in the pipeline (CFI sizes, coloured gaps, clone separations, the
Observation 62 products) is caught immediately.  Every number here was
derived by the library and cross-validated by at least two independent
code paths in the rest of the suite.
"""

from repro.cfi import cfi_graph, cfi_size
from repro.core import verify_lower_bound
from repro.core.dominating import count_dominating_sets_brute
from repro.graphs import complete_bipartite_graph, complete_graph, six_cycle, two_triangles
from repro.homs import count_homomorphisms
from repro.queries import count_answers, star_query


class TestCfiSizes:
    def test_chi_sizes(self):
        assert cfi_size(complete_graph(3)) == 6
        assert cfi_size(complete_graph(4)) == 16
        assert cfi_size(complete_bipartite_graph(2, 3)) == 14
        assert cfi_size(complete_bipartite_graph(3, 3)) == 24

    def test_hom_gap_values(self):
        """|Hom(F, χ(F,∅))| vs twisted — Theorem 32's strict gaps."""
        k23 = complete_bipartite_graph(2, 3)
        assert count_homomorphisms(k23, cfi_graph(k23)) == 1056
        assert count_homomorphisms(k23, cfi_graph(k23, (("L", 0),))) == 1008
        k4 = complete_graph(4)
        assert count_homomorphisms(k4, cfi_graph(k4)) == 192
        assert count_homomorphisms(k4, cfi_graph(k4, (0,))) == 0


class TestLowerBoundNumbers:
    def test_star2_pipeline_numbers(self):
        report = verify_lower_bound(star_query(2), max_multiplicity=1)
        assert report.cp_answers == (16, 12)
        assert report.extendable == (16, 12)
        assert report.clone_separation == ((1, 1), 94, 86)

    def test_star3_pipeline_numbers(self):
        report = verify_lower_bound(star_query(3), max_multiplicity=1)
        assert report.cp_answers == (64, 48)
        assert report.clone_separation == ((1, 1, 1), 3312, 3120)


class TestObservation62Numbers:
    def test_products(self):
        """Base 6, ×2 per weight-0 edge, ×3 per positive weight."""
        host = two_triangles()
        assert count_answers(star_query(2), host) == 18       # 6·3
        assert count_answers(star_query(3), host) == 42
        assert count_answers(star_query(2), six_cycle()) == 18

    def test_dominating_numbers(self):
        assert count_dominating_sets_brute(two_triangles(), 2) == 9
        assert count_dominating_sets_brute(six_cycle(), 2) == 3
