"""Integration tests for the paper's corollaries and observations."""

import pytest

from repro.cfi import cfi_pair
from repro.core import (
    count_dominating_sets_brute,
    count_dominating_sets_via_stars,
    dominating_set_wl_dimension,
    query_battery,
    separating_query,
    star_injective_quantum,
)
from repro.graphs import (
    complete_graph,
    path_graph,
    random_graph,
    six_cycle,
    two_triangles,
)
from repro.queries import (
    ConjunctiveQuery,
    count_answers,
    query_from_atoms,
    star_query,
)
from repro.wl import k_wl_equivalent


class TestObservation62:
    """Connected acyclic conjunctive queries cannot separate 2K3 from C6."""

    ACYCLIC_QUERIES = [
        star_query(2),
        star_query(3),
        star_query(4),
        query_from_atoms([("x1", "y"), ("y", "x2")], ["x1", "x2"]),
        query_from_atoms(
            [("x1", "y1"), ("y1", "y2"), ("y2", "x2")], ["x1", "x2"],
        ),
        query_from_atoms([("x1", "x2"), ("x2", "y")], ["x1", "x2"]),
        query_from_atoms(
            [("x1", "y1"), ("y1", "x2"), ("x2", "y2"), ("y2", "x3")],
            ["x1", "x2", "x3"],
        ),
        ConjunctiveQuery(path_graph(4), [0, 1, 2, 3]),
    ]

    @pytest.mark.parametrize(
        "query", ACYCLIC_QUERIES,
        ids=[f"q{i}" for i in range(len(ACYCLIC_QUERIES))],
    )
    def test_acyclic_queries_agree(self, query):
        assert count_answers(query, two_triangles()) == (
            count_answers(query, six_cycle())
        )

    def test_observation62_closed_form(self):
        """The proof's induction: single free variable gives 6; each tree
        edge multiplies by 2 (weight 0) or 3 (weight > 0)."""
        # ϕ(x1, x2) = E(x1, x2): weight-0 edge → 6·2 = 12.
        q = query_from_atoms([("x1", "x2")], ["x1", "x2"])
        assert count_answers(q, two_triangles()) == 12
        # ϕ(x1, x2) = ∃y: E(x1,y) ∧ E(y,x2): weight-1 edge → 6·3 = 18.
        q = star_query(2)
        assert count_answers(q, two_triangles()) == 18

    def test_triangle_query_separates(self):
        """Corollary 61's flip side: a cyclic (sew 2) query separates."""
        triangle = ConjunctiveQuery(complete_graph(3), [0, 1, 2])
        assert count_answers(triangle, two_triangles()) != (
            count_answers(triangle, six_cycle())
        )


class TestCorollary2:
    """k-WL-equivalence ⇔ Ψ_k-indistinguishability (on finite batteries)."""

    def test_forward_k1(self):
        battery = query_battery(1, max_vertices=4)
        assert all(
            count_answers(q, two_triangles()) == count_answers(q, six_cycle())
            for q in battery
        )

    def test_backward_k2(self):
        """Not 2-WL-equivalent ⇒ some sew ≤ 2 query separates."""
        assert not k_wl_equivalent(two_triangles(), six_cycle(), 2)
        battery = query_battery(2, max_vertices=3)
        assert separating_query(two_triangles(), six_cycle(), battery) is not None

    def test_forward_k2_on_cfi(self):
        pair = cfi_pair(complete_graph(4))
        battery = query_battery(2, max_vertices=3)
        for q in battery:
            assert count_answers(q, pair.untwisted) == (
                count_answers(q, pair.twisted)
            )


class TestCorollary6:
    """WL-dimension of counting size-k dominating sets = k."""

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_dimension(self, k):
        assert dominating_set_wl_dimension(k) == k

    @pytest.mark.parametrize("seed", range(3))
    def test_identity_randomised(self, seed):
        g = random_graph(8, 0.4, seed=seed)
        for k in (1, 2):
            assert count_dominating_sets_brute(g, k) == (
                count_dominating_sets_via_stars(g, k)
            )

    def test_dominating_respects_wl_level(self):
        """|Δ_2| agrees on the 2-WL-equivalent χ(K4) pair (upper bound)."""
        pair = cfi_pair(complete_graph(4))
        assert count_dominating_sets_brute(pair.untwisted, 2) == (
            count_dominating_sets_brute(pair.twisted, 2)
        )

    def test_dominating_separates_below(self):
        """|Δ_2| distinguishes some 1-WL-equivalent pair: stars' clone
        machinery gives one; here the classical 2K3/C6 pair suffices."""
        assert count_dominating_sets_brute(two_triangles(), 2) != (
            count_dominating_sets_brute(six_cycle(), 2)
        )


class TestCorollary5:
    """WL-dimension of a quantum query = hsew."""

    def test_star_expansion_dimension(self):
        for k in (2, 3):
            assert star_injective_quantum(k).wl_dimension() == k

    def test_quantum_upper_bound_on_cfi(self):
        """hsew ≤ 2 quantum queries agree on the 2-WL-equivalent pair."""
        pair = cfi_pair(complete_graph(4))
        quantum = star_injective_quantum(2)
        assert quantum.count_answers(pair.untwisted) == (
            quantum.count_answers(pair.twisted)
        )

    def test_quantum_cannot_separate_acyclic_blind_pair(self):
        """On 2K3/C6 themselves the star expansion is *blind* — its
        constituents are acyclic (Observation 62)."""
        quantum = star_injective_quantum(2)
        assert quantum.count_answers(two_triangles()) == (
            quantum.count_answers(six_cycle())
        )

    def test_quantum_lower_bound_witness(self):
        """An hsew-2 quantum query separates some 1-WL-equivalent pair:
        the complements of 2K3/C6 (1-WL-equivalence is complement-closed,
        and the dominating-set identity transfers the |Δ₂| gap)."""
        from repro.graphs import complement
        from repro.wl import wl_1_equivalent

        first = complement(two_triangles())
        second = complement(six_cycle())
        assert wl_1_equivalent(first, second)
        quantum = star_injective_quantum(2)
        assert quantum.count_answers(first) != quantum.count_answers(second)
