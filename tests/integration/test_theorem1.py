"""Integration test of Theorem 1: WL-dimension = sew, verified end-to-end.

For each query in a battery we check *both* directions computationally:

* upper bound (Theorem 21): on pairs guaranteed k-WL-equivalent with
  k = sew (CFI pairs over treewidth-(k+1) hosts), the answer counts agree;
* lower bound (Theorem 24): the Section-4 witness pair is
  (k−1)-WL-equivalent yet separated — in colour-prescribed counts always,
  and in plain counts after clone search.
"""

import pytest

from repro.cfi import cfi_pair
from repro.core import verify_lower_bound, wl_dimension
from repro.graphs import complete_graph
from repro.queries import (
    count_answers,
    path_endpoints_query,
    quantified_star_size,
    query_from_atoms,
    semantic_extension_width,
    star_query,
    star_with_redundant_path,
)
from repro.treewidth import treewidth


BATTERY = [
    # (query factory, expected sew)
    (lambda: star_query(2), 2),
    (lambda: star_query(3), 3),
    (lambda: path_endpoints_query(1), 2),
    (lambda: path_endpoints_query(2), 2),
    (lambda: star_with_redundant_path(2), 2),
    (
        lambda: query_from_atoms(
            [("x1", "y1"), ("x2", "y1"), ("x2", "y2"), ("x3", "y2")],
            ["x1", "x2", "x3"],
        ),
        2,
    ),
]


@pytest.mark.parametrize(
    "factory,expected", BATTERY,
    ids=["S2", "S3", "P1", "P2", "S2+tail", "two-islands"],
)
def test_wl_dimension_values(factory, expected):
    assert wl_dimension(factory()) == expected


@pytest.mark.parametrize(
    "factory,expected",
    [item for item in BATTERY if item[1] == 2],
    ids=["S2", "P1", "P2", "S2+tail", "two-islands"],
)
def test_lower_bound_pipeline(factory, expected):
    """Full Section-4 verification for every width-2 battery query."""
    report = verify_lower_bound(factory(), max_multiplicity=2)
    assert report.all_checks_pass
    assert report.witness.width == expected


def test_upper_bound_on_cfi_pair():
    """Queries of sew ≤ 2 cannot separate a 2-WL-equivalent pair
    (χ(K4, ∅), χ(K4, {w})) — Theorem 21 in action."""
    pair = cfi_pair(complete_graph(4))
    for factory, expected in BATTERY:
        if expected > 2:
            continue
        query = factory()
        assert count_answers(query, pair.untwisted) == (
            count_answers(query, pair.twisted)
        ), f"{query!r} violated the upper bound"


def test_sew_combines_treewidth_and_star_size():
    """The paper's informal description: sew is 'a combination of the
    treewidth and the quantified star size'.  Check the two generic
    inequalities on the battery."""
    for factory, _ in BATTERY:
        query = factory()
        sew = semantic_extension_width(query)
        assert sew >= treewidth(query.graph) - query.num_variables()  # trivial
        assert sew >= min(
            quantified_star_size(query) - 1, sew,
        )


def test_star3_full_lower_bound():
    """The complete Theorem 24 pipeline at width 3: the χ(K_{3,3}) pair is
    2-WL-equivalent (folklore 2-WL on 24+24 vertices), has the strict
    coloured gap 64 > 48, and separates in plain counts at z = (1,1,1)."""
    report = verify_lower_bound(star_query(3), max_multiplicity=1)
    assert report.witness.width == 3
    assert report.cp_answers == (64, 48)
    assert report.all_checks_pass
    assert report.clone_separation is not None
    _, first, second = report.clone_separation
    assert first != second
