"""Unit tests for quantified star size and the query families."""

import pytest

from repro.errors import QueryError
from repro.queries import (
    boolean_query_from_graph,
    clique_query,
    cycle_query,
    double_star_query,
    extension_width,
    full_query_from_graph,
    path_endpoints_query,
    path_query,
    quantified_star_size,
    random_query,
    semantic_quantified_star_size,
    star_query,
    star_size_lower_bound_on_ew,
    star_with_redundant_path,
)
from repro.graphs import complete_graph


class TestStarSize:
    def test_star_query_star_size(self):
        for k in (1, 2, 3, 4):
            assert quantified_star_size(star_query(k)) == k

    def test_full_query_star_size_zero(self):
        assert quantified_star_size(full_query_from_graph(complete_graph(3))) == 0

    def test_path_endpoints_star_size(self):
        assert quantified_star_size(path_endpoints_query(2)) == 2

    def test_double_star_size(self):
        assert quantified_star_size(double_star_query(2, 3)) == 5

    def test_semantic_star_size_of_redundant(self):
        q = star_with_redundant_path(3)
        assert semantic_quantified_star_size(q) == 3

    def test_lower_bound_relation(self):
        """ew ≥ star size − 1 (attachment sets are Γ-cliques)."""
        for q in (
            star_query(3),
            double_star_query(2, 2),
            path_endpoints_query(1),
            clique_query(3, 2),
        ):
            assert extension_width(q) >= star_size_lower_bound_on_ew(q)


class TestFamilies:
    def test_path_query_shapes(self):
        q = path_query(5, 2)
        assert q.num_variables() == 5
        assert len(q.free_variables) == 2
        assert q.is_connected()

    def test_path_query_bounds(self):
        with pytest.raises(QueryError):
            path_query(3, 5)

    def test_cycle_query(self):
        q = cycle_query(5, 2)
        assert q.num_atoms() == 5
        with pytest.raises(QueryError):
            cycle_query(2, 1)

    def test_clique_query(self):
        q = clique_query(4, 2)
        assert q.num_atoms() == 6
        with pytest.raises(QueryError):
            clique_query(3, 4)

    def test_star_validation(self):
        with pytest.raises(QueryError):
            star_query(0)

    def test_boolean_and_full_helpers(self):
        g = complete_graph(3)
        assert boolean_query_from_graph(g).is_boolean()
        assert full_query_from_graph(g).is_full()

    def test_random_query_deterministic(self):
        a = random_query(6, 3, 0.3, seed=5)
        b = random_query(6, 3, 0.3, seed=5)
        assert a == b
        assert a.is_connected()
        assert len(a.free_variables) == 3

    def test_random_query_bounds(self):
        with pytest.raises(QueryError):
            random_query(3, 4, 0.5)

    def test_double_star_structure(self):
        q = double_star_query(2, 3)
        assert len(q.free_variables) == 5
        assert len(q.quantified_variables) == 2
        assert q.is_connected()
