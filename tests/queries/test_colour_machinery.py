"""Unit tests for the γ/π₁ colouring helpers used by Section 4."""

from repro.cfi import cfi_graph
from repro.homs import is_colouring
from repro.queries import (
    answers_of_gamma_colouring,
    count_answers_tau,
    ell_copy,
    gamma_pi_colouring,
    star_query,
)


class TestGammaPiColouring:
    def test_observation39_h_colouring(self):
        """γ(π₁(·)) is an H-colouring of χ(F_ℓ, W) (Observation 39)."""
        query = star_query(2)
        f_graph, _ = ell_copy(query, 3)
        for twist in ((), ("x1",)):
            cfi = cfi_graph(f_graph, twist)
            colouring = gamma_pi_colouring(query, 3, cfi)
            assert is_colouring(cfi, query.graph, colouring)

    def test_colouring_fixes_free_variables(self):
        query = star_query(2)
        f_graph, _ = ell_copy(query, 3)
        cfi = cfi_graph(f_graph)
        colouring = gamma_pi_colouring(query, 3, cfi)
        for vertex in cfi.vertices():
            base = vertex[0]
            if base in query.free_variables:
                assert colouring[vertex] == base
            else:
                # Clones (y, i) map back to y.
                assert colouring[vertex] == base[0]


class TestAnswersOfGammaColouring:
    def test_f_colouring_form_matches_composed(self):
        """Definition 36's second form (F-colouring read through γ) equals
        the first form with the composed H-colouring."""
        query = star_query(2)
        ell = 3
        f_graph, gamma = ell_copy(query, ell)
        cfi = cfi_graph(f_graph)
        pi1 = {v: v[0] for v in cfi.vertices()}
        tau = {x: x for x in query.free_variables}

        via_f_colouring = answers_of_gamma_colouring(query, cfi, pi1, ell, tau)
        composed = {v: gamma[pi1[v]] for v in cfi.vertices()}
        via_h_colouring = count_answers_tau(query, cfi, composed, tau)
        assert via_f_colouring == via_h_colouring
