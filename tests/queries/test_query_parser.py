"""Unit tests for the query model and the textual parser."""

import pytest

from repro.errors import ParseError, QueryError
from repro.graphs import Graph, path_graph
from repro.queries import (
    ConjunctiveQuery,
    all_sub_queries_on_induced_subsets,
    format_query,
    parse_query,
    query_from_atoms,
    relabel_query,
    star_query,
)


class TestQueryModel:
    def test_basic_properties(self):
        q = star_query(3)
        assert q.num_variables() == 4
        assert q.num_atoms() == 3
        assert q.free_variables == frozenset({"x1", "x2", "x3"})
        assert q.quantified_variables == frozenset({"y"})
        assert q.is_connected()
        assert not q.is_full()
        assert not q.is_boolean()

    def test_free_variables_must_exist(self):
        with pytest.raises(QueryError):
            ConjunctiveQuery(path_graph(2), ["missing"])

    def test_full_query(self):
        q = ConjunctiveQuery(path_graph(3), [0, 1, 2])
        assert q.is_full()
        assert q.quantified_variables == frozenset()

    def test_boolean_query(self):
        q = ConjunctiveQuery(path_graph(3), [])
        assert q.is_boolean()

    def test_quantified_components(self):
        # x free; two separate quantified islands.
        q = query_from_atoms([("x", "y1"), ("x", "y2")], ["x"])
        components = q.quantified_components()
        assert sorted(map(sorted, components)) == [["y1"], ["y2"]]

    def test_component_attachment(self):
        q = star_query(2)
        (component,) = q.quantified_components()
        assert q.component_attachment(component) == frozenset({"x1", "x2"})

    def test_isomorphism_respects_free_set(self):
        # Same graph (P3), different free sets: end vs middle.
        end_free = ConjunctiveQuery(path_graph(3), [0])
        mid_free = ConjunctiveQuery(path_graph(3), [1])
        other_end = ConjunctiveQuery(path_graph(3), [2])
        assert end_free.is_isomorphic_to(other_end)
        assert not end_free.is_isomorphic_to(mid_free)

    def test_equality_and_hash_by_canonical_form(self):
        a = star_query(2)
        b = relabel_query(a, {"x1": "u", "x2": "v", "y": "c"})
        assert a == b
        assert hash(a) == hash(b)
        assert a != star_query(3)

    def test_partial_automorphisms_star(self):
        """Aut(S_k, X_k) = all k! permutations of the leaves."""
        q = star_query(3)
        assert len(q.partial_automorphisms()) == 6

    def test_partial_automorphisms_asymmetric(self):
        # Path v1-v2-v3 with v1 free only: only the identity on X.
        q = query_from_atoms([("v1", "v2"), ("v2", "v3")], ["v1"])
        assert q.partial_automorphisms() == [{"v1": "v1"}]

    def test_to_logic_string(self):
        text = star_query(2).to_logic_string()
        assert "∃" in text and "E(" in text

    def test_sub_queries_enumeration(self):
        q = star_query(2)
        subs = list(all_sub_queries_on_induced_subsets(q))
        # Y = {y}: subsets {} and {y} → two candidates.
        assert len(subs) == 2

    def test_isolated_free_variable_allowed(self):
        g = Graph(vertices=["x"])
        q = ConjunctiveQuery(g, ["x"])
        assert q.num_atoms() == 0


class TestParser:
    def test_datalog_style(self):
        q = parse_query("q(x1, x2) :- E(x1, y), E(x2, y)")
        assert q == star_query(2)

    def test_logic_style(self):
        q = parse_query("(x1, x2) exists y : E(x1, y) & E(x2, y)")
        assert q == star_query(2)

    def test_logic_style_unicode(self):
        q = parse_query("(x1, x2) ∃ y : E(x1, y) ∧ E(x2, y)")
        assert q == star_query(2)

    def test_edge_relation_alias(self):
        q = parse_query("q(a, b) :- edge(a, b)")
        assert q.is_full()
        assert q.num_atoms() == 1

    def test_no_quantifier_needed_for_full(self):
        q = parse_query("(a, b) E(a, b)")
        assert q.is_full()

    def test_self_loop_atom_rejected(self):
        with pytest.raises(ParseError):
            parse_query("q(x) :- E(x, x)")

    def test_unknown_relation_rejected(self):
        with pytest.raises(ParseError):
            parse_query("q(x) :- R(x, y)")

    def test_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("q(x) :- E(x, y) whatever")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_query("   ")

    def test_undeclared_variable_rejected(self):
        with pytest.raises(ParseError):
            parse_query("(x) exists y : E(x, y), E(y, z)")

    def test_isolated_free_variable(self):
        q = parse_query("q(x, z) :- E(x, y)")
        assert "z" in q.free_variables
        assert q.graph.degree("z") == 0

    def test_round_trip_datalog(self):
        q = star_query(3)
        assert parse_query(format_query(q, style="datalog")) == q

    def test_format_unknown_style(self):
        with pytest.raises(ValueError):
            format_query(star_query(1), style="sql")
