"""Unit tests for Γ(H,X), extension width, sew, and ℓ-copies."""

import pytest

from repro.graphs import are_isomorphic, complete_graph
from repro.queries import (
    ConjunctiveQuery,
    clique_query,
    contract_graph,
    cycle_query,
    double_star_query,
    ell_copy,
    extension_graph,
    extension_width,
    extension_width_via_ell_copies,
    full_query_from_graph,
    gamma_map,
    path_endpoints_query,
    path_query,
    query_from_atoms,
    saturating_odd_ell,
    semantic_extension_width,
    star_query,
    star_with_redundant_path,
)
from repro.treewidth import treewidth


class TestExtensionGraph:
    def test_star_extension_is_clique(self):
        """Γ(S_k, X_k) = K_{k+1} (the paper's running example)."""
        for k in (2, 3, 4):
            gamma = extension_graph(star_query(k))
            assert are_isomorphic(gamma, complete_graph(k + 1))

    def test_full_query_extension_is_self(self):
        q = full_query_from_graph(complete_graph(3))
        assert extension_graph(q) == q.graph

    def test_extension_adds_no_edge_for_single_attachment(self):
        # x - y: one component attached to one free variable; no new edges.
        q = query_from_atoms([("x", "y")], ["x"])
        assert extension_graph(q).num_edges() == 1

    def test_two_components_separate_cliques(self):
        # y1 adjacent to x1, x2; y2 adjacent to x2, x3: edges x1x2 and x2x3.
        q = query_from_atoms(
            [("x1", "y1"), ("x2", "y1"), ("x2", "y2"), ("x3", "y2")],
            ["x1", "x2", "x3"],
        )
        gamma = extension_graph(q)
        assert gamma.has_edge("x1", "x2")
        assert gamma.has_edge("x2", "x3")
        assert not gamma.has_edge("x1", "x3")

    def test_contract_graph(self):
        q = star_query(3)
        contract = contract_graph(q)
        assert are_isomorphic(contract, complete_graph(3))


class TestExtensionWidth:
    def test_star_widths(self):
        for k in (1, 2, 3, 4):
            assert extension_width(star_query(k)) == max(k, 1)

    def test_full_query_width_is_treewidth(self):
        q = full_query_from_graph(complete_graph(4))
        assert extension_width(q) == 3

    def test_path_endpoints_width(self):
        # Two free endpoints joined through quantified path: Γ adds the edge
        # x1-x2 → a cycle of length internal+2? No: Γ = path + chord; tw 2
        # for internal >= 2, else tw 1 (triangle for internal=1 → tw 2).
        assert extension_width(path_endpoints_query(1)) == 2
        assert extension_width(path_endpoints_query(2)) == 2

    def test_double_star_width(self):
        # One H[Y] component {yL, yR} attached to all leaves: clique on all
        # free variables plus the two centres hanging in.
        q = double_star_query(2, 2)
        assert extension_width(q) == 4

    def test_cycle_query_full(self):
        q = cycle_query(5, 5)
        assert extension_width(q) == 2


class TestSemanticExtensionWidth:
    def test_sew_equals_ew_for_minimal(self):
        for k in (2, 3):
            q = star_query(k)
            assert semantic_extension_width(q) == extension_width(q) == k

    def test_sew_ignores_redundant_parts(self):
        """A star with a foldable quantified tail: same sew as the star."""
        q = star_with_redundant_path(2, tail=2)
        assert semantic_extension_width(q) == 2

    def test_sew_leq_ew(self):
        for q in (star_query(2), path_query(4, 2), clique_query(3, 2)):
            assert semantic_extension_width(q) <= extension_width(q)


class TestEllCopies:
    def test_f1_isomorphic_to_h(self):
        q = star_query(2)
        f1, _ = ell_copy(q, 1)
        assert are_isomorphic(f1, q.graph)

    def test_f_ell_of_star_is_complete_bipartite(self):
        """F_ℓ(S_k, X_k) = K_{k,ℓ}."""
        from repro.graphs import complete_bipartite_graph

        q = star_query(2)
        f3, _ = ell_copy(q, 3)
        assert are_isomorphic(f3, complete_bipartite_graph(2, 3))

    def test_vertex_count(self):
        q = star_query(3)
        f5, _ = ell_copy(q, 5)
        assert f5.num_vertices() == 3 + 5 * 1

    def test_gamma_is_homomorphism(self):
        """Observation 15."""
        q = path_query(4, 2)
        f, gamma = ell_copy(q, 3)
        for u, v in f.edges():
            assert q.graph.has_edge(gamma[u], gamma[v])

    def test_gamma_identity_on_free(self):
        q = star_query(2)
        gamma = gamma_map(q, 4)
        for x in q.free_variables:
            assert gamma[x] == x

    def test_invalid_ell(self):
        with pytest.raises(ValueError):
            ell_copy(star_query(2), 0)

    def test_lemma16_treewidth_bound(self):
        """tw(F_ℓ) ≤ ew(H, X) for all ℓ (Lemma 16)."""
        for q in (star_query(2), star_query(3), path_endpoints_query(2)):
            width = extension_width(q)
            for ell in (1, 2, 3, 4, 5):
                f, _ = ell_copy(q, ell)
                assert treewidth(f) <= width

    def test_corollary18_saturation(self):
        """max_ℓ tw(F_ℓ) = ew (Corollary 18)."""
        for q in (star_query(2), star_query(3), path_endpoints_query(1)):
            assert extension_width_via_ell_copies(q) == extension_width(q)

    def test_saturating_odd_ell(self):
        q = star_query(2)
        ell = saturating_odd_ell(q)
        assert ell % 2 == 1
        f, _ = ell_copy(q, ell)
        assert treewidth(f) == extension_width(q)
