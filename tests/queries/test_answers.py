"""Unit tests for answer counting: brute force, projection, colour-restricted
variants, and Lemma-22 interpolation."""

import pytest

from repro.graphs import (
    Graph,
    complete_graph,
    cycle_graph,
    path_graph,
    random_graph,
    star_graph,
)
from repro.homs import count_homomorphisms
from repro.queries import (
    ConjunctiveQuery,
    count_answers,
    count_answers_by_interpolation,
    count_answers_by_projection,
    count_answers_id,
    count_answers_tau,
    count_cp_answers,
    enumerate_answers,
    extension_counts,
    hom_count_of_ell_copy,
    path_endpoints_query,
    power_sum_identity_check,
    query_from_atoms,
    star_query,
)


class TestBasicCounting:
    def test_star2_answers_are_common_neighbour_pairs(self):
        q = star_query(2)
        g = path_graph(3)  # 0-1-2; common-neighbour pairs share vertex 1
        # (0,0),(0,2),(2,0),(2,2) via y=1; (1,1) via y=0 or 2.
        assert count_answers(q, g) == 5

    def test_full_query_counts_homs(self):
        q = ConjunctiveQuery(path_graph(3), [0, 1, 2])
        g = random_graph(6, 0.5, seed=21)
        assert count_answers(q, g) == count_homomorphisms(path_graph(3), g)

    def test_boolean_query(self):
        q = ConjunctiveQuery(complete_graph(3), [])
        assert count_answers(q, complete_graph(4)) == 1
        assert count_answers(q, path_graph(5)) == 0

    def test_projection_agrees(self):
        for seed in range(3):
            g = random_graph(6, 0.45, seed=seed)
            for q in (star_query(2), path_endpoints_query(1)):
                assert count_answers(q, g) == count_answers_by_projection(q, g)

    def test_answers_leq_all_assignments(self):
        q = star_query(3)
        g = random_graph(5, 0.5, seed=33)
        assert count_answers(q, g) <= 5 ** 3

    def test_empty_target(self):
        assert count_answers(star_query(2), Graph()) == 0

    def test_isolated_free_variable_multiplies(self):
        q = query_from_atoms([("x", "y")], ["x", "z"])
        g = cycle_graph(4)
        base = count_answers(query_from_atoms([("x", "y")], ["x"]), g)
        assert count_answers(q, g) == base * 4

    def test_enumerate_yields_extendable_assignments(self):
        q = star_query(2)
        g = cycle_graph(5)
        for answer in enumerate_answers(q, g):
            common = set(g.neighbours(answer["x1"])) & set(g.neighbours(answer["x2"]))
            assert common


class TestColourRestricted:
    def _coloured_setup(self):
        q = star_query(2)
        g = cycle_graph(6)
        # H-colouring of C6 onto the star graph S2 (x1, y, x2, y, x1, y...)
        colouring = {0: "x1", 1: "y", 2: "x2", 3: "y", 4: "x1", 5: "y"}
        return q, g, colouring

    def test_ans_tau_partition(self):
        """Observation 37: |Ans| = Σ_τ |Ans_τ| over all τ: X → V(H)."""
        q, g, colouring = self._coloured_setup()
        total = count_answers(q, g)
        from itertools import product

        tau_total = 0
        targets = list(q.graph.vertices())
        for images in product(targets, repeat=2):
            tau = {"x1": images[0], "x2": images[1]}
            tau_total += count_answers_tau(q, g, colouring, tau)
        assert tau_total == total

    def test_ans_id_subset_of_total(self):
        q, g, colouring = self._coloured_setup()
        assert count_answers_id(q, g, colouring) <= count_answers(q, g)

    def test_cp_answers_subset_of_id(self):
        """Observation 49: cpAns ⊆ Ans_id."""
        q, g, colouring = self._coloured_setup()
        assert count_cp_answers(q, g, colouring) <= count_answers_id(q, g, colouring)

    def test_lemma50_on_minimal_query(self):
        """For counting-minimal queries, cpAns = Ans_id (Lemma 50)."""
        q, g, colouring = self._coloured_setup()
        assert count_cp_answers(q, g, colouring) == count_answers_id(q, g, colouring)


class TestExtensionProfiles:
    def test_extension_counts_positive(self):
        q = star_query(2)
        g = cycle_graph(5)
        profile = extension_counts(q, g)
        assert len(profile) == count_answers(q, g)
        assert all(size >= 1 for size in profile)

    def test_power_sum_identity(self):
        """|Hom(F_ℓ, G)| = Σ_σ |Ext(σ)|^ℓ (the engine of Lemma 22)."""
        q = star_query(2)
        for g in (cycle_graph(5), random_graph(5, 0.6, seed=2)):
            assert power_sum_identity_check(q, g, max_ell=3)

    def test_ell_copy_hom_counts_monotone_structure(self):
        q = star_query(2)
        g = complete_graph(4)
        p1 = hom_count_of_ell_copy(q, g, 1)
        p2 = hom_count_of_ell_copy(q, g, 2)
        assert p2 >= p1  # sizes ≥ 1 make power sums monotone in ℓ


class TestInterpolation:
    @pytest.mark.parametrize("seed", range(4))
    def test_star2_interpolation(self, seed):
        q = star_query(2)
        g = random_graph(6, 0.5, seed=seed)
        assert count_answers_by_interpolation(q, g) == count_answers(q, g)

    @pytest.mark.parametrize("seed", range(2))
    def test_star3_interpolation(self, seed):
        q = star_query(3)
        g = random_graph(5, 0.5, seed=10 + seed)
        assert count_answers_by_interpolation(q, g) == count_answers(q, g)

    def test_path_query_interpolation(self):
        q = path_endpoints_query(2)
        g = random_graph(6, 0.4, seed=5)
        assert count_answers_by_interpolation(q, g) == count_answers(q, g)

    def test_full_query_short_circuit(self):
        q = ConjunctiveQuery(complete_graph(3), [0, 1, 2])
        g = complete_graph(4)
        assert count_answers_by_interpolation(q, g) == 24

    def test_no_answers(self):
        q = star_query(2)
        g = Graph(vertices=range(4))  # edgeless: no common neighbours
        assert count_answers_by_interpolation(q, g) == 0

    def test_boolean_query_rejected(self):
        from repro.errors import QueryError

        q = ConjunctiveQuery(path_graph(2), [])
        with pytest.raises(QueryError):
            count_answers_by_interpolation(q, complete_graph(3))

    def test_single_extension_size(self):
        """Host where every answer has the same extension count (K_n:
        every pair has the same number of common neighbours)."""
        q = star_query(2)
        g = complete_graph(5)
        assert count_answers_by_interpolation(q, g) == count_answers(q, g) == 25


class TestObservation23:
    """The answer count as an explicit rational combination of
    bounded-treewidth homomorphism counts."""

    @pytest.mark.parametrize("seed", range(3))
    def test_combination_evaluates_to_answer_count(self, seed):
        from repro.queries import (
            evaluate_hom_combination,
            hom_combination_for_answers,
        )

        query = star_query(2)
        host = random_graph(6, 0.5, seed=seed)
        combination = hom_combination_for_answers(query, host)
        assert evaluate_hom_combination(query, host, combination) == (
            count_answers(query, host)
        )

    def test_combination_patterns_have_bounded_treewidth(self):
        """Lemma 16: every F_ℓ in the combination has tw ≤ ew(H, X)."""
        from repro.queries import (
            ell_copy,
            extension_width,
            hom_combination_for_answers,
        )
        from repro.treewidth import treewidth

        query = star_query(2)
        host = random_graph(6, 0.5, seed=9)
        width = extension_width(query)
        for _, ell in hom_combination_for_answers(query, host):
            pattern, _ = ell_copy(query, ell)
            assert treewidth(pattern) <= width

    def test_empty_combination_for_no_answers(self):
        from repro.queries import hom_combination_for_answers

        host = Graph(vertices=range(3))
        assert hom_combination_for_answers(star_query(2), host) == []

    def test_combination_on_path_query(self):
        from repro.queries import (
            evaluate_hom_combination,
            hom_combination_for_answers,
        )

        query = path_endpoints_query(2)
        host = random_graph(6, 0.4, seed=13)
        combination = hom_combination_for_answers(query, host)
        assert evaluate_hom_combination(query, host, combination) == (
            count_answers(query, host)
        )
