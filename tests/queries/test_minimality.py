"""Unit tests for counting minimality and counting equivalence."""

from repro.graphs import complete_graph, path_graph
from repro.queries import (
    ConjunctiveQuery,
    counting_equivalent,
    counting_minimal_core,
    empirical_counting_equivalent,
    is_counting_minimal,
    path_endpoints_query,
    query_from_atoms,
    star_query,
    star_with_redundant_path,
    star_with_redundant_triangle,
)


class TestMinimality:
    def test_star_is_minimal(self):
        """The k-star is counting minimal (used throughout the paper)."""
        for k in (1, 2, 3, 4):
            assert is_counting_minimal(star_query(k))

    def test_full_queries_on_cores_minimal(self):
        q = ConjunctiveQuery(complete_graph(3), [0, 1, 2])
        assert is_counting_minimal(q)

    def test_redundant_path_not_minimal(self):
        assert not is_counting_minimal(star_with_redundant_path(2))

    def test_redundant_triangle_is_minimal(self):
        """The pendant triangle cannot fold into the bipartite star."""
        assert is_counting_minimal(star_with_redundant_triangle(2))

    def test_doubled_leaf_collapses(self):
        # Two quantified vertices attached identically to x fold together.
        q = query_from_atoms([("x", "y1"), ("x", "y2")], ["x"])
        core = counting_minimal_core(q)
        assert core.num_variables() == 2

    def test_core_of_minimal_is_self(self):
        q = star_query(3)
        core = counting_minimal_core(q)
        assert core == q

    def test_core_keeps_free_variables(self):
        q = star_with_redundant_path(2, tail=3)
        core = counting_minimal_core(q)
        assert core.free_variables == q.free_variables
        assert core == star_query(2)


class TestCountingEquivalence:
    def test_redundant_path_equivalent_to_star(self):
        assert counting_equivalent(star_with_redundant_path(2), star_query(2))

    def test_stars_of_different_arity_not_equivalent(self):
        assert not counting_equivalent(star_query(2), star_query(3))

    def test_equivalence_is_reflexive(self):
        q = path_endpoints_query(2)
        assert counting_equivalent(q, q)

    def test_relabelled_queries_equivalent(self):
        from repro.queries import relabel_query

        q = star_query(2)
        r = relabel_query(q, {"x1": "a", "x2": "b", "y": "c"})
        assert counting_equivalent(q, r)

    def test_empirical_agreement(self, random_hosts):
        """Definition 9 checked directly: equal counts on a host battery."""
        pairs = [
            (star_with_redundant_path(2), star_query(2), True),
            (star_query(2), star_query(3), False),
        ]
        for first, second, expected in pairs:
            assert counting_equivalent(first, second) == expected
            if expected:
                assert empirical_counting_equivalent(first, second, random_hosts)

    def test_inequivalent_queries_differ_somewhere(self, random_hosts):
        assert not empirical_counting_equivalent(
            star_query(2), star_query(3), random_hosts,
        )


class TestLemma44Property:
    def test_minimal_query_endos_are_automorphisms(self):
        """Lemma 44: on a counting-minimal query, every endomorphism that
        maps X bijectively onto X is an automorphism."""
        from repro.homs.brute_force import enumerate_homomorphisms

        q = star_query(2)
        free = q.free_variables
        allowed = {x: frozenset(free) for x in free}
        for endo in enumerate_homomorphisms(q.graph, q.graph, allowed=allowed):
            if len({endo[x] for x in free}) == len(free):
                assert len(set(endo.values())) == q.num_variables()

    def test_non_minimal_has_shrinking_endo(self):
        from repro.queries.minimality import _shrinking_endomorphism

        q = star_with_redundant_path(2)
        assert _shrinking_endomorphism(q) is not None


class TestBooleanAndFullEdgeCases:
    def test_boolean_query_core_is_graph_core(self):
        # Boolean P3 folds to a single edge.
        q = ConjunctiveQuery(path_graph(3), [])
        core = counting_minimal_core(q)
        assert core.num_variables() == 2

    def test_full_query_is_always_minimal(self):
        """With X = V(H) every X-bijective endomorphism is bijective."""
        q = ConjunctiveQuery(path_graph(4), [0, 1, 2, 3])
        assert is_counting_minimal(q)
