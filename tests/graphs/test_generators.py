"""Unit tests for graph generators."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    binary_tree,
    complete_bipartite_graph,
    complete_graph,
    cycle_graph,
    disjoint_cliques,
    empty_graph,
    grid_graph,
    hypercube_graph,
    path_graph,
    petersen_graph,
    prism_graph,
    random_connected_graph,
    random_graph,
    random_tree,
    six_cycle,
    star_graph,
    two_triangles,
    wheel_graph,
)


def test_empty_graph():
    g = empty_graph(4)
    assert g.num_vertices() == 4
    assert g.num_edges() == 0


def test_empty_graph_negative():
    with pytest.raises(GraphError):
        empty_graph(-1)


def test_path_graph():
    g = path_graph(5)
    assert g.num_edges() == 4
    assert g.degree_sequence() == (2, 2, 2, 1, 1)
    assert g.is_connected()


def test_cycle_graph():
    g = cycle_graph(5)
    assert g.num_edges() == 5
    assert g.degree_sequence() == (2,) * 5


def test_cycle_too_small():
    with pytest.raises(GraphError):
        cycle_graph(2)


def test_complete_graph():
    g = complete_graph(5)
    assert g.num_edges() == 10
    assert g.is_clique(g.vertices())


def test_star_graph():
    g = star_graph(4)
    assert g.num_vertices() == 5
    assert g.degree("y") == 4
    assert all(g.degree(f"x{i}") == 1 for i in range(1, 5))


def test_star_requires_leaf():
    with pytest.raises(GraphError):
        star_graph(0)


def test_complete_bipartite():
    g = complete_bipartite_graph(2, 3)
    assert g.num_vertices() == 5
    assert g.num_edges() == 6
    assert g.degree(("L", 0)) == 3
    assert g.degree(("R", 0)) == 2


def test_grid_graph():
    g = grid_graph(3, 4)
    assert g.num_vertices() == 12
    assert g.num_edges() == 3 * 3 + 2 * 4  # horizontal + vertical


def test_binary_tree():
    g = binary_tree(3)
    assert g.num_vertices() == 15
    assert g.num_edges() == 14
    assert g.is_connected()


def test_hypercube():
    g = hypercube_graph(3)
    assert g.num_vertices() == 8
    assert g.num_edges() == 12
    assert g.degree_sequence() == (3,) * 8


def test_petersen():
    g = petersen_graph()
    assert g.num_vertices() == 10
    assert g.num_edges() == 15
    assert g.degree_sequence() == (3,) * 10


def test_prism():
    g = prism_graph(4)
    assert g.num_vertices() == 8
    assert g.num_edges() == 12
    assert g.degree_sequence() == (3,) * 8


def test_two_triangles_vs_six_cycle():
    tt = two_triangles()
    c6 = six_cycle()
    assert tt.num_vertices() == c6.num_vertices() == 6
    assert tt.num_edges() == c6.num_edges() == 6
    assert tt.degree_sequence() == c6.degree_sequence()
    assert not tt.is_connected()
    assert c6.is_connected()


def test_disjoint_cliques():
    g = disjoint_cliques([3, 2, 1])
    assert g.num_vertices() == 6
    assert g.num_edges() == 3 + 1
    assert len(g.connected_components()) == 3


def test_random_graph_deterministic():
    a = random_graph(8, 0.5, seed=42)
    b = random_graph(8, 0.5, seed=42)
    assert a == b


def test_random_graph_probability_bounds():
    with pytest.raises(GraphError):
        random_graph(5, 1.5)
    assert random_graph(5, 0.0).num_edges() == 0
    assert random_graph(5, 1.0).num_edges() == 10


def test_random_tree_is_tree():
    g = random_tree(10, seed=7)
    assert g.num_edges() == 9
    assert g.is_connected()


def test_random_connected_graph():
    g = random_connected_graph(9, 0.2, seed=13)
    assert g.is_connected()
    assert g.num_edges() >= 8


def test_wheel_graph():
    g = wheel_graph(5)
    assert g.num_vertices() == 6
    assert g.degree("hub") == 5
    assert g.num_edges() == 10
