"""Unit tests for the core Graph data structure."""

import pytest

from repro.errors import GraphError
from repro.graphs import Graph, complete_graph, cycle_graph, path_graph


class TestConstruction:
    def test_empty(self):
        g = Graph()
        assert g.num_vertices() == 0
        assert g.num_edges() == 0
        assert g.vertices() == []
        assert g.edges() == []

    def test_vertices_only(self):
        g = Graph(vertices=[1, 2, 3])
        assert g.num_vertices() == 3
        assert g.num_edges() == 0

    def test_edges_add_endpoints(self):
        g = Graph(edges=[(1, 2), (2, 3)])
        assert sorted(g.vertices()) == [1, 2, 3]
        assert g.num_edges() == 2

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            Graph(edges=[(1, 1)])

    def test_duplicate_edges_ignored(self):
        g = Graph(edges=[(1, 2), (2, 1), (1, 2)])
        assert g.num_edges() == 1

    def test_hashable_labels(self):
        g = Graph(edges=[(("a", 1), ("b", frozenset([2])))])
        assert g.num_vertices() == 2

    def test_add_vertex_idempotent(self):
        g = Graph()
        g.add_vertex(5)
        g.add_vertex(5)
        assert g.num_vertices() == 1


class TestMutation:
    def test_remove_edge(self):
        g = Graph(edges=[(0, 1), (1, 2)])
        g.remove_edge(0, 1)
        assert not g.has_edge(0, 1)
        assert g.has_edge(1, 2)
        assert g.num_vertices() == 3

    def test_remove_missing_edge_raises(self):
        g = Graph(vertices=[0, 1])
        with pytest.raises(GraphError):
            g.remove_edge(0, 1)

    def test_remove_vertex(self):
        g = complete_graph(4)
        g.remove_vertex(0)
        assert g.num_vertices() == 3
        assert g.num_edges() == 3
        assert not g.has_vertex(0)

    def test_remove_missing_vertex_raises(self):
        with pytest.raises(GraphError):
            Graph().remove_vertex("missing")

    def test_copy_is_independent(self):
        g = path_graph(3)
        h = g.copy()
        h.add_edge(0, 2)
        assert not g.has_edge(0, 2)
        assert h.has_edge(0, 2)


class TestQueries:
    def test_neighbours(self):
        g = path_graph(3)
        assert g.neighbours(1) == frozenset({0, 2})
        assert g.neighbours(0) == frozenset({1})

    def test_neighbours_missing_vertex(self):
        with pytest.raises(GraphError):
            path_graph(2).neighbours(99)

    def test_neighbourhood_of_set(self):
        g = path_graph(4)
        assert g.neighbourhood_of_set([1, 2]) == frozenset({0, 1, 2, 3})

    def test_degree_sequence(self):
        assert complete_graph(4).degree_sequence() == (3, 3, 3, 3)
        assert path_graph(3).degree_sequence() == (2, 1, 1)

    def test_edge_count_clique(self):
        assert complete_graph(5).num_edges() == 10

    def test_contains_iter_len(self):
        g = path_graph(3)
        assert 1 in g
        assert 9 not in g
        assert len(g) == 3
        assert sorted(g) == [0, 1, 2]


class TestStructure:
    def test_connected_components(self):
        g = Graph(edges=[(0, 1), (2, 3)])
        g.add_vertex(4)
        components = sorted(g.connected_components(), key=lambda c: min(c))
        assert components == [frozenset({0, 1}), frozenset({2, 3}), frozenset({4})]

    def test_is_connected(self):
        assert path_graph(5).is_connected()
        assert not Graph(edges=[(0, 1), (2, 3)]).is_connected()
        assert Graph().is_connected()  # convention: empty graph is connected

    def test_component_adjacent_to(self):
        g = Graph(edges=[(0, 1), (1, 2), (3, 0)])
        assert g.component_adjacent_to({1, 2}, 0)
        assert not g.component_adjacent_to({2}, 0)

    def test_induced_subgraph(self):
        g = complete_graph(4)
        sub = g.induced_subgraph([0, 1, 2])
        assert sub.num_vertices() == 3
        assert sub.num_edges() == 3

    def test_induced_subgraph_missing_vertex(self):
        with pytest.raises(GraphError):
            path_graph(2).induced_subgraph([0, 7])

    def test_is_clique(self):
        g = complete_graph(4)
        assert g.is_clique([0, 1, 2])
        assert g.is_clique([])
        assert not cycle_graph(4).is_clique([0, 1, 2])

    def test_bfs_distances(self):
        g = cycle_graph(6)
        distances = g.bfs_distances(0)
        assert distances[0] == 0
        assert distances[3] == 3
        assert distances[5] == 1


class TestRelabelling:
    def test_relabelled(self):
        g = path_graph(3)
        h = g.relabelled({0: "a", 1: "b", 2: "c"})
        assert h.has_edge("a", "b")
        assert h.has_edge("b", "c")
        assert not h.has_edge("a", "c")

    def test_relabelled_non_injective_raises(self):
        with pytest.raises(GraphError):
            path_graph(3).relabelled({0: "a", 1: "a", 2: "c"})

    def test_to_index_graph(self):
        g = Graph(edges=[("x", "y")])
        indexed, mapping = g.to_index_graph()
        assert set(mapping.values()) == {0, 1}
        assert indexed.has_edge(0, 1)

    def test_equality_is_label_level(self):
        assert path_graph(3) == path_graph(3)
        assert path_graph(3) != cycle_graph(3)

    def test_graphs_unhashable(self):
        with pytest.raises(TypeError):
            hash(path_graph(2))

    def test_edge_fingerprint_distinguishes(self):
        assert path_graph(3).edge_fingerprint() != cycle_graph(3).edge_fingerprint()
        assert path_graph(3).edge_fingerprint() == path_graph(3).edge_fingerprint()

    def test_adjacency_dict_snapshot(self):
        g = path_graph(3)
        snapshot = g.adjacency_dict()
        assert snapshot[1] == frozenset({0, 2})
