"""Property-based suite for the integer-indexed graph kernel.

Two families of guarantees:

* ``Graph ↔ IndexedGraph`` round-trips preserve vertices, edges, and the
  cached invariants (degree sequence, components, adjacency);
* the compute layers rewired through the kernel — homomorphism counts,
  1-WL partitions, k-WL equivalence verdicts — agree with label-space
  *seed oracles* (the dict-of-sets algorithms the kernel replaced,
  embedded below) on randomized graphs.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro.errors import GraphError
from repro.graphs import Graph, IndexedGraph, random_graph
from repro.graphs.indexed import LabelCodec, graph_memory_footprint
from repro.homs import count_homomorphisms_brute, count_homomorphisms_dp
from repro.wl import colour_refinement, k_wl_equivalent, wl_1_equivalent

import pytest


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
def _rich_label(i: int):
    """CFI-style structured labels: the vertex type the paper uses."""
    return (("w", i), frozenset({i % 3, "tag"}))


@st.composite
def graphs(draw, max_vertices=7, rich=False):
    n = draw(st.integers(min_value=0, max_value=max_vertices))
    labels = [_rich_label(i) if rich else i for i in range(n)]
    graph = Graph(vertices=labels)
    for i in range(n):
        for j in range(i + 1, n):
            if draw(st.booleans()):
                graph.add_edge(labels[i], labels[j])
    return graph


# ----------------------------------------------------------------------
# seed oracles (dict-of-sets, label space — the pre-kernel algorithms)
# ----------------------------------------------------------------------
def oracle_count_homomorphisms(pattern: Graph, target: Graph) -> int:
    """Exhaustive label-space enumeration, no ordering heuristics."""
    pattern_vertices = pattern.vertices()
    target_vertices = target.vertices()
    if not pattern_vertices:
        return 1
    count = 0
    assignment: dict = {}

    def extend(position: int) -> None:
        nonlocal count
        if position == len(pattern_vertices):
            count += 1
            return
        v = pattern_vertices[position]
        for image in target_vertices:
            ok = True
            for u in pattern.neighbours(v):
                if u in assignment and not target.has_edge(assignment[u], image):
                    ok = False
                    break
            if ok:
                assignment[v] = image
                extend(position + 1)
                del assignment[v]

    extend(0)
    return count


def oracle_stable_partition(graph: Graph) -> set[frozenset]:
    """Seed synchronous colour refinement, as a partition of the labels."""
    palette: dict = {}

    def intern(signature):
        if signature not in palette:
            palette[signature] = len(palette)
        return palette[signature]

    colours = {v: intern("uniform") for v in graph.vertices()}
    for _ in range(max(graph.num_vertices(), 1)):
        num_classes = len(set(colours.values()))
        colours = {
            v: intern(
                (colours[v], tuple(sorted(colours[u] for u in graph.neighbours(v)))),
            )
            for v in graph.vertices()
        }
        if len(set(colours.values())) == num_classes:
            break
    blocks: dict = {}
    for v, colour in colours.items():
        blocks.setdefault(colour, set()).add(v)
    return {frozenset(block) for block in blocks.values()}


def _partition(colours: dict) -> set[frozenset]:
    blocks: dict = {}
    for v, colour in colours.items():
        blocks.setdefault(colour, set()).add(v)
    return {frozenset(block) for block in blocks.values()}


# ----------------------------------------------------------------------
# round-trips and invariants
# ----------------------------------------------------------------------
class TestRoundTrip:
    @settings(max_examples=60, deadline=None)
    @given(graphs(rich=True))
    def test_round_trip_preserves_graph(self, graph):
        assert graph.to_indexed().to_graph() == graph

    @settings(max_examples=60, deadline=None)
    @given(graphs())
    def test_codec_is_insertion_order(self, graph):
        indexed = graph.to_indexed()
        assert list(indexed.codec.labels) == graph.vertices()
        for i, label in enumerate(indexed.codec.labels):
            assert indexed.codec.encode(label) == i
            assert indexed.codec.decode(i) == label

    @settings(max_examples=60, deadline=None)
    @given(graphs(rich=True))
    def test_invariants_agree(self, graph):
        indexed = graph.to_indexed()
        labels = indexed.codec.labels
        assert indexed.num_vertices() == graph.num_vertices()
        assert indexed.num_edges() == graph.num_edges()
        assert indexed.degree_sequence() == graph.degree_sequence()
        for i, label in enumerate(labels):
            assert indexed.degree(i) == graph.degree(label)
            assert {labels[u] for u in indexed.neighbours(i)} == graph.neighbours(label)
        components = {
            frozenset(labels[i] for i in component)
            for component in indexed.connected_components()
        }
        assert components == set(graph.connected_components())

    @settings(max_examples=40, deadline=None)
    @given(graphs())
    def test_bitsets_match_adjacency(self, graph):
        indexed = graph.to_indexed()
        bitsets = indexed.bitsets()
        for u in range(indexed.n):
            for v in range(indexed.n):
                assert bool((bitsets[u] >> v) & 1) == graph.has_edge(
                    indexed.codec.labels[u], indexed.codec.labels[v],
                )

    def test_digest_is_label_independent(self):
        graph = random_graph(9, 0.4, seed=2)
        relabelled = graph.relabelled({v: ("x", v) for v in graph.vertices()})
        assert (
            graph.to_indexed().structural_digest()
            == relabelled.to_indexed().structural_digest()
        )

    def test_cache_and_invalidation(self):
        graph = random_graph(6, 0.5, seed=1)
        first = graph.to_indexed()
        assert graph.to_indexed() is first
        graph.add_edge("fresh", 0)
        second = graph.to_indexed()
        assert second is not first
        assert second.n == first.n + 1

    def test_codec_rejects_unknown_label(self):
        codec = LabelCodec(["a", "b"])
        with pytest.raises(GraphError):
            codec.encode("missing")
        assert codec.encode_or_none("missing") is None
        assert codec.encode_or_none([]) is None  # unhashable probe

    def test_memory_footprint_reported(self):
        graph = random_graph(30, 0.2, seed=3)
        assert graph.to_indexed().memory_footprint() > 0
        assert graph_memory_footprint(graph) > 0


# ----------------------------------------------------------------------
# compute layers: indexed path vs seed oracle
# ----------------------------------------------------------------------
class TestComputeAgreement:
    @settings(max_examples=40, deadline=None)
    @given(graphs(max_vertices=4, rich=True), graphs(max_vertices=5))
    def test_hom_counts_match_oracle(self, pattern, target):
        expected = oracle_count_homomorphisms(pattern, target)
        assert count_homomorphisms_brute(pattern, target) == expected
        assert count_homomorphisms_dp(pattern, target) == expected

    @settings(max_examples=40, deadline=None)
    @given(graphs(max_vertices=7, rich=True))
    def test_wl_partition_matches_oracle(self, graph):
        assert _partition(colour_refinement(graph)) == oracle_stable_partition(graph)

    def test_wl_equivalence_verdicts_match_oracle(self):
        rng = random.Random(7)
        for trial in range(40):
            n = rng.randint(1, 8)
            first = random_graph(n, rng.choice([0.2, 0.5]), seed=trial)
            if trial % 2:
                second = random_graph(n, 0.5, seed=trial + 100)
            else:
                second = first.relabelled(
                    {v: _rich_label(v) for v in first.vertices()},
                )
            seed_verdict = oracle_wl_1_equivalent(first, second)
            assert wl_1_equivalent(first, second) == seed_verdict, trial

    def test_k_wl_verdicts_match_oracle(self):
        rng = random.Random(3)
        for trial in range(12):
            n = rng.randint(1, 5)
            first = random_graph(n, 0.5, seed=trial)
            if trial % 2:
                second = random_graph(n, 0.5, seed=trial + 50)
            else:
                second = first.relabelled(
                    {v: _rich_label(v) for v in first.vertices()},
                )
            for k in (2, 3):
                assert k_wl_equivalent(first, second, k) == oracle_k_wl_equivalent(
                    first, second, k,
                ), (trial, k)


def oracle_wl_1_equivalent(first: Graph, second: Graph) -> bool:
    """Seed lockstep shared-palette refinement."""
    if first.num_vertices() != second.num_vertices():
        return False
    palette: dict = {}

    def intern(signature):
        if signature not in palette:
            palette[signature] = len(palette)
        return palette[signature]

    colours_a = {v: intern("uniform") for v in first.vertices()}
    colours_b = {v: intern("uniform") for v in second.vertices()}

    def refine(graph, colours):
        return {
            v: intern(
                (colours[v], tuple(sorted(colours[u] for u in graph.neighbours(v)))),
            )
            for v in graph.vertices()
        }

    def histogram(colours):
        result: dict = {}
        for colour in colours.values():
            result[colour] = result.get(colour, 0) + 1
        return result

    if histogram(colours_a) != histogram(colours_b):
        return False
    for _ in range(max(first.num_vertices(), 1)):
        num_classes = len(set(colours_a.values()) | set(colours_b.values()))
        colours_a = refine(first, colours_a)
        colours_b = refine(second, colours_b)
        if histogram(colours_a) != histogram(colours_b):
            return False
        if len(set(colours_a.values()) | set(colours_b.values())) == num_classes:
            break
    return True


def oracle_k_wl_equivalent(first: Graph, second: Graph, k: int) -> bool:
    """Seed folklore k-WL over label tuples with a shared palette."""
    from itertools import product

    if first.num_vertices() != second.num_vertices():
        return False
    if first.num_edges() != second.num_edges():
        return False
    palette: dict = {}

    def intern(signature):
        if signature not in palette:
            palette[signature] = len(palette)
        return palette[signature]

    def atomic(graph, t):
        bits = []
        for i in range(k):
            for j in range(i + 1, k):
                bits.append((t[i] == t[j], graph.has_edge(t[i], t[j])))
        return tuple(bits)

    def initial(graph):
        return {
            t: intern(("atomic", atomic(graph, t)))
            for t in product(graph.vertices(), repeat=k)
        }

    def refine(graph, colours):
        vertices = graph.vertices()
        updated = {}
        for t in colours:
            neighbourhood = sorted(
                tuple(colours[t[:i] + (w,) + t[i + 1:]] for i in range(k))
                for w in vertices
            )
            updated[t] = intern((colours[t], tuple(neighbourhood)))
        return updated

    def histogram(colours):
        result: dict = {}
        for colour in colours.values():
            result[colour] = result.get(colour, 0) + 1
        return result

    colours_a = initial(first)
    colours_b = initial(second)
    if histogram(colours_a) != histogram(colours_b):
        return False
    for _ in range(max(len(colours_a), 1)):
        num_classes = len(set(colours_a.values()) | set(colours_b.values()))
        colours_a = refine(first, colours_a)
        colours_b = refine(second, colours_b)
        if histogram(colours_a) != histogram(colours_b):
            return False
        if len(set(colours_a.values()) | set(colours_b.values())) == num_classes:
            break
    return True
