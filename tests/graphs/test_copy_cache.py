"""Regression suite: ``Graph.copy()`` must never leak a stale index.

``copy()`` shares the cached :class:`IndexedGraph` with the clone (it is
immutable and both graphs encode equal at copy time); every mutator must
then invalidate only its own graph's slot.  The stale-leak failure mode
is subtle because an outdated index still *works* — counts are just
silently wrong — so these tests compare against a from-scratch encode
after every copy-then-mutate combination, including under different hash
salts (iteration order of rich labels must not matter).
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.graphs import Graph, random_graph
from repro.graphs.indexed import IndexedGraph


def rich(base: Graph) -> Graph:
    """CFI-style structured labels — the worst case for accidental
    iteration-order dependence."""
    return base.relabelled(
        {v: (("w", v), frozenset({v, "tag"})) for v in base.vertices()},
    )


def assert_index_fresh(graph: Graph) -> None:
    """``to_indexed()`` must agree with a from-scratch encode."""
    cached = graph.to_indexed()
    fresh = IndexedGraph.from_graph(graph)
    assert cached.codec.labels == fresh.codec.labels
    assert cached.adjacency_lists() == fresh.adjacency_lists()
    assert cached.bitsets() == fresh.bitsets()
    assert cached.structural_digest() == fresh.structural_digest()


class TestCopySharesCache:
    def test_copy_shares_the_encoded_index(self):
        graph = rich(random_graph(8, 0.4, seed=1))
        encoded = graph.to_indexed()
        clone = graph.copy()
        assert clone.to_indexed() is encoded  # no re-encode

    def test_copy_without_cache_stays_lazy(self):
        graph = rich(random_graph(8, 0.4, seed=2))
        clone = graph.copy()
        assert_index_fresh(clone)
        assert_index_fresh(graph)


class TestCopyThenMutateNeverStale:
    @pytest.mark.parametrize("mutate_clone", [True, False], ids=["clone", "original"])
    @pytest.mark.parametrize(
        "mutation",
        ["add_edge", "remove_edge", "add_vertex", "remove_vertex"],
    )
    def test_every_mutator_invalidates_only_its_side(self, mutation, mutate_clone):
        graph = rich(random_graph(9, 0.4, seed=3))
        graph.to_indexed().bitsets()  # warm the shared cache
        clone = graph.copy()
        victim, bystander = (clone, graph) if mutate_clone else (graph, clone)

        vertices = victim.vertices()
        if mutation == "add_edge":
            extra = ("fresh", frozenset({"new"}))
            victim.add_edge(vertices[0], extra)
        elif mutation == "remove_edge":
            u, v = victim.edges()[0]
            victim.remove_edge(u, v)
        elif mutation == "add_vertex":
            victim.add_vertex(("fresh", frozenset({"new"})))
        else:
            victim.remove_vertex(vertices[0])

        assert_index_fresh(victim)
        assert_index_fresh(bystander)
        # The bystander still serves the shared snapshot (no re-encode),
        # and it is still correct for the bystander's (unchanged) content.
        assert victim.to_indexed() is not bystander.to_indexed()

    def test_chained_copies(self):
        graph = rich(random_graph(7, 0.5, seed=4))
        graph.to_indexed()
        first = graph.copy()
        first.add_edge(first.vertices()[0], "chain-1")
        second = first.copy()
        second.remove_edge(*second.edges()[0])
        for g in (graph, first, second):
            assert_index_fresh(g)


class TestHashRandomisation:
    """The copy-then-mutate invariants must hold under any hash salt:
    rich labels iterate in salt-dependent order, which is exactly how a
    stale shared index would start disagreeing between processes."""

    SCRIPT = """
import sys
sys.path.insert(0, {src!r})
from tests.graphs.test_copy_cache import assert_index_fresh, rich
from repro.graphs import random_graph

graph = rich(random_graph(9, 0.45, seed=11))
graph.to_indexed().bitsets()
clone = graph.copy()
clone.add_edge(clone.vertices()[0], ("fresh", frozenset({{"new"}})))
clone.remove_edge(*clone.edges()[2])
graph.remove_vertex(graph.vertices()[1])
assert_index_fresh(clone)
assert_index_fresh(graph)
print(graph.to_indexed().structural_digest())
print(clone.to_indexed().structural_digest())
"""

    @pytest.mark.parametrize("seed", ["0", "1", "31337"])
    def test_fresh_under_hash_seed(self, seed):
        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = seed
        env["PYTHONPATH"] = os.pathsep.join(
            [os.path.join(repo_root, "src"), repo_root]
            + env.get("PYTHONPATH", "").split(os.pathsep),
        )
        result = subprocess.run(
            [sys.executable, "-c", self.SCRIPT.format(
                src=os.path.join(repo_root, "src"),
            )],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
        )
        assert result.returncode == 0, result.stderr
        digests = result.stdout.split()
        assert len(digests) == 2 and digests[0] != digests[1]
