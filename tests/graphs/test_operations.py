"""Unit tests for graph operations (union, tensor, complement, quotient)."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    add_apex,
    complement,
    complete_graph,
    cycle_graph,
    disjoint_union,
    disjoint_union_many,
    path_graph,
    quotient,
    quotient_by_map,
    subdivide_edges,
    tensor_product,
)
from repro.homs import count_homomorphisms


def test_disjoint_union_sizes():
    g = disjoint_union(complete_graph(3), path_graph(2))
    assert g.num_vertices() == 5
    assert g.num_edges() == 4
    assert len(g.connected_components()) == 2


def test_disjoint_union_many():
    g = disjoint_union_many([complete_graph(2)] * 3)
    assert g.num_vertices() == 6
    assert g.num_edges() == 3


def test_tensor_product_size():
    g = tensor_product(complete_graph(2), complete_graph(3))
    assert g.num_vertices() == 6
    # K2 ⊗ K3 = C6
    assert g.degree_sequence() == (2,) * 6
    assert g.is_connected()


def test_tensor_product_hom_multiplicativity():
    """|Hom(H, A⊗B)| = |Hom(H, A)| · |Hom(H, B)| — the property Corollary 5
    relies on."""
    pattern = path_graph(3)
    a = cycle_graph(5)
    b = complete_graph(3)
    product_graph = tensor_product(a, b)
    assert count_homomorphisms(pattern, product_graph) == (
        count_homomorphisms(pattern, a) * count_homomorphisms(pattern, b)
    )


def test_tensor_product_hom_multiplicativity_triangle():
    pattern = complete_graph(3)
    a = complete_graph(4)
    b = cycle_graph(7)
    product_graph = tensor_product(a, b)
    assert count_homomorphisms(pattern, product_graph) == (
        count_homomorphisms(pattern, a) * count_homomorphisms(pattern, b)
    )


def test_complement_of_clique_is_empty():
    g = complement(complete_graph(4))
    assert g.num_edges() == 0
    assert g.num_vertices() == 4


def test_complement_involution():
    g = cycle_graph(5)
    assert complement(complement(g)) == g


def test_complement_edge_count():
    g = path_graph(4)
    assert complement(g).num_edges() == 6 - 3


def test_quotient_identifies_blocks():
    g = path_graph(4)  # 0-1-2-3
    q = quotient(g, [[0, 3], [1], [2]])
    assert q.num_vertices() == 3
    assert q.num_edges() == 3  # {03,1}, {1,2}, {2,03}


def test_quotient_self_loop_rejected():
    g = path_graph(2)
    with pytest.raises(GraphError):
        quotient(g, [[0, 1]])


def test_quotient_requires_partition():
    g = path_graph(3)
    with pytest.raises(GraphError):
        quotient(g, [[0], [1]])  # vertex 2 missing
    with pytest.raises(GraphError):
        quotient(g, [[0, 1], [1, 2]])  # overlap


def test_quotient_by_map():
    g = cycle_graph(4)
    q = quotient_by_map(g, {0: "a", 1: "b", 2: "a2", 3: "b2"})
    assert q.num_vertices() == 4
    assert q.num_edges() == 4


def test_quotient_by_map_self_loop():
    with pytest.raises(GraphError):
        quotient_by_map(path_graph(2), {0: "a", 1: "a"})


def test_subdivide_edges():
    g = complete_graph(3)
    s = subdivide_edges(g, times=1)
    assert s.num_vertices() == 3 + 3
    assert s.num_edges() == 6
    assert s.degree_sequence() == (2, 2, 2, 2, 2, 2)


def test_subdivide_zero_is_copy():
    g = complete_graph(3)
    assert subdivide_edges(g, 0) == g


def test_subdivide_negative_raises():
    with pytest.raises(GraphError):
        subdivide_edges(path_graph(2), -1)


def test_add_apex():
    g = add_apex(cycle_graph(4))
    assert g.degree("apex") == 4
    assert g.num_vertices() == 5


def test_add_apex_label_clash():
    g = path_graph(2)
    g.add_vertex("apex")
    with pytest.raises(GraphError):
        add_apex(g)
