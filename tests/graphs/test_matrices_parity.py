"""Unit tests for the matrix/spectral module and Lemma 58 parity
assignments."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    closed_walk_profile,
    complete_graph,
    cospectral,
    count_closed_walks,
    count_walks,
    cycle_graph,
    parity_edge_assignment,
    path_graph,
    petersen_graph,
    random_graph,
    six_cycle,
    spectrum,
    star_graph,
    two_triangles,
    verify_parity_assignment,
    walk_profile,
)
from repro.homs import count_homomorphisms


class TestWalkCounting:
    def test_walks_match_path_homs(self):
        g = random_graph(7, 0.5, seed=61)
        for length in (0, 1, 2, 3, 4):
            assert count_walks(g, length) == count_homomorphisms(
                path_graph(length + 1), g,
            )

    def test_closed_walks_match_cycle_homs(self):
        g = random_graph(7, 0.5, seed=62)
        for length in (3, 4, 5):
            assert count_closed_walks(g, length) == count_homomorphisms(
                cycle_graph(length), g,
            )

    def test_trace_counts_triangles(self):
        # trace(A³) = 6 · #triangles.
        assert count_closed_walks(complete_graph(3), 3) == 6
        assert count_closed_walks(complete_graph(4), 3) == 24
        assert count_closed_walks(six_cycle(), 3) == 0

    def test_empty_graph(self):
        assert count_walks(Graph(), 2) == 0
        assert count_closed_walks(Graph(), 3) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            count_walks(path_graph(2), -1)
        # The documented contract: |Hom(C_k, G)| only exists for k >= 3.
        for bad_length in (0, 1, 2):
            with pytest.raises(ValueError):
                count_closed_walks(path_graph(2), bad_length)

    def test_walk_profile_is_1wl_invariant_on_classic_pair(self):
        assert walk_profile(two_triangles(), 5) == walk_profile(six_cycle(), 5)

    def test_closed_walk_profile_separates_classic_pair(self):
        """Closed-walk counts are 2-WL information: the triangle shows."""
        assert closed_walk_profile(two_triangles(), 4) != (
            closed_walk_profile(six_cycle(), 4)
        )

    def test_closed_walk_profile_starts_at_three(self):
        g = complete_graph(4)
        profile = closed_walk_profile(g, 5)
        assert len(profile) == 3  # lengths 3, 4, 5
        assert profile[0] == count_closed_walks(g, 3)


class TestExactArithmetic:
    """Long walks on large graphs exceed int64; counts must stay exact."""

    def test_long_walks_do_not_overflow(self):
        # Walks of length k in K_n: n * (n-1)^k; 11^30 ≈ 10^31 >> 2^63.
        assert count_walks(complete_graph(12), 30) == 12 * 11 ** 30

    def test_pure_python_tier_is_exact_too(self):
        from repro import kernel

        with kernel.force_backend("python"):
            assert count_walks(complete_graph(12), 30) == 12 * 11 ** 30
            assert count_walks(complete_graph(5), 3) == count_homomorphisms(
                path_graph(4), complete_graph(5),
            )

    def test_long_closed_walks_do_not_overflow(self):
        # trace(A^k) on K_n via the spectrum {n-1, (-1)^(n-1 times)}.
        n, k = 12, 25
        expected = (n - 1) ** k + (n - 1) * (-1) ** k
        assert count_closed_walks(complete_graph(n), k) == expected

    def test_guard_covers_sum_reduction(self):
        from repro.graphs.matrices import _needs_exact_dtype

        # K2049, 5 steps: every entry of A^5 fits int64 but the sum()
        # (2049 * 2048^5 > 2^63) does not — the guard must fire.
        assert _needs_exact_dtype(2049, 5)

    def test_guard_soundness(self):
        from repro.graphs.matrices import _needs_exact_dtype

        # Whenever the guard keeps int64, the walk-count bound n*(n-1)^k
        # (the largest reduction any caller performs) must fit in int64.
        for n in (2, 3, 5, 12, 100, 1025, 2049, 4097):
            for power in range(1, 64):
                if not _needs_exact_dtype(n, power):
                    assert n * (n - 1) ** power < 2 ** 63

    def test_int64_fast_path_agrees_with_exact(self):
        pytest.importorskip("numpy", exc_type=ImportError)
        g = random_graph(8, 0.5, seed=64)
        # Short walks fit comfortably in int64; the exact path must agree.
        from repro.graphs.matrices import _exact_matrix_power, adjacency_matrix

        matrix = adjacency_matrix(g)
        fast = _exact_matrix_power(matrix, 5)
        exact = _exact_matrix_power(matrix.astype(object), 5)
        assert (fast == exact).all()


class TestSpectra:
    @pytest.fixture(autouse=True)
    def _needs_numpy(self):
        # Float spectra have no pure-Python tier (matrices.spectrum
        # raises ReproError without numpy).
        pytest.importorskip("numpy", exc_type=ImportError)

    def test_known_spectrum_complete(self):
        spec = spectrum(complete_graph(4))
        assert abs(spec[0] - 3.0) < 1e-9
        assert all(abs(value + 1.0) < 1e-9 for value in spec[1:])

    def test_petersen_spectrum(self):
        spec = spectrum(petersen_graph())
        assert abs(spec[0] - 3.0) < 1e-9
        # Eigenvalue 1 with multiplicity 5, −2 with multiplicity 4.
        assert sum(1 for v in spec if abs(v - 1.0) < 1e-6) == 5
        assert sum(1 for v in spec if abs(v + 2.0) < 1e-6) == 4

    def test_cospectral_iso_graphs(self):
        g = random_graph(7, 0.5, seed=63)
        h = g.relabelled({v: f"c{v}" for v in g.vertices()})
        assert cospectral(g, h)

    def test_not_cospectral(self):
        assert not cospectral(two_triangles(), six_cycle())
        assert not cospectral(path_graph(3), path_graph(4))


class TestLemma58:
    @pytest.mark.parametrize("seed", range(4))
    def test_random_even_sets(self, seed):
        import random

        rng = random.Random(seed)
        graph = random_graph(8, 0.45, seed=100 + seed)
        if not graph.is_connected():
            pytest.skip("disconnected sample")
        vertices = graph.vertices()
        odd = rng.sample(vertices, 4)
        beta = parity_edge_assignment(graph, odd)
        assert verify_parity_assignment(graph, odd, beta)

    def test_empty_odd_set(self):
        g = cycle_graph(5)
        beta = parity_edge_assignment(g, [])
        assert all(value == 0 for value in beta.values())
        assert verify_parity_assignment(g, [], beta)

    def test_pair_on_path(self):
        g = path_graph(4)
        beta = parity_edge_assignment(g, [0, 3])
        # The unique solution flips the whole path.
        assert all(value == 1 for value in beta.values())

    def test_adjacent_pair(self):
        g = cycle_graph(6)
        beta = parity_edge_assignment(g, [0, 1])
        assert verify_parity_assignment(g, [0, 1], beta)

    def test_all_vertices_odd(self):
        g = complete_graph(4)
        beta = parity_edge_assignment(g, [0, 1, 2, 3])
        assert verify_parity_assignment(g, [0, 1, 2, 3], beta)

    def test_odd_cardinality_rejected(self):
        with pytest.raises(GraphError):
            parity_edge_assignment(cycle_graph(4), [0])

    def test_disconnected_rejected(self):
        with pytest.raises(GraphError):
            parity_edge_assignment(two_triangles(), [0, 3])

    def test_unknown_vertex_rejected(self):
        with pytest.raises(GraphError):
            parity_edge_assignment(path_graph(3), [0, 99])

    def test_star_centre_paths(self):
        g = star_graph(4)
        beta = parity_edge_assignment(g, ["x1", "x2"])
        assert verify_parity_assignment(g, ["x1", "x2"], beta)
        # Only the two chosen leaf edges flip.
        flipped = [edge for edge, value in beta.items() if value]
        assert len(flipped) == 2
