"""Unit tests for canonical forms."""

from repro.graphs import (
    canonical_form,
    canonical_key,
    complete_graph,
    cycle_graph,
    path_graph,
    six_cycle,
    star_graph,
    two_triangles,
)


def test_isomorphic_graphs_same_key():
    g = cycle_graph(5)
    h = g.relabelled({i: f"v{i}" for i in range(5)})
    assert canonical_key(g) == canonical_key(h)


def test_non_isomorphic_graphs_different_key():
    assert canonical_key(six_cycle()) != canonical_key(two_triangles())
    assert canonical_key(path_graph(4)) != canonical_key(star_graph(3))


def test_regular_cospectral_like_pair():
    """C6 vs 2K3 defeat plain colour refinement; individualisation must
    separate them."""
    assert canonical_key(six_cycle()) != canonical_key(two_triangles())


def test_coloured_canonical_form():
    g = path_graph(3)
    a = canonical_form(g, {0: "x", 1: "y", 2: "x"})
    b = canonical_form(g, {0: "x", 1: "y", 2: "x"})
    c = canonical_form(g, {0: "y", 1: "x", 2: "x"})
    assert a == b
    assert a != c


def test_coloured_form_respects_relabelling():
    g = path_graph(3)
    h = g.relabelled({0: "a", 1: "b", 2: "c"})
    a = canonical_form(g, {0: "end", 1: "mid", 2: "end"})
    b = canonical_form(h, {"a": "end", "b": "mid", "c": "end"})
    assert a == b


def test_clique_canonical():
    assert canonical_key(complete_graph(4)) == canonical_key(
        complete_graph(4).relabelled({0: 9, 1: 8, 2: 7, 3: 6}),
    )


def test_key_distinguishes_sizes():
    assert canonical_key(path_graph(3)) != canonical_key(path_graph(4))


def test_key_for_edgeless():
    from repro.graphs import empty_graph

    assert canonical_key(empty_graph(3)) == canonical_key(empty_graph(3))
    assert canonical_key(empty_graph(3)) != canonical_key(empty_graph(4))
