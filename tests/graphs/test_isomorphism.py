"""Unit tests for isomorphism, coloured isomorphism, and automorphisms."""

from repro.graphs import (
    Graph,
    are_isomorphic,
    automorphism_count,
    automorphisms,
    complete_graph,
    cycle_graph,
    find_isomorphism,
    find_isomorphism_coloured,
    is_isomorphism,
    orbit_partition,
    path_graph,
    petersen_graph,
    six_cycle,
    star_graph,
    two_triangles,
)


class TestIsomorphism:
    def test_relabelled_graphs_isomorphic(self):
        g = cycle_graph(5)
        h = g.relabelled({i: f"v{i}" for i in range(5)})
        mapping = find_isomorphism(g, h)
        assert mapping is not None
        assert is_isomorphism(g, h, mapping)

    def test_different_sizes_not_isomorphic(self):
        assert not are_isomorphic(path_graph(3), path_graph(4))

    def test_same_degree_sequence_not_isomorphic(self):
        # C6 and 2K3 share the degree sequence but are not isomorphic.
        assert not are_isomorphic(six_cycle(), two_triangles())

    def test_path_vs_star(self):
        assert not are_isomorphic(path_graph(4), star_graph(3))

    def test_self_isomorphic(self):
        g = petersen_graph()
        assert are_isomorphic(g, g.copy())

    def test_empty_graphs(self):
        assert are_isomorphic(Graph(), Graph())

    def test_k4_permutation(self):
        g = complete_graph(4)
        h = g.relabelled({0: 3, 1: 2, 2: 1, 3: 0})
        assert are_isomorphic(g, h)


class TestColouredIsomorphism:
    def test_colours_constrain(self):
        g = path_graph(3)  # 0-1-2
        h = path_graph(3)
        ends = {0: "end", 1: "mid", 2: "end"}
        assert find_isomorphism_coloured(g, h, ends, ends) is not None
        twisted = {0: "mid", 1: "end", 2: "end"}
        assert find_isomorphism_coloured(g, h, ends, twisted) is None

    def test_coloured_histogram_mismatch(self):
        g = path_graph(2)
        a = {0: "r", 1: "r"}
        b = {0: "r", 1: "b"}
        assert find_isomorphism_coloured(g, g, a, b) is None


class TestAutomorphisms:
    def test_cycle_automorphism_count(self):
        # Dihedral group: |Aut(C_n)| = 2n.
        assert automorphism_count(cycle_graph(5)) == 10
        assert automorphism_count(cycle_graph(6)) == 12

    def test_complete_graph_automorphisms(self):
        # Symmetric group: n!.
        assert automorphism_count(complete_graph(4)) == 24

    def test_path_automorphisms(self):
        assert automorphism_count(path_graph(4)) == 2

    def test_star_automorphisms(self):
        # Leaves permute freely: k!.
        assert automorphism_count(star_graph(3)) == 6

    def test_petersen_automorphisms(self):
        # |Aut(Petersen)| = 120.
        assert automorphism_count(petersen_graph()) == 120

    def test_identity_always_present(self):
        g = path_graph(3)
        identity = {v: v for v in g.vertices()}
        assert identity in list(automorphisms(g))

    def test_coloured_automorphisms_restricted(self):
        g = cycle_graph(4)
        colours = {0: "a", 1: "b", 2: "a", 3: "b"}
        count = automorphism_count(g, colours)
        # Only rotations by 2 and the two reflections fixing the classes: 4.
        assert count == 4


class TestOrbits:
    def test_vertex_transitive(self):
        orbits = orbit_partition(cycle_graph(5))
        assert len(orbits) == 1
        assert len(next(iter(orbits))) == 5

    def test_star_orbits(self):
        orbits = orbit_partition(star_graph(3))
        sizes = sorted(len(o) for o in orbits)
        assert sizes == [1, 3]  # centre and leaves

    def test_path_orbits(self):
        orbits = orbit_partition(path_graph(4))
        sizes = sorted(len(o) for o in orbits)
        assert sizes == [2, 2]


class TestIsIsomorphismValidation:
    def test_rejects_wrong_domain(self):
        g = path_graph(3)
        assert not is_isomorphism(g, g, {0: 0, 1: 1})

    def test_rejects_non_bijective(self):
        g = path_graph(3)
        assert not is_isomorphism(g, g, {0: 0, 1: 0, 2: 2})

    def test_rejects_non_edge_preserving(self):
        g = path_graph(3)
        assert not is_isomorphism(g, g, {0: 0, 1: 2, 2: 1})

    def test_predicate_hook(self):
        g = path_graph(3)
        identity = {v: v for v in g.vertices()}
        assert is_isomorphism(g, g, identity, predicate=lambda a, b: a == b)
        assert not is_isomorphism(
            g, g, identity, predicate=lambda a, b: a != b,
        )
