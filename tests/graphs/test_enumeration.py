"""Unit tests for exhaustive small-graph enumeration.

Counts are checked against OEIS: A000088 (graphs), A001349 (connected
graphs), A000055 (trees).
"""

from repro.graphs import are_isomorphic, path_graph, star_graph
from repro.graphs.enumeration import (
    all_connected_graphs_up_to_iso,
    all_graphs_up_to_iso,
    all_trees_up_to_iso,
    graphs_with_property,
)


def test_graph_counts_match_oeis():
    # A000088: 1, 2, 4, 11, 34 for n = 1..5
    assert sum(1 for _ in all_graphs_up_to_iso(1)) == 1
    assert sum(1 for _ in all_graphs_up_to_iso(2)) == 2
    assert sum(1 for _ in all_graphs_up_to_iso(3)) == 4
    assert sum(1 for _ in all_graphs_up_to_iso(4)) == 11


def test_graph_count_five_vertices():
    assert sum(1 for _ in all_graphs_up_to_iso(5)) == 34


def test_connected_counts_match_oeis():
    # A001349: 1, 1, 2, 6, 21 for n = 1..5
    assert sum(1 for _ in all_connected_graphs_up_to_iso(3)) == 2
    assert sum(1 for _ in all_connected_graphs_up_to_iso(4)) == 6
    assert sum(1 for _ in all_connected_graphs_up_to_iso(5)) == 21


def test_tree_counts_match_oeis():
    # A000055: 1, 1, 1, 2, 3, 6 for n = 1..6
    assert sum(1 for _ in all_trees_up_to_iso(4)) == 2
    assert sum(1 for _ in all_trees_up_to_iso(5)) == 3
    assert sum(1 for _ in all_trees_up_to_iso(6)) == 6


def test_trees_are_trees():
    for tree in all_trees_up_to_iso(5):
        assert tree.num_edges() == tree.num_vertices() - 1
        assert tree.is_connected()


def test_enumeration_contains_path_and_star():
    trees4 = list(all_trees_up_to_iso(4))
    assert any(are_isomorphic(t, path_graph(4)) for t in trees4)
    assert any(are_isomorphic(t, star_graph(3)) for t in trees4)


def test_graphs_with_property_filters():
    triangles = list(
        graphs_with_property(
            4,
            lambda g: g.num_edges() == 3 and g.is_connected() and g.num_vertices() == 3,
        ),
    )
    assert len(triangles) == 1


def test_enumeration_yields_distinct_classes():
    graphs = list(all_graphs_up_to_iso(4))
    for i, a in enumerate(graphs):
        for b in graphs[i + 1:]:
            assert not are_isomorphic(a, b)
