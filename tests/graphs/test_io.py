"""Unit tests for graph6 and edge-list serialisation."""

import pytest

from repro.errors import GraphError
from repro.graphs import (
    Graph,
    are_isomorphic,
    complete_graph,
    cycle_graph,
    path_graph,
    petersen_graph,
    random_graph,
)
from repro.graphs.io import from_edge_list, from_graph6, to_edge_list, to_graph6


class TestGraph6:
    def test_round_trip_small(self):
        for g in (path_graph(4), cycle_graph(5), complete_graph(4)):
            decoded = from_graph6(to_graph6(g))
            assert are_isomorphic(g, decoded)

    def test_round_trip_random(self):
        g = random_graph(9, 0.5, seed=99)
        assert are_isomorphic(g, from_graph6(to_graph6(g)))

    def test_known_encodings(self):
        # K3 on 3 vertices: standard graph6 string "Bw".
        assert to_graph6(complete_graph(3)) == "Bw"
        # Empty graph on one vertex: "@".
        assert to_graph6(Graph(vertices=[0])) == "@"

    def test_decode_known(self):
        g = from_graph6("Bw")
        assert g.num_vertices() == 3
        assert g.num_edges() == 3

    def test_petersen_round_trip(self):
        g = petersen_graph()
        assert are_isomorphic(g, from_graph6(to_graph6(g)))

    def test_empty_string_rejected(self):
        with pytest.raises(GraphError):
            from_graph6("")

    def test_invalid_character_rejected(self):
        with pytest.raises(GraphError):
            from_graph6("B\x01")

    def test_truncated_rejected(self):
        with pytest.raises(GraphError):
            from_graph6("I")  # header says 10 vertices, no bits follow

    def test_too_large_rejected(self):
        g = Graph(vertices=range(63))
        with pytest.raises(GraphError):
            to_graph6(g)


class TestEdgeList:
    def test_round_trip(self):
        g = cycle_graph(5)
        g.add_vertex(99)  # isolated vertex must survive
        restored = from_edge_list(to_edge_list(g))
        assert restored == g

    def test_string_labels(self):
        g = Graph(edges=[("a", "b"), ("b", "c")])
        restored = from_edge_list(to_edge_list(g))
        assert restored == g

    def test_comments_ignored(self):
        text = "# a comment\ne 1 2\n"
        g = from_edge_list(text)
        assert g.has_edge(1, 2)

    def test_unknown_line_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list("x 1 2\n")

    def test_unsupported_label_rejected(self):
        with pytest.raises(GraphError):
            from_edge_list("e 1.5 2\n")
