"""End-to-end health semantics over HTTP: 503 on failure, 200 on recovery.

These tests break the running service on purpose (stop its scheduler,
make its store unwritable) and assert the health endpoints carry a
structured, actionable reason — then recover it and assert the verdict
flips back without a restart.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.engine import set_default_engine
from repro.graphs import cycle_graph, random_graph
from repro.service import BackgroundServer, ServiceClient, ServiceError


@pytest.fixture(autouse=True)
def _restore_default_engine():
    yield
    set_default_engine(None)


@pytest.fixture
def server(tmp_path):
    # A real data_dir so the store-write probe exercises actual disk I/O.
    with BackgroundServer(
        workers=2, max_queue=32, data_dir=str(tmp_path / "store"),
    ) as running:
        ServiceClient(port=running.port).wait_ready()
        yield running


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port)


def _call_on_loop(server, coroutine):
    """Run a coroutine on the background server's own event loop."""
    return asyncio.run_coroutine_threadsafe(coroutine, server._loop).result(
        timeout=10.0,
    )


class TestHealthEndpoints:
    def test_healthy_service_reports_200_everywhere(self, client):
        status, payload = client.healthz()
        assert status == 200
        assert payload["kind"] == "healthz"
        assert payload["status"] == "ok"
        assert payload["reasons"] == {}
        expected_probes = {
            "event-loop", "gc-pause", "memory", "scheduler-workers",
            "scheduler-queue", "store-write", "dynamic-journal",
        }
        assert expected_probes <= set(payload["probes"])

        status, ready = client.readyz()
        assert status == 200
        assert ready["ready"] is True
        assert ready["datasets"] == 0

    def test_wait_ready_returns_the_readiness_payload(self, client):
        payload = client.wait_ready(timeout=5.0)
        assert payload["kind"] == "readyz" and payload["ready"] is True

    def test_scheduler_stop_flips_healthz_to_503_and_back(
        self, server, client,
    ):
        _call_on_loop(server, server.service.scheduler.stop())
        status, payload = client.healthz()
        assert status == 503
        assert payload["status"] == "failing"
        assert payload["reasons"]["scheduler-workers"] == (
            "scheduler is not running"
        )
        status, ready = client.readyz()
        assert status == 503 and ready["ready"] is False

        _call_on_loop(server, server.service.scheduler.start())
        status, payload = client.healthz()
        assert status == 200 and payload["status"] == "ok"
        assert client.readyz()[0] == 200
        # and the service still actually serves work
        client.register_graph("g", cycle_graph(5))
        assert client.count(cycle_graph(3), "g")["count"] == 0

    def test_unwritable_store_flips_healthz_to_503_and_back(
        self, server, client, monkeypatch,
    ):
        def refuse():
            raise OSError(28, "No space left on device")

        monkeypatch.setattr(server.service.store, "write_probe", refuse)
        status, payload = client.healthz()
        assert status == 503
        assert payload["status"] == "failing"
        assert "store write failed" in payload["reasons"]["store-write"]
        assert client.readyz()[0] == 503

        monkeypatch.undo()
        status, payload = client.healthz()
        assert status == 200 and payload["status"] == "ok"

    def test_health_route_stays_byte_compatible(self, client):
        payload = client.health()
        assert payload["kind"] == "health"
        assert payload["status"] == "ok"


class TestSloAndAlertsPayloads:
    def test_slo_payload_schema(self, client):
        client.register_graph("g", random_graph(10, 0.3, seed=3))
        for _ in range(3):
            client.count(cycle_graph(3), "g")
        payload = client.slo()
        assert payload["kind"] == "slo"
        assert payload["enabled"] is True
        assert isinstance(payload["objectives"], list)
        for status in payload["objectives"]:
            assert {
                "objective", "key", "kind", "events", "ok", "burn_rate",
            } <= set(status)
        windows = payload["windows"]
        # route-level and task-kind-level observations share the space
        assert "count" in windows and "hom-count" in windows
        for summary in windows.values():
            assert {
                "count", "errors", "error_rate", "p50_ms", "p99_ms",
                "window_seconds",
            } == set(summary)
        # meta routes must not burn SLO budget
        assert "healthz" not in windows and "stats" not in windows

    def test_alerts_payload_schema_and_quiet_baseline(self, client):
        payload = client.alerts()
        assert payload["kind"] == "alerts"
        assert payload["firing"] == []
        names = {alert["name"] for alert in payload["alerts"]}
        assert {
            "probe:event-loop", "probe:scheduler-workers", "probe:memory",
            "probe:store-write", "scheduler-queue-saturation",
        } <= names
        for alert in payload["alerts"]:
            assert {"name", "severity", "firing", "value", "reason"} <= set(
                alert,
            )
            assert alert["firing"] is False

    def test_scheduler_death_raises_an_alert(self, server, client):
        _call_on_loop(server, server.service.scheduler.stop())
        try:
            payload = client.alerts()
            assert "probe:scheduler-workers" in payload["firing"]
            (alert,) = [
                a for a in payload["alerts"]
                if a["name"] == "probe:scheduler-workers"
            ]
            assert alert["severity"] == "page"
            assert alert["for_seconds"] >= 0.0
        finally:
            _call_on_loop(server, server.service.scheduler.start())
        assert "probe:scheduler-workers" not in client.alerts()["firing"]

    def test_metrics_exposition_includes_health_families(self, client):
        client.healthz()  # ensure at least one verdict has been computed
        text = client.request_text("GET", "/metrics")
        assert "repro_health_probe_status" in text
        assert "repro_alerts_firing" in text
        assert "repro_scheduler_workers_alive" in text


class TestCliIntegration:
    def test_repro_health_wait_gates_on_readiness(self, server, capsys):
        from repro.cli import main

        rc = main(["health", "--port", str(server.port), "--wait", "10"])
        assert rc == 0
        assert "ready" in capsys.readouterr().out

    def test_repro_health_exits_nonzero_when_failing(self, server, capsys):
        from repro.cli import main

        _call_on_loop(server, server.service.scheduler.stop())
        try:
            rc = main(["health", "--port", str(server.port)])
            assert rc == 1
            out = capsys.readouterr().out
            assert "failing" in out and "scheduler is not running" in out
        finally:
            _call_on_loop(server, server.service.scheduler.start())
        assert main(["health", "--port", str(server.port)]) == 0

    def test_repro_top_json_one_shot(self, server, capsys):
        import json

        from repro.cli import main

        rc = main(["top", "--port", str(server.port), "--json"])
        assert rc == 0
        snap = json.loads(capsys.readouterr().out)
        assert snap["kind"] == "top"
        assert snap["healthz_status"] == 200
        assert snap["health"]["status"] == "ok"
        assert snap["slo"]["kind"] == "slo"
        assert snap["alerts"]["kind"] == "alerts"
        assert "/healthz" in snap["stats"]["requests"]

    def test_repro_top_plain_frames(self, server, capsys):
        from repro.cli import main

        rc = main([
            "top", "--port", str(server.port),
            "--plain", "--count", "2", "--interval", "0.05",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert out.count("repro top —") == 2
        assert "scheduler" in out and "probes:" in out
        assert "\x1b[" not in out  # --plain means no ANSI at all
