"""The KG → engine reduction: gadget encoding equals brute enumeration."""

from __future__ import annotations

import random

import pytest

from repro.engine import HomEngine
from repro.kg import (
    KgQuery,
    KnowledgeGraph,
    count_kg_answers,
    count_kg_answers_brute,
    count_kg_answers_engine,
    count_kg_homomorphisms,
    count_kg_homomorphisms_engine,
    encode_kg,
    kg_query_from_triples,
)


def random_kg(rng, num_vertices, num_triples, labelled=True):
    labels = [None, "P", "Q"] if labelled else [None]
    edge_labels = ["r", "s"]
    kg = KnowledgeGraph(
        vertices={i: rng.choice(labels) for i in range(num_vertices)},
    )
    for _ in range(num_triples):
        if num_vertices < 2:
            break
        source, target = rng.sample(range(num_vertices), 2)
        kg.add_edge(source, rng.choice(edge_labels), target)
    return kg


class TestEncoding:
    def test_gadget_shape(self):
        kg = KnowledgeGraph(triples=[("a", "r", "b")])
        encoding = encode_kg(kg)
        # 2 KG vertices + 2 midpoints, 3 gadget edges
        assert encoding.graph.num_vertices() == 4
        assert encoding.graph.num_edges() == 3
        assert encoding.all_vertices == frozenset({("v", "a"), ("v", "b")})
        assert encoding.head_pools["r"] == frozenset({("a", "a", "r", "b")})

    def test_direction_is_enforced(self):
        forward = KnowledgeGraph(triples=[("a", "r", "b")])
        pattern = KnowledgeGraph(triples=[("x", "r", "y")])
        # one hom forward; the reversed pattern edge has none
        assert count_kg_homomorphisms_engine(pattern, forward, engine=HomEngine()) == 1
        backward = KnowledgeGraph(triples=[("y", "r", "x")])
        assert (
            count_kg_homomorphisms_engine(
                backward, forward, fixed={"y": "b", "x": "a"}, engine=HomEngine(),
            )
            == 0
        )

    def test_edge_labels_are_enforced(self):
        target = KnowledgeGraph(triples=[("a", "r", "b")])
        wrong_label = KnowledgeGraph(triples=[("x", "s", "y")])
        assert count_kg_homomorphisms_engine(wrong_label, target, engine=HomEngine()) == 0

    def test_vertex_labels_are_enforced(self):
        target = KnowledgeGraph(
            vertices={"a": "P", "b": "Q"}, triples=[("a", "r", "b")],
        )
        pattern = KnowledgeGraph(
            vertices={"x": "Q", "y": "Q"}, triples=[("x", "r", "y")],
        )
        assert count_kg_homomorphisms_engine(pattern, target, engine=HomEngine()) == 0
        wildcard = KnowledgeGraph(
            vertices={"x": None, "y": "Q"}, triples=[("x", "r", "y")],
        )
        assert count_kg_homomorphisms_engine(wildcard, target, engine=HomEngine()) == 1


class TestAgainstBrute:
    @pytest.mark.parametrize("seed", range(12))
    def test_hom_counts_match(self, seed):
        rng = random.Random(seed)
        target = random_kg(rng, rng.randint(2, 6), rng.randint(0, 8))
        pattern = random_kg(rng, rng.randint(1, 3), rng.randint(0, 3))
        assert (
            count_kg_homomorphisms_engine(pattern, target, engine=HomEngine())
            == count_kg_homomorphisms(pattern, target)
        )

    @pytest.mark.parametrize("seed", range(8))
    def test_answer_counts_match(self, seed):
        rng = random.Random(100 + seed)
        target = random_kg(rng, rng.randint(2, 5), rng.randint(0, 6))
        pattern = random_kg(rng, rng.randint(1, 3), rng.randint(0, 3))
        free = rng.sample(pattern.vertices(), rng.randint(0, pattern.num_vertices()))
        query = KgQuery(pattern, free)
        assert (
            count_kg_answers_engine(query, target, engine=HomEngine())
            == count_kg_answers_brute(query, target)
        )

    def test_fixed_assignments_match(self):
        rng = random.Random(77)
        target = random_kg(rng, 5, 7)
        pattern = random_kg(rng, 3, 3)
        fixed_vertex = pattern.vertices()[0]
        for image in target.vertices():
            fixed = {fixed_vertex: image}
            assert (
                count_kg_homomorphisms_engine(
                    pattern, target, fixed=fixed, engine=HomEngine(),
                )
                == count_kg_homomorphisms(pattern, target, fixed=fixed)
            )


class TestDefaultRoute:
    def test_count_kg_answers_default_is_engine(self):
        kg = KnowledgeGraph(
            vertices={"u1": "User", "u2": "User", "m": "Item"},
            triples=[("u1", "likes", "m"), ("u2", "likes", "m")],
        )
        query = kg_query_from_triples(
            [("x", "likes", "z"), ("y", "likes", "z")], ["x", "y"],
        )
        assert count_kg_answers(query, kg) == count_kg_answers(query, kg, method="brute")

    def test_unknown_method_rejected(self):
        from repro.errors import QueryError

        kg = KnowledgeGraph(triples=[("a", "r", "b")])
        query = kg_query_from_triples([("x", "r", "y")], ["x"])
        with pytest.raises(QueryError):
            count_kg_answers(query, kg, method="quantum")

    def test_repeated_queries_are_cache_hits(self):
        engine = HomEngine()
        kg = KnowledgeGraph(
            vertices={i: "P" for i in range(4)},
            triples=[(0, "r", 1), (1, "r", 2), (2, "r", 3), (0, "r", 3)],
        )
        query = kg_query_from_triples([("x", "r", "y")], ["x"])
        first = count_kg_answers_engine(query, kg, engine=engine)
        compiled = engine.plans_compiled
        executed = engine.counts_executed
        second = count_kg_answers_engine(query, kg, engine=engine)
        assert first == second
        assert engine.plans_compiled == compiled
        assert engine.counts_executed == executed  # pure count-cache hits
