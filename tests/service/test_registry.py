"""Dataset registry: preprocessing, shards, and wire codecs."""

from __future__ import annotations

import pytest

from repro.engine import HomEngine
from repro.engine.cache import target_key
from repro.graphs import Graph, cycle_graph, path_graph, random_graph
from repro.graphs.operations import disjoint_union_many
from repro.kg import KnowledgeGraph
from repro.service.registry import (
    DatasetRegistry,
    RegistryError,
    component_shards,
)
from repro.service.wire import (
    WireError,
    graph_from_spec,
    graph_to_spec,
    kg_from_spec,
    kg_query_from_spec,
    kg_query_to_spec,
    kg_to_spec,
)


def multi_component_host() -> Graph:
    return disjoint_union_many(
        [random_graph(6, 0.5, seed=1), cycle_graph(5), path_graph(4), cycle_graph(4)],
    )


class TestComponentShards:
    def test_shards_partition_vertices(self):
        host = multi_component_host()
        shards = component_shards(host, 3)
        assert len(shards) == 3
        total = sum(shard.num_vertices() for shard in shards)
        assert total == host.num_vertices()

    def test_connected_pattern_count_sums_over_shards(self):
        host = multi_component_host()
        shards = component_shards(host, 3)
        engine = HomEngine()
        for pattern in (path_graph(3), cycle_graph(4)):
            whole = engine.count(pattern, host)
            sharded = sum(engine.count(pattern, shard) for shard in shards)
            assert sharded == whole

    def test_single_component_yields_one_shard(self):
        host = cycle_graph(7)
        assert component_shards(host, 4) == [host]


class TestRegistry:
    def test_register_precomputes_target_id(self):
        registry = DatasetRegistry()
        host = random_graph(10, 0.4, seed=5)
        dataset = registry.register_graph("hosts", host)
        assert dataset.target_id == target_key(host)
        # The dataset owns a versioned copy: equal content, but the
        # caller's graph can no longer mutate the served snapshot.
        assert registry.get("hosts").graph == host
        host.add_edge("fresh-a", "fresh-b")
        assert registry.get("hosts").graph != host
        assert registry.get("hosts").version == 0
        assert "hosts" in registry and len(registry) == 1

    def test_target_id_gives_identical_cache_entries(self):
        engine = HomEngine()
        host = random_graph(9, 0.4, seed=6)
        dataset = DatasetRegistry().register_graph("h", host)
        pattern = cycle_graph(4)
        first = engine.count(pattern, host, target_id=dataset.target_id)
        # the plain path must hit the same cache entry
        assert engine.cached_count(pattern, host) == first

    def test_unknown_and_wrong_kind_rejected(self):
        registry = DatasetRegistry()
        registry.register_graph("g", cycle_graph(4))
        with pytest.raises(RegistryError):
            registry.get("missing")
        with pytest.raises(RegistryError):
            registry.get("g", kind="kg")
        with pytest.raises(RegistryError):
            registry.register_graph("", cycle_graph(3))

    def test_kg_dataset_is_pre_encoded(self):
        registry = DatasetRegistry()
        kg = KnowledgeGraph(triples=[("a", "r", "b"), ("b", "s", "c")])
        dataset = registry.register_kg("knowledge", kg)
        assert dataset.kind == "kg"
        assert dataset.kg_encoding is not None
        # encoded gadget graph: 3 KG vertices + 2 midpoints per triple
        assert dataset.kg_encoding.graph.num_vertices() == 3 + 2 * 2
        assert dataset.summary()["triples"] == 2

    def test_replacing_a_dataset_changes_its_content_token(self):
        """Coalescing keys on the content token, so a re-registered name
        must not be able to join in-flight work on the old content."""
        registry = DatasetRegistry()
        first = registry.register_graph("hosts", random_graph(8, 0.4, seed=1))
        replaced = registry.register_graph("hosts", random_graph(8, 0.4, seed=2))
        assert first.content_token != replaced.content_token
        # idempotent re-registration (restart pattern) keeps the token
        again = registry.register_graph("hosts", random_graph(8, 0.4, seed=2))
        assert again.content_token == replaced.content_token

    def test_kg_content_token_sees_vertex_labels(self):
        registry = DatasetRegistry()
        triples = [("a", "r", "b")]
        plain = registry.register_kg(
            "k", KnowledgeGraph(triples=triples),
        )
        labelled = registry.register_kg(
            "k", KnowledgeGraph(vertices={"a": "P", "b": None}, triples=triples),
        )
        assert plain.content_token != labelled.content_token

    def test_summary_sorted_by_name(self):
        registry = DatasetRegistry()
        registry.register_graph("zebra", cycle_graph(3))
        registry.register_graph("alpha", cycle_graph(4))
        assert [d["name"] for d in registry.summary()] == ["alpha", "zebra"]


class TestWireCodecs:
    def test_graph_round_trip_graph6(self):
        graph = random_graph(9, 0.5, seed=8)
        spec = graph_to_spec(graph)
        assert "graph6" in spec
        decoded = graph_from_spec(spec)
        assert decoded.num_vertices() == graph.num_vertices()
        assert decoded.num_edges() == graph.num_edges()

    def test_graph_edge_list_spec(self):
        decoded = graph_from_spec(
            {"vertices": ["a", "b", "c", "d"], "edges": [["a", "b"], ["b", "c"]]},
        )
        assert decoded.num_vertices() == 4
        assert decoded.has_edge("a", "b")

    def test_bad_specs_rejected(self):
        with pytest.raises(WireError):
            graph_from_spec("not an object")
        with pytest.raises(WireError):
            graph_from_spec({})
        with pytest.raises(WireError):
            graph_from_spec({"edges": [["a", "b", "c"]]})

    def test_kg_round_trip(self):
        kg = KnowledgeGraph(
            vertices={"a": "P", "b": None},
            triples=[("a", "r", "b")],
        )
        decoded = kg_from_spec(kg_to_spec(kg))
        assert decoded.num_vertices() == 2
        assert decoded.vertex_label("a") == "P"
        assert decoded.has_edge("a", "r", "b")

    def test_kg_query_round_trip(self):
        spec = {
            "vertices": [["x", None], ["y", None], ["z", "Item"]],
            "triples": [["x", "likes", "z"], ["y", "likes", "z"]],
            "free": ["x", "y"],
        }
        query = kg_query_from_spec(spec)
        assert query.free_variables == frozenset({"x", "y"})
        back = kg_query_to_spec(query)
        assert back["free"] == ["x", "y"]
        assert sorted(map(tuple, back["triples"])) == [
            ("x", "likes", "z"), ("y", "likes", "z"),
        ]
