"""The persistent cache tier: digests, round-trips, warm restarts."""

from __future__ import annotations

import os

from repro.engine import HomEngine
from repro.engine.cache import pattern_key, restriction_key, target_key
from repro.graphs import cycle_graph, path_graph, random_graph
from repro.service.store import PersistentStore, stable_key_digest


class TestStableDigest:
    def test_frozenset_order_independent(self):
        key_a = frozenset({("x", 1), ("y", 2), ("z", 3)})
        key_b = frozenset([("z", 3), ("x", 1), ("y", 2)])
        assert stable_key_digest(key_a) == stable_key_digest(key_b)

    def test_distinguishes_types(self):
        assert stable_key_digest((1,)) != stable_key_digest(("1",))
        assert stable_key_digest([1, 2]) != stable_key_digest((1, 2))

    def test_real_cache_keys(self):
        graph = random_graph(8, 0.4, seed=1)
        key = (pattern_key(cycle_graph(5)), target_key(graph), restriction_key(None))
        assert stable_key_digest(key) == stable_key_digest(key)
        other = (pattern_key(cycle_graph(6)), target_key(graph), restriction_key(None))
        assert stable_key_digest(key) != stable_key_digest(other)

    def test_digest_survives_reserialisation(self):
        # Rebuilding the logically identical key from scratch (fresh
        # frozensets, fresh tuples) must land on the same digest.
        first = target_key(random_graph(9, 0.5, seed=3))
        second = target_key(random_graph(9, 0.5, seed=3))
        assert stable_key_digest(first) == stable_key_digest(second)


class TestPersistentStore:
    def test_count_round_trip(self, tmp_path):
        store = PersistentStore(tmp_path)
        key = ("k", frozenset({1, 2, 3}))
        assert store.load_count(key) is None
        store.save_count(key, 42)
        assert store.load_count(key) == 42
        # a second store on the same directory sees the entry
        reopened = PersistentStore(tmp_path)
        assert reopened.load_count(key) == 42
        assert reopened.stats.count_hits == 1

    def test_plan_round_trip(self, tmp_path):
        from repro.engine.plans import compile_plan

        store = PersistentStore(tmp_path)
        key = ("plan-key",)
        assert store.load_plan(key) is None
        plan = compile_plan(path_graph(4))
        store.save_plan(key, plan)
        loaded = PersistentStore(tmp_path).load_plan(key)
        host = random_graph(7, 0.5, seed=2)
        assert loaded.execute(host) == plan.execute(host)

    def test_torn_count_line_tolerated(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.save_count(("a",), 7)
        with open(os.path.join(store.path, "counts.jsonl"), "a") as handle:
            handle.write('{"key": "trunc')  # simulated crash mid-write
        reopened = PersistentStore(tmp_path)
        assert reopened.load_count(("a",)) == 7

    def test_torn_tail_never_merges_into_valid_line(self, tmp_path):
        """The crash-mid-write corruption: a torn fragment that is a
        *prefix of a valid record* must not concatenate with the next
        append into one syntactically valid line carrying a wrong value."""
        store = PersistentStore(tmp_path)
        store.save_count(("victim",), 7)
        victim_digest = stable_key_digest(("victim",))
        with open(os.path.join(store.path, "counts.jsonl"), "a") as handle:
            # A writer died after emitting a complete-looking prefix:
            # '{"key": "<victim>", "value": 99' — if the next append glues
            # straight onto it, json.loads would accept the merged line.
            handle.write('{"key": "%s", "value": 99' % victim_digest)
        writer = PersistentStore(tmp_path)
        writer.save_count(("other",), 3)
        # Every fresh reader agrees: the victim keeps its committed value
        # and the torn 99 never becomes visible.
        reopened = PersistentStore(tmp_path)
        assert reopened.load_count(("victim",)) == 7
        assert reopened.load_count(("other",)) == 3

    def test_refresh_sees_other_process_writes(self, tmp_path):
        """Two stores on one directory (the cluster's workers): a value
        saved through one is served by the other without reopening."""
        writer = PersistentStore(tmp_path)
        reader = PersistentStore(tmp_path)
        assert reader.load_count(("shared",)) is None
        writer.save_count(("shared",), 11)
        assert reader.load_count(("shared",)) == 11  # refresh-on-miss
        assert reader.refreshes >= 1
        # Growth check: a miss on an unchanged file must not rescan.
        before = reader.refreshes
        assert reader.load_count(("absent",)) is None
        assert reader.refreshes == before

    def test_concurrent_writers_interleave_cleanly(self, tmp_path):
        """Many threads over two store instances (worst case for append
        interleaving): every committed entry must read back exactly."""
        import threading

        stores = [PersistentStore(tmp_path), PersistentStore(tmp_path)]
        errors: list[Exception] = []

        def write(store, base):
            try:
                for i in range(50):
                    store.save_count((base, i), base * 1000 + i)
            except Exception as error:  # pragma: no cover
                errors.append(error)

        threads = [
            threading.Thread(target=write, args=(stores[t % 2], t))
            for t in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        fresh = PersistentStore(tmp_path)
        for t in range(4):
            for i in range(50):
                assert fresh.load_count((t, i)) == t * 1000 + i

    def test_summary_is_cachestats_compatible(self, tmp_path):
        store = PersistentStore(tmp_path)
        store.save_count(("a",), 1)
        store.load_count(("a",))
        store.load_count(("b",))
        report = store.summary()
        # same vocabulary as CacheStats.snapshot()
        for field in (
            "plan_hits", "plan_misses", "count_hits", "count_misses",
            "count_requests", "count_hit_rate",
        ):
            assert field in report
        assert report["count_hits"] == 1
        assert report["count_misses"] == 1
        assert report["counts_stored"] == 1


class TestEngineWithStore:
    def test_warm_restart_zero_recompute(self, tmp_path):
        """Write, 'restart' (fresh engine, same dir), warm hit, zero work."""
        pattern = cycle_graph(6)
        hosts = [random_graph(10, 0.35, seed=40 + i) for i in range(4)]

        cold = HomEngine(store=PersistentStore(tmp_path))
        expected = [cold.count(pattern, host) for host in hosts]
        assert cold.plans_compiled == 1
        assert cold.counts_executed == len(hosts)

        warm = HomEngine(store=PersistentStore(tmp_path))
        got = [warm.count(pattern, host) for host in hosts]
        assert got == expected
        assert warm.plans_compiled == 0
        assert warm.counts_executed == 0
        summary = warm.stats_summary()
        assert summary["persistent_count_hits"] == len(hosts)

    def test_plan_tier_survives_without_counts(self, tmp_path):
        """A NEW target with a KNOWN pattern recomputes the count but not
        the plan — the plan arrives from disk."""
        pattern = path_graph(6)
        first = HomEngine(store=PersistentStore(tmp_path))
        first.count(pattern, random_graph(9, 0.4, seed=1))
        assert first.plans_compiled == 1

        second = HomEngine(store=PersistentStore(tmp_path))
        fresh_host = random_graph(9, 0.4, seed=2)
        value = second.count(pattern, fresh_host)
        assert value == HomEngine().count(pattern, fresh_host)
        assert second.plans_compiled == 0
        assert second.counts_executed == 1
        assert second.stats_summary()["persistent_plan_hits"] == 1

    def test_restricted_counts_round_trip(self, tmp_path):
        pattern = path_graph(3)
        host = random_graph(8, 0.5, seed=9)
        allowed = {
            v: frozenset(w for w in host.vertices() if isinstance(w, int) and w % 2 == 0)
            for v in pattern.vertices()
        }
        first = HomEngine(store=PersistentStore(tmp_path))
        value = first.count(pattern, host, allowed=allowed)
        second = HomEngine(store=PersistentStore(tmp_path))
        assert second.count(pattern, host, allowed=allowed) == value
        assert second.counts_executed == 0
