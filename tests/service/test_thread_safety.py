"""Hammer one engine from many threads; counts must match the oracle and
the cache statistics must stay arithmetically consistent."""

from __future__ import annotations

import random
import threading
from concurrent.futures import ThreadPoolExecutor

from repro.engine import HomEngine
from repro.graphs import cycle_graph, path_graph, random_graph, star_graph
from repro.homs.brute_force import count_homomorphisms_brute


def _workload():
    patterns = [path_graph(3), path_graph(4), cycle_graph(4), star_graph(3)]
    targets = [random_graph(8, 0.4, seed=70 + i) for i in range(6)]
    pairs = [(p, t) for p in patterns for t in targets]
    oracle = {
        index: count_homomorphisms_brute(pattern, target)
        for index, (pattern, target) in enumerate(pairs)
    }
    return pairs, oracle


class TestThreadSafety:
    def test_concurrent_counts_match_oracle(self):
        pairs, oracle = _workload()
        engine = HomEngine()
        jobs = list(range(len(pairs))) * 8  # every pair, from many threads
        rng = random.Random(5)
        rng.shuffle(jobs)
        results: dict[int, set] = {index: set() for index in oracle}
        barrier = threading.Barrier(8)

        def run(chunk) -> None:
            barrier.wait()  # maximise contention on the cold caches
            for index in chunk:
                pattern, target = pairs[index]
                results[index].add(engine.count(pattern, target))

        chunks = [jobs[i::8] for i in range(8)]
        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(run, chunks))

        for index, values in results.items():
            assert values == {oracle[index]}, f"pair {index} diverged: {values}"

    def test_stats_consistent_under_contention(self):
        pairs, oracle = _workload()
        engine = HomEngine()
        total_calls = len(pairs) * 8

        def run(index) -> int:
            pattern, target = pairs[index % len(pairs)]
            return engine.count(pattern, target)

        with ThreadPoolExecutor(max_workers=8) as pool:
            list(pool.map(run, range(total_calls)))

        stats = engine.stats_summary()
        # Every call probes the count cache exactly once.
        assert stats["count_requests"] == total_calls
        assert stats["count_hits"] + stats["count_misses"] == total_calls
        # Plan probes happen only on count-cache misses.
        assert stats["plan_requests"] == stats["count_misses"]
        # Racing threads may compile a plan twice, but never more than one
        # compilation per plan-cache miss, and at least one per pattern.
        assert 4 <= stats["plans_compiled"] <= stats["plan_misses"]
        assert stats["counts_executed"] == stats["count_misses"]

    def test_concurrent_restricted_and_batch_calls(self):
        engine = HomEngine()
        pattern = path_graph(3)
        targets = [random_graph(7, 0.5, seed=90 + i) for i in range(4)]
        allowed = {
            v: frozenset(range(0, 7, 2)) for v in pattern.vertices()
        }
        expected_plain = [
            count_homomorphisms_brute(pattern, t) for t in targets
        ]
        expected_restricted = [
            count_homomorphisms_brute(pattern, t, allowed=allowed)
            for t in targets
        ]

        def plain() -> list[int]:
            (row,) = engine.count_batch([pattern], targets)
            return row

        def restricted() -> list[int]:
            return [
                engine.count(pattern, t, allowed=allowed) for t in targets
            ]

        with ThreadPoolExecutor(max_workers=6) as pool:
            futures = [
                pool.submit(plain) if i % 2 == 0 else pool.submit(restricted)
                for i in range(12)
            ]
            for i, future in enumerate(futures):
                expected = expected_plain if i % 2 == 0 else expected_restricted
                assert future.result() == expected
