"""End-to-end service tests over a real loopback HTTP socket."""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import set_default_engine
from repro.graphs import cycle_graph, grid_graph, path_graph, random_graph
from repro.graphs.operations import disjoint_union_many
from repro.homs.brute_force import count_homomorphisms_brute
from repro.kg import KnowledgeGraph, count_kg_answers_brute, kg_query_from_triples
from repro.queries.answers import count_answers
from repro.queries.parser import parse_query
from repro.service import BackgroundServer, ServiceClient, ServiceError


@pytest.fixture(autouse=True)
def _restore_default_engine():
    yield
    set_default_engine(None)


@pytest.fixture
def server():
    with BackgroundServer(workers=2, max_queue=32) as running:
        # readiness gate, not a timing assumption: the suite starts
        # talking to the service only once /readyz says it is ready
        ServiceClient(port=running.port).wait_ready()
        yield running


@pytest.fixture
def client(server):
    return ServiceClient(port=server.port)


class TestEndToEnd:
    def test_health_and_stats(self, client):
        assert client.health()["status"] == "ok"
        stats = client.stats()
        assert stats["kind"] == "stats"
        assert "engine" in stats and "scheduler" in stats

    def test_count_on_registered_dataset(self, client):
        host = random_graph(11, 0.35, seed=21)
        dataset = client.register_graph("hosts", host)
        assert dataset == {
            "name": "hosts", "kind": "graph",
            "vertices": 11, "edges": host.num_edges(), "shards": 1,
            "version": 0, "subscriptions": 0,
        }
        pattern = cycle_graph(5)
        response = client.count(pattern, "hosts")
        assert response["count"] == count_homomorphisms_brute(pattern, host)
        assert response["plan"].startswith("matrix")

    def test_count_inline_target(self, client):
        host = random_graph(8, 0.5, seed=3)
        response = client.count(path_graph(4), host)
        assert response["count"] == count_homomorphisms_brute(path_graph(4), host)

    def test_sharded_dataset_count_is_exact(self, client):
        host = disjoint_union_many(
            [random_graph(6, 0.5, seed=2), cycle_graph(6), path_graph(5)],
        )
        dataset = client.register_graph("sharded", host, shards=3)
        assert dataset["shards"] == 3
        pattern = path_graph(3)
        response = client.count(pattern, "sharded")
        assert response["shards"] == 3
        assert response["count"] == count_homomorphisms_brute(pattern, host)

    def test_count_answers_cq(self, client):
        host = random_graph(9, 0.4, seed=17)
        client.register_graph("g9", host)
        text = "q(x1, x2) :- E(x1, y), E(x2, y)"
        response = client.count_answers(text, "g9")
        assert response["count"] == count_answers(parse_query(text), host)
        assert response["method"] == "interpolation"
        assert response["target"] == "g9"

    def test_count_answers_boolean(self, client):
        response = client.count_answers("q() :- E(x, y)", cycle_graph(4))
        assert response["count"] == 1
        assert response["method"] == "direct"

    def test_count_kg_answers(self, client):
        kg = KnowledgeGraph(
            vertices={"u1": "User", "u2": "User", "m1": "Item", "m2": "Item"},
            triples=[
                ("u1", "likes", "m1"), ("u2", "likes", "m1"),
                ("u2", "likes", "m2"),
            ],
        )
        client.register_kg("taste", kg)
        query = kg_query_from_triples(
            [("x", "likes", "z"), ("y", "likes", "z")], ["x", "y"],
        )
        response = client.count_kg_answers(query, "taste")
        assert response["count"] == count_kg_answers_brute(query, kg)
        assert response["method"] == "kg-engine"

    def test_wl_dim_and_analyze(self, client):
        assert client.wl_dim("q(x1, x2) :- E(x1, y), E(x2, y)")["wl_dimension"] == 2
        analysis = client.analyze("q(x1) :- E(x1, y)")
        assert analysis["analysis"]["wl_dimension"] == 1

    def test_identical_concurrent_requests_agree(self, server, client):
        host = random_graph(18, 0.3, seed=33)
        client.register_graph("big", host)
        pattern_spec = {"graph6": None}
        from repro.graphs.io import to_graph6

        pattern = grid_graph(2, 3)
        pattern_spec = {"graph6": to_graph6(pattern)}

        def one_request(_):
            return ServiceClient(port=server.port).count(pattern_spec, "big")["count"]

        with ThreadPoolExecutor(max_workers=6) as pool:
            counts = set(pool.map(one_request, range(6)))
        assert counts == {count_homomorphisms_brute(pattern, host)}
        scheduler = client.stats()["scheduler"]
        assert scheduler["submitted"] >= 6
        assert scheduler["executed"] + scheduler["coalesced"] >= 6
        # however the race fell, the engine ran the count at most as many
        # times as the scheduler actually executed jobs
        engine = client.stats()["engine"]
        assert engine["counts_executed"] <= scheduler["executed"]


class TestErrors:
    def test_unknown_dataset_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.count(cycle_graph(3), "nope")
        assert excinfo.value.status == 404

    def test_bad_query_is_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.count_answers("q(x) :- R(x, y)", cycle_graph(4))
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/frobnicate", {})
        assert excinfo.value.status == 404

    def test_missing_fields_are_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.request("POST", "/count", {"pattern": {"graph6": "D?{"}})
        assert excinfo.value.status == 400


class TestWarmRestart:
    def test_restart_serves_from_persistent_tier(self, tmp_path):
        """The acceptance scenario: a warm restart answers a
        previously-computed (pattern, target) count with zero plan
        recompilation and zero count execution."""
        data_dir = str(tmp_path / "cache")
        host = random_graph(12, 0.3, seed=7)
        pattern = cycle_graph(6)
        try:
            with BackgroundServer(data_dir=data_dir, workers=2) as first:
                client = ServiceClient(port=first.port)
                client.register_graph("hosts", host)
                cold = client.count(pattern, "hosts")
                engine = client.stats()["engine"]
                assert engine["plans_compiled"] >= 1
                assert engine["counts_executed"] >= 1

            with BackgroundServer(data_dir=data_dir, workers=2) as second:
                client = ServiceClient(port=second.port)
                client.register_graph("hosts", host)
                warm = client.count(pattern, "hosts")
                assert warm["count"] == cold["count"]
                engine = client.stats()["engine"]
                assert engine["plans_compiled"] == 0
                assert engine["counts_executed"] == 0
                assert engine["persistent_count_hits"] >= 1

                # a NEW target with the KNOWN pattern: count runs, but the
                # plan still arrives from the persistent tier.
                fresh = random_graph(12, 0.3, seed=8)
                response = client.count(pattern, fresh)
                assert response["count"] == count_homomorphisms_brute(pattern, fresh)
                engine = client.stats()["engine"]
                assert engine["plans_compiled"] == 0
                assert engine["counts_executed"] == 1
        finally:
            set_default_engine(None)

    def test_restart_serves_kg_answers_warm(self, tmp_path):
        data_dir = str(tmp_path / "kg-cache")
        kg = KnowledgeGraph(
            vertices={i: "P" for i in range(5)},
            triples=[(0, "r", 1), (1, "r", 2), (2, "r", 3), (3, "r", 4), (0, "r", 4)],
        )
        query = kg_query_from_triples([("x", "r", "y"), ("y", "r", "z")], ["x"])
        try:
            with BackgroundServer(data_dir=data_dir, workers=2) as first:
                client = ServiceClient(port=first.port)
                client.register_kg("kg", kg)
                cold = client.count_kg_answers(query, "kg")

            with BackgroundServer(data_dir=data_dir, workers=2) as second:
                client = ServiceClient(port=second.port)
                client.register_kg("kg", kg)
                warm = client.count_kg_answers(query, "kg")
                assert warm["count"] == cold["count"]
                engine = client.stats()["engine"]
                assert engine["plans_compiled"] == 0
                assert engine["counts_executed"] == 0
        finally:
            set_default_engine(None)
