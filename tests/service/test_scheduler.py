"""Scheduler semantics: coalescing, bounded queue, error propagation."""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.service.scheduler import RequestScheduler


def run(coroutine):
    return asyncio.run(coroutine)


class TestCoalescing:
    def test_identical_inflight_requests_share_one_execution(self):
        async def scenario():
            scheduler = RequestScheduler(workers=2, max_queue=16)
            await scheduler.start()
            calls = []
            release = threading.Event()

            def slow_job():
                calls.append(1)
                release.wait(timeout=5.0)
                return 42

            tasks = [
                asyncio.create_task(scheduler.submit("hot-key", slow_job))
                for _ in range(10)
            ]
            # wait for every duplicate to reach the scheduler (condition
            # poll, not a timing assumption)
            deadline = time.monotonic() + 5.0
            while (
                scheduler.stats.coalesced < 9
                and time.monotonic() < deadline
            ):
                await asyncio.sleep(0.001)
            release.set()
            results = await asyncio.gather(*tasks)
            stats = scheduler.stats
            await scheduler.stop()
            return results, len(calls), stats

        results, executions, stats = run(scenario())
        assert results == [42] * 10
        assert executions == 1
        assert stats.submitted == 10
        assert stats.coalesced == 9
        assert stats.executed == 1

    def test_distinct_keys_all_execute(self):
        async def scenario():
            scheduler = RequestScheduler(workers=3, max_queue=16)
            await scheduler.start()
            results = await asyncio.gather(*[
                scheduler.submit(("key", i), lambda i=i: i * i)
                for i in range(8)
            ])
            stats = scheduler.stats
            await scheduler.stop()
            return results, stats

        results, stats = run(scenario())
        assert results == [i * i for i in range(8)]
        assert stats.executed == 8
        assert stats.coalesced == 0

    def test_key_reusable_after_completion(self):
        """Coalescing merges only *in-flight* duplicates; a finished key
        runs again (and is then typically a cache hit at the engine)."""
        async def scenario():
            scheduler = RequestScheduler(workers=1, max_queue=4)
            await scheduler.start()
            first = await scheduler.submit("k", lambda: 1)
            second = await scheduler.submit("k", lambda: 2)
            stats = scheduler.stats
            await scheduler.stop()
            return first, second, stats

        first, second, stats = run(scenario())
        assert (first, second) == (1, 2)
        assert stats.executed == 2
        assert stats.coalesced == 0


class TestFailuresAndLimits:
    def test_exceptions_propagate_to_every_waiter(self):
        async def scenario():
            scheduler = RequestScheduler(workers=2, max_queue=8)
            await scheduler.start()

            def boom():
                time.sleep(0.05)
                raise ValueError("engine exploded")

            tasks = [
                asyncio.create_task(scheduler.submit("bad", boom))
                for _ in range(3)
            ]
            outcomes = await asyncio.gather(*tasks, return_exceptions=True)
            stats = scheduler.stats
            await scheduler.stop()
            return outcomes, stats

        outcomes, stats = run(scenario())
        assert all(isinstance(o, ValueError) for o in outcomes)
        assert stats.failed == 1
        # a failure does not wedge the worker
        assert stats.executed == 0

    def test_worker_survives_failure(self):
        async def scenario():
            scheduler = RequestScheduler(workers=1, max_queue=8)
            await scheduler.start()
            with pytest.raises(RuntimeError):
                await scheduler.submit("a", self._raise_runtime)
            value = await scheduler.submit("b", lambda: "alive")
            await scheduler.stop()
            return value

        assert run(scenario()) == "alive"

    @staticmethod
    def _raise_runtime():
        raise RuntimeError("first job fails")

    def test_bounded_queue_applies_backpressure(self):
        """With a 1-slot queue and 1 worker, many distinct jobs still all
        complete — submission just waits for space."""
        async def scenario():
            scheduler = RequestScheduler(workers=1, max_queue=1)
            await scheduler.start()
            results = await asyncio.gather(*[
                scheduler.submit(i, lambda i=i: i) for i in range(12)
            ])
            stats = scheduler.stats
            await scheduler.stop()
            return results, stats

        results, stats = run(scenario())
        assert results == list(range(12))
        assert stats.executed == 12
        assert stats.max_queue_depth <= 1

    def test_submit_requires_running_scheduler(self):
        async def scenario():
            scheduler = RequestScheduler()
            with pytest.raises(RuntimeError):
                await scheduler.submit("k", lambda: 1)

        run(scenario())


class TestWorkerSupervision:
    """Worker-death detection: respawn within budget, then retire."""

    @staticmethod
    def _kill_worker():
        # Not an Exception subclass, so it escapes the job-failure path
        # and takes the worker task down with it.
        raise KeyboardInterrupt("worker-killing job")

    async def _wait_for(self, condition, timeout=5.0):
        deadline = time.monotonic() + timeout
        while not condition() and time.monotonic() < deadline:
            await asyncio.sleep(0.001)
        assert condition()

    def test_crashed_worker_respawns_and_waiter_is_not_stranded(self):
        from repro.errors import ServiceError

        async def scenario():
            scheduler = RequestScheduler(workers=2, max_queue=8)
            await scheduler.start()
            with pytest.raises(ServiceError, match="worker crashed"):
                await scheduler.submit("kaboom", self._kill_worker)
            await self._wait_for(lambda: scheduler.workers_alive == 2)
            assert scheduler.stats.worker_restarts == 1
            value = await scheduler.submit("after", lambda: "alive")
            await scheduler.stop()
            return value

        assert run(scenario()) == "alive"

    def test_respawn_budget_exhaustion_retires_the_pool(self):
        from repro.errors import ServiceError

        async def scenario():
            scheduler = RequestScheduler(
                workers=1, max_queue=8, respawn_limit=1,
            )
            await scheduler.start()
            # initial worker + one respawn = two crashes to exhaust
            for attempt in range(2):
                with pytest.raises(ServiceError):
                    await scheduler.submit(("kill", attempt), self._kill_worker)
            await self._wait_for(lambda: scheduler.workers_alive == 0)
            assert scheduler.stats.worker_restarts == 1
            with pytest.raises(ServiceError, match="no live workers"):
                await scheduler.submit("dead-pool", lambda: 1)
            await scheduler.stop()

        run(scenario())
