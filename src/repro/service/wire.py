"""Wire format: the (de)serialization of task specs and results.

One module defines how :mod:`repro.api.tasks` specs, their graph/query
building blocks, and :class:`~repro.api.result.Result` objects travel
over the service's JSON API — so the HTTP server, the Python client, and
the CLI's ``--json`` mode all construct and consume the same canonical
payloads (CLI/service parity is an acceptance criterion and is asserted
by the tests).

Task payloads
    ``{"task": kind, ...}`` — :func:`task_to_wire` /
    :func:`task_from_wire` round-trip byte-identically (canonical JSON),
    and the per-verb request bodies (``POST /count`` etc.) are exactly
    these payloads, so clients and the generic ``POST /task`` route share
    one encoding.

Graph specs
    ``{"graph6": "..."}`` — compact, vertices become ``0..n-1``; or
    ``{"vertices": [...], "edges": [[u, v], ...]}`` with JSON-scalar labels.

Knowledge-graph specs
    ``{"vertices": [[name, label], ...], "triples": [[s, l, t], ...]}``
    (vertex list form, not an object, so integer names survive the trip).

KG query specs
    a KG spec plus ``"free": [names]``.

Results
    :func:`result_to_wire` / :func:`result_from_wire` carry the full
    :class:`~repro.api.result.Result`; :func:`result_to_payload` renders
    the legacy per-verb response shapes (``count``, ``count-answers``,
    ``wl-dim``, ``analyze``) from the same object.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.graphs.io import from_graph6, to_graph6


class WireError(ReproError):
    """Malformed request payload or an unencodable object."""

    code = "bad-request"


# ----------------------------------------------------------------------
# graph codecs
# ----------------------------------------------------------------------
def graph_from_spec(spec) -> Graph:
    """Decode a graph spec (``graph6`` or ``vertices``/``edges`` form)."""
    if not isinstance(spec, Mapping):
        raise WireError(f"graph spec must be an object, got {type(spec).__name__}")
    if "graph6" in spec:
        if not isinstance(spec["graph6"], str):
            raise WireError(f"'graph6' must be a string, got {spec['graph6']!r}")
        return from_graph6(spec["graph6"])
    if "edges" not in spec and "vertices" not in spec:
        raise WireError("graph spec needs 'graph6' or 'vertices'/'edges'")
    graph = Graph(vertices=spec.get("vertices", ()))
    for edge in spec.get("edges", ()):
        if not isinstance(edge, (list, tuple)) or len(edge) != 2:
            raise WireError(f"edge must be a pair, got {edge!r}")
        graph.add_edge(edge[0], edge[1])
    return graph


def graph_to_spec(graph: Graph) -> dict:
    """Encode a graph for the wire (graph6 when it fits, else edge list)."""
    if graph.num_vertices() <= 62:
        return {"graph6": to_graph6(graph)}
    vertices = graph.vertices()
    if not all(isinstance(v, (str, int, float, bool)) for v in vertices):
        raise WireError(
            "graphs over 62 vertices need JSON-scalar vertex labels",
        )
    return {
        "vertices": vertices,
        "edges": [[u, v] for u, v in graph.edges()],
    }


def graph_summary(graph: Graph) -> dict:
    return {"vertices": graph.num_vertices(), "edges": graph.num_edges()}


def kg_summary(kg) -> dict:
    return {"vertices": kg.num_vertices(), "triples": kg.num_triples()}


# ----------------------------------------------------------------------
# knowledge-graph codecs
# ----------------------------------------------------------------------
def kg_from_spec(spec):
    from repro.kg.kgraph import KnowledgeGraph

    if not isinstance(spec, Mapping):
        raise WireError("knowledge-graph spec must be an object")
    kg = KnowledgeGraph()
    for entry in spec.get("vertices", ()):
        if isinstance(entry, (list, tuple)) and len(entry) == 2:
            kg.add_vertex(entry[0], entry[1])
        else:
            kg.add_vertex(entry)
    for triple in spec.get("triples", ()):
        if not isinstance(triple, (list, tuple)) or len(triple) != 3:
            raise WireError(f"triple must be [source, label, target], got {triple!r}")
        kg.add_edge(triple[0], triple[1], triple[2])
    return kg


def kg_to_spec(kg) -> dict:
    """Encode a knowledge graph canonically: vertices and triples in
    sorted (repr) order, so content-identical KGs produce byte-identical
    specs regardless of insertion history — the wire round-trip tests and
    the registry's content tokens both rely on this."""
    return {
        "vertices": sorted(
            ([v, kg.vertex_label(v)] for v in kg.vertices()),
            key=lambda entry: repr(entry[0]),
        ),
        "triples": sorted((list(t) for t in kg.triples()), key=repr),
    }


def kg_query_from_spec(spec):
    from repro.kg.queries import KgQuery

    pattern = kg_from_spec(spec)
    free = spec.get("free", ())
    if not isinstance(free, (list, tuple)):
        raise WireError("'free' must be a list of vertex names")
    for variable in free:
        pattern.add_vertex(variable)
    return KgQuery(pattern, free)


def kg_query_to_spec(query) -> dict:
    spec = kg_to_spec(query.pattern)
    spec["free"] = sorted(query.free_variables, key=repr)
    return spec


# ----------------------------------------------------------------------
# dynamic-update codecs
# ----------------------------------------------------------------------
def update_batch_from_spec(spec) -> "UpdateBatch":
    """Decode a graph update batch (``add_edges``/``remove_edges``/
    ``add_vertices``/``remove_vertices`` lists)."""
    from repro.dynamic.graph import UpdateBatch

    if not isinstance(spec, Mapping):
        raise WireError("update spec must be an object")
    for key in ("add_edges", "remove_edges"):
        for edge in spec.get(key, ()):
            if not isinstance(edge, (list, tuple)) or len(edge) != 2:
                raise WireError(f"{key!r} entries must be pairs, got {edge!r}")
    for key in ("add_vertices", "remove_vertices"):
        if not isinstance(spec.get(key, []), (list, tuple)):
            raise WireError(f"{key!r} must be a list of vertex names")
    batch = UpdateBatch.build(
        add_vertices=spec.get("add_vertices", ()),
        add_edges=spec.get("add_edges", ()),
        remove_edges=spec.get("remove_edges", ()),
        remove_vertices=spec.get("remove_vertices", ()),
    )
    if batch.is_empty():
        raise WireError(
            "update batch is empty: pass add_edges / remove_edges / "
            "add_vertices / remove_vertices (or add_triples / "
            "remove_triples for a KG dataset)",
        )
    return batch


def kg_update_from_spec(spec) -> dict:
    """Decode a KG update batch into ``DynamicKnowledgeGraph.apply``
    keywords (``add_vertices`` entries are ``[name, label]`` or names)."""
    if not isinstance(spec, Mapping):
        raise WireError("update spec must be an object")
    add_vertices = []
    for entry in spec.get("add_vertices", ()):
        if isinstance(entry, (list, tuple)) and len(entry) == 2:
            add_vertices.append((entry[0], entry[1]))
        else:
            add_vertices.append(entry)
    triples = {"add_triples": [], "remove_triples": []}
    for key, bucket in triples.items():
        for triple in spec.get(key, ()):
            if not isinstance(triple, (list, tuple)) or len(triple) != 3:
                raise WireError(
                    f"{key!r} entries must be [source, label, target], "
                    f"got {triple!r}",
                )
            bucket.append(tuple(triple))
    if not (add_vertices or triples["add_triples"] or triples["remove_triples"]):
        raise WireError(
            "KG update batch is empty: pass add_vertices / add_triples / "
            "remove_triples",
        )
    return {
        "add_vertices": add_vertices,
        "add_triples": triples["add_triples"],
        "remove_triples": triples["remove_triples"],
    }


# ----------------------------------------------------------------------
# task codecs (the canonical spec payloads)
# ----------------------------------------------------------------------
def target_to_spec(target):
    """Dataset name, graph, or knowledge graph — as sent on the wire."""
    if isinstance(target, str):
        return target
    if isinstance(target, Graph):
        return graph_to_spec(target)
    if hasattr(target, "triples"):
        return kg_to_spec(target)
    raise WireError(f"cannot encode target {type(target).__name__}")


def task_to_wire(task) -> dict:
    """The canonical JSON payload of a task spec.

    These payloads double as the per-verb HTTP request bodies (the
    ``task`` discriminator rides along harmlessly) and round-trip
    byte-identically through :func:`task_from_wire`.
    """
    from repro.api.tasks import (
        AnalyzeTask,
        AnswerCountTask,
        HomCountTask,
        KgAnswerCountTask,
        TaskBatch,
        WlDimensionTask,
    )

    if isinstance(task, HomCountTask):
        return {
            "task": task.kind,
            "pattern": graph_to_spec(task.pattern),
            "target": target_to_spec(task.target),
        }
    if isinstance(task, AnswerCountTask):
        payload = {
            "task": task.kind,
            "query": task.query,
            "target": target_to_spec(task.target),
        }
        if task.method != "auto":
            payload["method"] = task.method
        return payload
    if isinstance(task, KgAnswerCountTask):
        return {
            "task": task.kind,
            "kg_query": kg_query_to_spec(task.query),
            "target": target_to_spec(task.target),
        }
    if isinstance(task, (WlDimensionTask, AnalyzeTask)):
        return {"task": task.kind, "query": task.query}
    if isinstance(task, TaskBatch):
        return {
            "task": task.kind,
            "tasks": [task_to_wire(member) for member in task.tasks],
        }
    raise WireError(f"cannot encode task {type(task).__name__}")


def task_from_wire(payload):
    """Decode a canonical task payload into its typed spec."""
    from repro.api.tasks import (
        AnalyzeTask,
        AnswerCountTask,
        HomCountTask,
        KgAnswerCountTask,
        TaskBatch,
        WlDimensionTask,
    )

    if not isinstance(payload, Mapping):
        raise WireError(
            f"task payload must be an object, got {type(payload).__name__}",
        )
    kind = payload.get("task")
    if kind == "hom-count":
        return HomCountTask(
            _field(payload, "pattern"), _field(payload, "target"),
        )
    if kind == "answer-count":
        return AnswerCountTask(
            _field(payload, "query"),
            _field(payload, "target"),
            method=payload.get("method", "auto"),
        )
    if kind == "kg-answer-count":
        return KgAnswerCountTask(
            _field(payload, "kg_query"), _field(payload, "target"),
        )
    if kind == "wl-dimension":
        return WlDimensionTask(_field(payload, "query"))
    if kind == "analyze":
        return AnalyzeTask(_field(payload, "query"))
    if kind == "batch":
        members = _field(payload, "tasks")
        if not isinstance(members, (list, tuple)):
            raise WireError("'tasks' must be a list of task payloads")
        return TaskBatch(task_from_wire(member) for member in members)
    raise WireError(f"unknown task kind {kind!r}")


def _field(payload: Mapping, name: str):
    if name not in payload:
        raise WireError(f"task payload is missing the {name!r} field")
    return payload[name]


# ----------------------------------------------------------------------
# result codecs
# ----------------------------------------------------------------------
def result_to_wire(result) -> dict:
    """The full :class:`~repro.api.result.Result` as a JSON payload
    (the ``POST /task`` response shape)."""
    provenance = dict(result.provenance)
    trace = provenance.get("trace")
    if trace is not None and not isinstance(trace, dict):
        # A live Span (local execution) serialises to its tree dict;
        # already-wire dicts pass through untouched.
        from repro.obs.trace import span_to_dict

        provenance["trace"] = span_to_dict(trace)
    if trace is not None and "cost" not in provenance:
        # The phase breakdown travels precomputed so service-side clients
        # read Result.cost without re-walking the tree.
        from repro.obs.cost import cost_breakdown

        provenance["cost"] = cost_breakdown(provenance["trace"])
    return {
        "kind": "result",
        "task": result.kind,
        "value": result.value,
        "executor": result.executor,
        "backend": result.backend,
        "cached": result.cached,
        "version": result.version,
        "provenance": provenance,
        "elapsed_ms": round(result.elapsed_ms, 3),
    }


def result_from_wire(payload):
    from repro.api.result import Result

    if not isinstance(payload, Mapping) or payload.get("kind") != "result":
        raise WireError("expected a result payload")
    return Result(
        kind=payload.get("task"),
        value=payload.get("value"),
        executor=payload.get("executor", "service"),
        backend=payload.get("backend"),
        cached=payload.get("cached"),
        version=payload.get("version"),
        provenance=dict(payload.get("provenance", {})),
        elapsed_ms=payload.get("elapsed_ms", 0.0),
    )


def result_to_payload(result) -> dict:
    """Render a result in the legacy per-verb response shape.

    The HTTP API's response contract predates the task model; this is the
    single place that maps the uniform :class:`Result` back onto it, so
    the server routes and the CLI's ``--json`` mode stay byte-compatible.
    """
    provenance = result.provenance
    if result.kind == "hom-count":
        return {
            "kind": "count",
            "pattern": provenance["pattern"],
            "target": provenance["target"],
            "count": result.value,
            "plan": result.backend,
            "shards": provenance.get("shards", 1),
        }
    if result.kind == "answer-count":
        return {
            "kind": "count-answers",
            "query": provenance["query"],
            "logic": provenance["logic"],
            "target": provenance["target"],
            "count": result.value,
            "method": result.backend,
        }
    if result.kind == "kg-answer-count":
        return {
            "kind": "count-answers",
            "kg_query": provenance["kg_query"],
            "target": provenance["target"],
            "count": result.value,
            "method": "kg-engine",
        }
    if result.kind == "wl-dimension":
        return {
            "kind": "wl-dim",
            "query": provenance["query"],
            "logic": provenance["logic"],
            "wl_dimension": result.value,
        }
    if result.kind == "analyze":
        return {
            "kind": "analyze",
            "query": provenance["query"],
            "logic": provenance["logic"],
            "analysis": result.value,
        }
    raise WireError(f"cannot render result kind {result.kind!r}")


def error_payload(error: Exception, code: str | None = None) -> dict:
    """The structured error shape every non-200 response carries.

    ``code`` is the stable machine-readable identifier from
    :mod:`repro.errors` (kebab-case, part of the wire contract)."""
    if code is None:
        code = getattr(error, "code", "internal-error")
    return {"kind": "error", "error": str(error), "code": code}


# ----------------------------------------------------------------------
# response payloads (shared by the server and the CLI's --json mode)
# ----------------------------------------------------------------------
def analyze_payload(query_text: str) -> dict:
    from repro.api.session import default_session
    from repro.api.tasks import AnalyzeTask

    return result_to_payload(default_session().run(AnalyzeTask(query_text)))


def wl_dim_payload(query_text: str) -> dict:
    from repro.api.session import default_session
    from repro.api.tasks import WlDimensionTask

    return result_to_payload(default_session().run(WlDimensionTask(query_text)))


def count_answers_payload(
    query_text: str,
    host: Graph,
    target_name: str | None = None,
) -> dict:
    """Count the answers to a parsed CQ on ``host`` via the engine-backed
    route (Lemma-22 interpolation; Boolean queries fall back to the direct
    check, whose answer is 0 or 1)."""
    from repro.api.session import default_session
    from repro.api.tasks import AnswerCountTask

    result = default_session().run(AnswerCountTask(query_text, host))
    payload = result_to_payload(result)
    if target_name is not None:
        payload["target"] = target_name
    return payload


def count_payload(
    count: int,
    pattern: Graph,
    target_name,
    plan: str | None = None,
    shards: int = 1,
) -> dict:
    return {
        "kind": "count",
        "pattern": graph_summary(pattern),
        "target": target_name,
        "count": count,
        "plan": plan,
        "shards": shards,
    }


def dynamic_stats_payload(stats) -> dict:
    """The version/delta statistics block (``DynamicStats.snapshot()``
    shape) shared by ``POST /target-update``, ``GET /stats``,
    ``repro update --json`` and ``repro engine-stats``."""
    return {"kind": "dynamic-stats", **stats.snapshot()}


def subscription_payload(subscription_id: str, target_name: str, handle) -> dict:
    """One maintained subscription: its identity plus the handle's
    current ``summary()`` (version, value, …; the handle kind moves to
    ``maintains``)."""
    summary = dict(handle.summary())
    maintains = summary.pop("kind", "hom-count")
    return {
        "kind": "subscription",
        "id": subscription_id,
        "target": target_name,
        "maintains": maintains,
        **summary,
    }


def target_update_payload(
    name: str,
    version: int,
    applied: dict,
    patched: bool,
    stats,
    subscriptions: list[dict],
) -> dict:
    """The ``POST /target-update`` response (also emitted verbatim by
    ``repro update --json``)."""
    return {
        "kind": "target-update",
        "target": name,
        "version": version,
        "applied": applied,
        "patched": patched,
        "dynamic": dynamic_stats_payload(stats),
        "subscriptions": subscriptions,
    }


def health_payload(report, kind: str = "health") -> dict:
    """A :class:`repro.obs.health.HealthReport` as a wire payload.

    ``kind``/``status`` match the pre-PR-9 stub byte-for-byte when every
    probe is ok; ``probes``/``reasons`` are the additive detail.
    """
    return {
        "kind": kind,
        "status": report.status,
        "probes": {
            name: result.to_dict() for name, result in report.probes.items()
        },
        "reasons": report.reasons,
    }


def readiness_payload(report, ready: bool, datasets: int) -> dict:
    """The ``GET /readyz`` response: the gating probes plus whether the
    process should receive traffic."""
    payload = health_payload(report, kind="readyz")
    payload["ready"] = ready
    payload["datasets"] = datasets
    return payload


def slo_payload(report: dict) -> dict:
    """The ``GET /slo`` response (``SloTracker.report()`` shape)."""
    return {"kind": "slo", **report}


def alerts_payload(states: list[dict]) -> dict:
    """The ``GET /alerts`` response: every rule state plus the names of
    currently firing rules."""
    return {
        "kind": "alerts",
        "firing": [state["name"] for state in states if state["firing"]],
        "alerts": states,
    }
