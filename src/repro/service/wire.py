"""Wire format: JSON graph/query codecs and response payload builders.

One module defines how graphs, knowledge graphs, and queries travel over
the service's JSON API — and builds the response payloads — so the HTTP
server, the Python client, and the CLI's ``--json`` mode all speak exactly
the same shapes (CLI/service parity is an acceptance criterion and is
asserted by the tests).

Graph specs
    ``{"graph6": "..."}`` — compact, vertices become ``0..n-1``; or
    ``{"vertices": [...], "edges": [[u, v], ...]}`` with JSON-scalar labels.

Knowledge-graph specs
    ``{"vertices": [[name, label], ...], "triples": [[s, l, t], ...]}``
    (vertex list form, not an object, so integer names survive the trip).

KG query specs
    a KG spec plus ``"free": [names]``.
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.graphs.io import from_graph6, to_graph6


class WireError(ReproError):
    """Malformed request payload or an unencodable object."""


# ----------------------------------------------------------------------
# graph codecs
# ----------------------------------------------------------------------
def graph_from_spec(spec) -> Graph:
    """Decode a graph spec (``graph6`` or ``vertices``/``edges`` form)."""
    if not isinstance(spec, Mapping):
        raise WireError(f"graph spec must be an object, got {type(spec).__name__}")
    if "graph6" in spec:
        if not isinstance(spec["graph6"], str):
            raise WireError(f"'graph6' must be a string, got {spec['graph6']!r}")
        return from_graph6(spec["graph6"])
    if "edges" not in spec and "vertices" not in spec:
        raise WireError("graph spec needs 'graph6' or 'vertices'/'edges'")
    graph = Graph(vertices=spec.get("vertices", ()))
    for edge in spec.get("edges", ()):
        if not isinstance(edge, (list, tuple)) or len(edge) != 2:
            raise WireError(f"edge must be a pair, got {edge!r}")
        graph.add_edge(edge[0], edge[1])
    return graph


def graph_to_spec(graph: Graph) -> dict:
    """Encode a graph for the wire (graph6 when it fits, else edge list)."""
    if graph.num_vertices() <= 62:
        return {"graph6": to_graph6(graph)}
    vertices = graph.vertices()
    if not all(isinstance(v, (str, int, float, bool)) for v in vertices):
        raise WireError(
            "graphs over 62 vertices need JSON-scalar vertex labels",
        )
    return {
        "vertices": vertices,
        "edges": [[u, v] for u, v in graph.edges()],
    }


def graph_summary(graph: Graph) -> dict:
    return {"vertices": graph.num_vertices(), "edges": graph.num_edges()}


# ----------------------------------------------------------------------
# knowledge-graph codecs
# ----------------------------------------------------------------------
def kg_from_spec(spec):
    from repro.kg.kgraph import KnowledgeGraph

    if not isinstance(spec, Mapping):
        raise WireError("knowledge-graph spec must be an object")
    kg = KnowledgeGraph()
    for entry in spec.get("vertices", ()):
        if isinstance(entry, (list, tuple)) and len(entry) == 2:
            kg.add_vertex(entry[0], entry[1])
        else:
            kg.add_vertex(entry)
    for triple in spec.get("triples", ()):
        if not isinstance(triple, (list, tuple)) or len(triple) != 3:
            raise WireError(f"triple must be [source, label, target], got {triple!r}")
        kg.add_edge(triple[0], triple[1], triple[2])
    return kg


def kg_to_spec(kg) -> dict:
    return {
        "vertices": [[v, kg.vertex_label(v)] for v in kg.vertices()],
        "triples": [list(t) for t in kg.triples()],
    }


def kg_query_from_spec(spec):
    from repro.kg.queries import KgQuery

    pattern = kg_from_spec(spec)
    free = spec.get("free", ())
    if not isinstance(free, (list, tuple)):
        raise WireError("'free' must be a list of vertex names")
    for variable in free:
        pattern.add_vertex(variable)
    return KgQuery(pattern, free)


def kg_query_to_spec(query) -> dict:
    spec = kg_to_spec(query.pattern)
    spec["free"] = sorted(query.free_variables, key=repr)
    return spec


# ----------------------------------------------------------------------
# dynamic-update codecs
# ----------------------------------------------------------------------
def update_batch_from_spec(spec) -> "UpdateBatch":
    """Decode a graph update batch (``add_edges``/``remove_edges``/
    ``add_vertices``/``remove_vertices`` lists)."""
    from repro.dynamic.graph import UpdateBatch

    if not isinstance(spec, Mapping):
        raise WireError("update spec must be an object")
    for key in ("add_edges", "remove_edges"):
        for edge in spec.get(key, ()):
            if not isinstance(edge, (list, tuple)) or len(edge) != 2:
                raise WireError(f"{key!r} entries must be pairs, got {edge!r}")
    for key in ("add_vertices", "remove_vertices"):
        if not isinstance(spec.get(key, []), (list, tuple)):
            raise WireError(f"{key!r} must be a list of vertex names")
    batch = UpdateBatch.build(
        add_vertices=spec.get("add_vertices", ()),
        add_edges=spec.get("add_edges", ()),
        remove_edges=spec.get("remove_edges", ()),
        remove_vertices=spec.get("remove_vertices", ()),
    )
    if batch.is_empty():
        raise WireError(
            "update batch is empty: pass add_edges / remove_edges / "
            "add_vertices / remove_vertices (or add_triples / "
            "remove_triples for a KG dataset)",
        )
    return batch


def kg_update_from_spec(spec) -> dict:
    """Decode a KG update batch into ``DynamicKnowledgeGraph.apply``
    keywords (``add_vertices`` entries are ``[name, label]`` or names)."""
    if not isinstance(spec, Mapping):
        raise WireError("update spec must be an object")
    add_vertices = []
    for entry in spec.get("add_vertices", ()):
        if isinstance(entry, (list, tuple)) and len(entry) == 2:
            add_vertices.append((entry[0], entry[1]))
        else:
            add_vertices.append(entry)
    triples = {"add_triples": [], "remove_triples": []}
    for key, bucket in triples.items():
        for triple in spec.get(key, ()):
            if not isinstance(triple, (list, tuple)) or len(triple) != 3:
                raise WireError(
                    f"{key!r} entries must be [source, label, target], "
                    f"got {triple!r}",
                )
            bucket.append(tuple(triple))
    if not (add_vertices or triples["add_triples"] or triples["remove_triples"]):
        raise WireError(
            "KG update batch is empty: pass add_vertices / add_triples / "
            "remove_triples",
        )
    return {
        "add_vertices": add_vertices,
        "add_triples": triples["add_triples"],
        "remove_triples": triples["remove_triples"],
    }


# ----------------------------------------------------------------------
# response payloads (shared by the server and the CLI's --json mode)
# ----------------------------------------------------------------------
def analyze_payload(query_text: str) -> dict:
    from repro.core.wl_dimension import analyse_query
    from repro.queries.parser import format_query, parse_query

    query = parse_query(query_text)
    return {
        "kind": "analyze",
        "query": query_text,
        "logic": format_query(query, style="logic"),
        "analysis": analyse_query(query),
    }


def wl_dim_payload(query_text: str) -> dict:
    from repro.core.wl_dimension import wl_dimension
    from repro.queries.parser import format_query, parse_query

    query = parse_query(query_text)
    return {
        "kind": "wl-dim",
        "query": query_text,
        "logic": format_query(query, style="logic"),
        "wl_dimension": wl_dimension(query),
    }


def count_answers_payload(
    query_text: str,
    host: Graph,
    target_name: str | None = None,
) -> dict:
    """Count the answers to a parsed CQ on ``host`` via the engine-backed
    route (Lemma-22 interpolation; Boolean queries fall back to the direct
    check, whose answer is 0 or 1)."""
    from repro.queries.answers import (
        count_answers,
        count_answers_by_interpolation,
    )
    from repro.queries.parser import format_query, parse_query

    query = parse_query(query_text)
    if query.is_boolean():
        count = count_answers(query, host)
        method = "direct"
    else:
        count = count_answers_by_interpolation(query, host)
        method = "interpolation"
    return {
        "kind": "count-answers",
        "query": query_text,
        "logic": format_query(query, style="logic"),
        "target": target_name if target_name is not None else graph_summary(host),
        "count": count,
        "method": method,
    }


def count_payload(
    count: int,
    pattern: Graph,
    target_name,
    plan: str | None = None,
    shards: int = 1,
) -> dict:
    return {
        "kind": "count",
        "pattern": graph_summary(pattern),
        "target": target_name,
        "count": count,
        "plan": plan,
        "shards": shards,
    }


def dynamic_stats_payload(stats) -> dict:
    """The version/delta statistics block (``DynamicStats.snapshot()``
    shape) shared by ``POST /target-update``, ``GET /stats``,
    ``repro update --json`` and ``repro engine-stats``."""
    return {"kind": "dynamic-stats", **stats.snapshot()}


def subscription_payload(subscription_id: str, target_name: str, handle) -> dict:
    """One maintained subscription: its identity plus the handle's
    current ``summary()`` (version, value, …; the handle kind moves to
    ``maintains``)."""
    summary = dict(handle.summary())
    maintains = summary.pop("kind", "hom-count")
    return {
        "kind": "subscription",
        "id": subscription_id,
        "target": target_name,
        "maintains": maintains,
        **summary,
    }


def target_update_payload(
    name: str,
    version: int,
    applied: dict,
    patched: bool,
    stats,
    subscriptions: list[dict],
) -> dict:
    """The ``POST /target-update`` response (also emitted verbatim by
    ``repro update --json``)."""
    return {
        "kind": "target-update",
        "target": name,
        "version": version,
        "applied": applied,
        "patched": patched,
        "dynamic": dynamic_stats_payload(stats),
        "subscriptions": subscriptions,
    }
