"""The dataset registry: register hosts once, serve them forever.

A *dataset* is a named host graph (or knowledge graph) a client registers
once; every subsequent request refers to it by name.  Registration does
the per-target work the per-request path should never repeat:

* the engine's **target cache key** (an O(n + m) fingerprint) is computed
  once and passed to :meth:`HomEngine.count` as ``target_id``;
* the dataset (and each shard) is **pre-encoded** to an
  :class:`~repro.graphs.indexed.IndexedGraph` — bitsets included — so the
  engine's index-space plans never pay the encode on the request path;
* graph datasets are optionally split into **component shards** — the
  connected components grouped into ``k`` buckets — so a count request
  for a *connected* pattern fans out over the shards through the engine's
  batch path and sums (homomorphisms of a connected pattern land inside a
  single component, so the sum is exact);
* knowledge graphs are **gadget-encoded** up front
  (:func:`repro.kg.engine_bridge.encode_kg`), so KG answer requests pay
  zero per-request encoding cost.

The registry is lock-guarded: registrations and lookups may arrive from
any server worker.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.dynamic.graph import DynamicGraph, GraphVersion, UpdateBatch
from repro.dynamic.kg import DynamicKnowledgeGraph, KgVersion
from repro.engine.cache import target_key
from repro.errors import ReproError
from repro.graphs.graph import Graph


class RegistryError(ReproError):
    """Unknown dataset name, wrong dataset kind, or a bad payload.

    Re-registering a name *replaces* the dataset (registration is
    idempotent for identical content — the common
    register-after-restart pattern); request coalescing keys on the
    dataset's content token, never on the name alone, so a replacement
    can never serve counts computed against the old graph.
    """

    code = "unknown-dataset"


class DatasetKindError(RegistryError):
    """The named dataset exists but is the wrong kind for the request."""

    code = "wrong-dataset-kind"


class DatasetNameError(RegistryError):
    """Dataset names must be non-empty strings."""

    code = "bad-dataset-name"


@dataclass(frozen=True)
class ServingState:
    """The request-path view of one dataset *version* — immutable, so a
    request reads it with a single attribute load and can never pair one
    version's graph with another version's cache key, however the update
    thread interleaves.  Fields describe exactly one version: ``graph``,
    ``target_id``, the component shards (graph datasets), or ``kg`` +
    ``kg_encoding`` (KG datasets), plus the coalescing ``content_token``.
    """

    version: int = 0
    graph: Graph | None = None
    target_id: tuple | None = None
    shards: tuple = ()
    shard_ids: tuple = ()
    kg: object | None = None
    kg_encoding: object | None = None
    content_token: object = None


@dataclass
class Dataset:
    """One registered host with its precomputed request-path artefacts.

    Every dataset is *dynamic*: graph datasets wrap a
    :class:`~repro.dynamic.graph.DynamicGraph`, KG datasets a
    :class:`~repro.dynamic.kg.DynamicKnowledgeGraph`.  The current
    version's request-path view lives in one :class:`ServingState` that
    updates swap with a single (atomic) reference write; request
    handlers read ``dataset.serving`` once and work off that snapshot.
    The convenience properties below read the *current* snapshot — fine
    for reporting, but multi-field request paths must hold one
    ``serving`` reference.
    """

    name: str
    kind: str  # "graph" | "kg"
    shards_requested: int = 1
    dynamic: DynamicGraph | None = None
    dynamic_kg: DynamicKnowledgeGraph | None = None
    serving: ServingState = field(default_factory=ServingState)
    # Maintained handles subscribed through the service, by id.
    subscriptions: dict = field(default_factory=dict)

    @property
    def graph(self) -> Graph | None:
        return self.serving.graph

    @property
    def target_id(self) -> tuple | None:
        return self.serving.target_id

    @property
    def shards(self) -> tuple:
        return self.serving.shards

    @property
    def shard_ids(self) -> tuple:
        return self.serving.shard_ids

    @property
    def kg(self):
        return self.serving.kg

    @property
    def kg_encoding(self):
        return self.serving.kg_encoding

    @property
    def content_token(self):
        return self.serving.content_token

    @property
    def version(self) -> int:
        return self.serving.version

    @property
    def stats(self):
        if self.kind == "kg":
            return self.dynamic_kg.stats
        return self.dynamic.stats

    def summary(self) -> dict:
        serving = self.serving
        if self.kind == "kg":
            return {
                "name": self.name,
                "kind": "kg",
                "vertices": serving.kg.num_vertices(),
                "triples": serving.kg.num_triples(),
                "version": serving.version,
                "subscriptions": len(self.subscriptions),
            }
        return {
            "name": self.name,
            "kind": "graph",
            "vertices": serving.graph.num_vertices(),
            "edges": serving.graph.num_edges(),
            "shards": len(serving.shards),
            "version": serving.version,
            "subscriptions": len(self.subscriptions),
        }


def component_shards(graph: Graph, shards: int) -> list[Graph]:
    """Group the connected components of ``graph`` into at most ``shards``
    induced subgraphs of balanced vertex count (largest-first greedy)."""
    components = sorted(graph.connected_components(), key=len, reverse=True)
    shards = max(1, min(shards, len(components)))
    if shards == 1:
        return [graph]
    buckets: list[set] = [set() for _ in range(shards)]
    for component in components:
        smallest = min(buckets, key=len)
        smallest |= component
    return [graph.induced_subgraph(bucket) for bucket in buckets if bucket]


class DatasetRegistry:
    """Thread-safe name → :class:`Dataset` map."""

    def __init__(self) -> None:
        self._datasets: dict[str, Dataset] = {}
        self._lock = threading.Lock()

    def register_graph(
        self, name: str, graph: Graph, shards: int = 1,
    ) -> Dataset:
        if not name or not isinstance(name, str):
            raise DatasetNameError(
                f"dataset name must be a non-empty string, got {name!r}",
            )
        dataset = Dataset(
            name=name,
            kind="graph",
            dynamic=DynamicGraph(graph),
            shards_requested=shards,
        )
        self._refresh_graph_fields(dataset, dataset.dynamic.snapshot())
        with self._lock:
            self._datasets[name] = dataset
        return dataset

    def _refresh_graph_fields(
        self, dataset: Dataset, record: GraphVersion,
    ) -> None:
        """Swap the serving state to ``record``'s snapshot (one atomic
        reference write — request handlers reading ``dataset.serving``
        see either the old version or the new one, never a mix).

        The served graph carries its (patched or recompiled) index
        already — ``DynamicGraph`` warms it per version — so no request
        ever re-encodes the dataset.  Component shards are rebuilt per
        version (component structure may change under updates).
        """
        served = record.graph
        if dataset.shards_requested > 1:
            shard_graphs = tuple(
                component_shards(served, dataset.shards_requested),
            )
            for shard in shard_graphs:
                shard.to_indexed().bitsets()
            shard_ids = tuple(target_key(shard) for shard in shard_graphs)
        else:
            shard_graphs = (served,)
            shard_ids = (record.target_id,)
        dataset.serving = ServingState(
            version=record.version,
            graph=served,
            target_id=record.target_id,
            shards=shard_graphs,
            shard_ids=shard_ids,
            content_token=(record.target_id, len(shard_graphs)),
        )

    def update_graph(
        self, name: str, batch: UpdateBatch,
    ) -> tuple[Dataset, GraphVersion]:
        """Advance a graph dataset's version by one update batch."""
        dataset = self.get(name, kind="graph")
        with dataset.dynamic.lock:
            record = dataset.dynamic.apply(batch)
            self._refresh_graph_fields(dataset, record)
        return dataset, record

    def register_kg(self, name: str, kg) -> Dataset:
        if not name or not isinstance(name, str):
            raise DatasetNameError(
                f"dataset name must be a non-empty string, got {name!r}",
            )
        dataset = Dataset(name=name, kind="kg", dynamic_kg=DynamicKnowledgeGraph(kg))
        self._refresh_kg_fields(dataset, dataset.dynamic_kg.snapshot())
        with self._lock:
            self._datasets[name] = dataset
        return dataset

    def _refresh_kg_fields(self, dataset: Dataset, version: KgVersion) -> None:
        from repro.service.store import stable_key_digest
        from repro.service.wire import kg_to_spec

        dataset.serving = ServingState(
            version=version.version,
            kg=version.kg,
            kg_encoding=version.encoding,
            target_id=version.target_id,
            # Label-complete identity: the gadget graph digest alone would
            # not see vertex-label differences between separately
            # registered KGs (labels live in the allowed pools).
            content_token=stable_key_digest(kg_to_spec(version.kg)),
        )

    def update_kg(
        self,
        name: str,
        add_vertices=(),
        add_triples=(),
        remove_triples=(),
    ) -> tuple[Dataset, KgVersion]:
        """Advance a KG dataset's version by one update batch."""
        dataset = self.get(name, kind="kg")
        with dataset.dynamic_kg.lock:
            version = dataset.dynamic_kg.apply(
                add_vertices=add_vertices,
                add_triples=add_triples,
                remove_triples=remove_triples,
            )
            self._refresh_kg_fields(dataset, version)
        return dataset, version

    def get(self, name: str, kind: str | None = None) -> Dataset:
        with self._lock:
            dataset = self._datasets.get(name)
        if dataset is None:
            raise RegistryError(f"unknown dataset {name!r}")
        if kind is not None and dataset.kind != kind:
            raise DatasetKindError(
                f"dataset {name!r} is a {dataset.kind} dataset, not {kind}",
            )
        return dataset

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._datasets)

    def __len__(self) -> int:
        with self._lock:
            return len(self._datasets)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._datasets

    def summary(self) -> list[dict]:
        with self._lock:
            datasets = list(self._datasets.values())
        return [dataset.summary() for dataset in sorted(datasets, key=lambda d: d.name)]
