"""The dataset registry: register hosts once, serve them forever.

A *dataset* is a named host graph (or knowledge graph) a client registers
once; every subsequent request refers to it by name.  Registration does
the per-target work the per-request path should never repeat:

* the engine's **target cache key** (an O(n + m) fingerprint) is computed
  once and passed to :meth:`HomEngine.count` as ``target_id``;
* the dataset (and each shard) is **pre-encoded** to an
  :class:`~repro.graphs.indexed.IndexedGraph` — bitsets included — so the
  engine's index-space plans never pay the encode on the request path;
* graph datasets are optionally split into **component shards** — the
  connected components grouped into ``k`` buckets — so a count request
  for a *connected* pattern fans out over the shards through the engine's
  batch path and sums (homomorphisms of a connected pattern land inside a
  single component, so the sum is exact);
* knowledge graphs are **gadget-encoded** up front
  (:func:`repro.kg.engine_bridge.encode_kg`), so KG answer requests pay
  zero per-request encoding cost.

The registry is lock-guarded: registrations and lookups may arrive from
any server worker.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.engine.cache import target_key
from repro.errors import ReproError
from repro.graphs.graph import Graph


class RegistryError(ReproError):
    """Unknown dataset name, wrong dataset kind, or a bad payload.

    Re-registering a name *replaces* the dataset (registration is
    idempotent for identical content — the common
    register-after-restart pattern); request coalescing keys on the
    dataset's content token, never on the name alone, so a replacement
    can never serve counts computed against the old graph.
    """


@dataclass
class Dataset:
    """One registered host with its precomputed request-path artefacts."""

    name: str
    kind: str  # "graph" | "kg"
    graph: Graph | None = None
    target_id: tuple | None = None
    shards: list[Graph] = field(default_factory=list)
    shard_ids: list[tuple] = field(default_factory=list)
    kg: object | None = None
    kg_encoding: object | None = None
    # Content-derived identity used in coalescing keys, so replacing a
    # dataset under the same name never joins in-flight work on the old
    # content.
    content_token: object = None

    def summary(self) -> dict:
        if self.kind == "kg":
            return {
                "name": self.name,
                "kind": "kg",
                "vertices": self.kg.num_vertices(),
                "triples": self.kg.num_triples(),
            }
        return {
            "name": self.name,
            "kind": "graph",
            "vertices": self.graph.num_vertices(),
            "edges": self.graph.num_edges(),
            "shards": len(self.shards),
        }


def component_shards(graph: Graph, shards: int) -> list[Graph]:
    """Group the connected components of ``graph`` into at most ``shards``
    induced subgraphs of balanced vertex count (largest-first greedy)."""
    components = sorted(graph.connected_components(), key=len, reverse=True)
    shards = max(1, min(shards, len(components)))
    if shards == 1:
        return [graph]
    buckets: list[set] = [set() for _ in range(shards)]
    for component in components:
        smallest = min(buckets, key=len)
        smallest |= component
    return [graph.induced_subgraph(bucket) for bucket in buckets if bucket]


class DatasetRegistry:
    """Thread-safe name → :class:`Dataset` map."""

    def __init__(self) -> None:
        self._datasets: dict[str, Dataset] = {}
        self._lock = threading.Lock()

    def register_graph(
        self, name: str, graph: Graph, shards: int = 1,
    ) -> Dataset:
        if not name or not isinstance(name, str):
            raise RegistryError(f"dataset name must be a non-empty string, got {name!r}")
        shard_graphs = component_shards(graph, shards) if shards > 1 else [graph]
        target_id = target_key(graph)
        # Encode once at registration: to_indexed() pins the IndexedGraph
        # on each served Graph object (bitsets warmed), so no request ever
        # re-encodes the dataset.
        graph.to_indexed().bitsets()
        for shard in shard_graphs:
            shard.to_indexed().bitsets()
        dataset = Dataset(
            name=name,
            kind="graph",
            graph=graph,
            target_id=target_id,
            shards=shard_graphs,
            shard_ids=[target_key(shard) for shard in shard_graphs],
            content_token=(target_id, len(shard_graphs)),
        )
        with self._lock:
            self._datasets[name] = dataset
        return dataset

    def register_kg(self, name: str, kg) -> Dataset:
        from repro.kg.engine_bridge import encode_kg

        if not name or not isinstance(name, str):
            raise RegistryError(f"dataset name must be a non-empty string, got {name!r}")
        from repro.service.store import stable_key_digest
        from repro.service.wire import kg_to_spec

        dataset = Dataset(name=name, kind="kg")
        dataset.kg = kg
        dataset.kg_encoding = encode_kg(kg)
        # Label-complete identity: the gadget graph alone would not see
        # vertex-label changes (labels live in the allowed pools).
        dataset.content_token = stable_key_digest(kg_to_spec(kg))
        with self._lock:
            self._datasets[name] = dataset
        return dataset

    def get(self, name: str, kind: str | None = None) -> Dataset:
        with self._lock:
            dataset = self._datasets.get(name)
        if dataset is None:
            raise RegistryError(f"unknown dataset {name!r}")
        if kind is not None and dataset.kind != kind:
            raise RegistryError(
                f"dataset {name!r} is a {dataset.kind} dataset, not {kind}",
            )
        return dataset

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._datasets)

    def __len__(self) -> int:
        with self._lock:
            return len(self._datasets)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._datasets

    def summary(self) -> list[dict]:
        with self._lock:
            datasets = list(self._datasets.values())
        return [dataset.summary() for dataset in sorted(datasets, key=lambda d: d.name)]
