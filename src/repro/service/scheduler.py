"""Request scheduling: bounded queue, worker pool, request coalescing.

The service's unit of work is a *keyed job*: a canonical request key plus
a zero-argument callable producing the answer.  The scheduler guarantees

* **coalescing** — identical in-flight requests share one computation:
  the second ``submit`` of a key awaits the first key's future instead of
  enqueueing new work (heavy traffic on a hot (pattern, target) pair costs
  one count, not N);
* **bounded queueing** — ``submit`` applies backpressure once ``max_queue``
  jobs are waiting (the HTTP handler simply awaits; clients see latency,
  the process never sees an unbounded queue);
* **limited concurrency** — ``workers`` asyncio consumers execute jobs on
  a thread pool of the same size, so at most ``workers`` counts run at
  once and the engine's lock-guarded caches are shared safely.

Everything is stdlib asyncio; the scheduler owns its executor and is
started/stopped with the server.
"""

from __future__ import annotations

import asyncio
import contextvars
import logging
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from time import perf_counter
from typing import Callable

from repro.errors import ServiceError
from repro.obs import family_snapshot, get_logger, log_event, registry
from repro.obs.trace import current_trace_id

_log = get_logger("scheduler")


@dataclass
class SchedulerStats:
    """Counters for one :class:`RequestScheduler`."""

    submitted: int = 0
    coalesced: int = 0
    executed: int = 0
    failed: int = 0
    max_queue_depth: int = 0
    worker_restarts: int = 0

    @property
    def coalesce_rate(self) -> float:
        return self.coalesced / self.submitted if self.submitted else 0.0

    def snapshot(self) -> dict[str, int | float]:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "failed": self.failed,
            "max_queue_depth": self.max_queue_depth,
            "worker_restarts": self.worker_restarts,
            "coalesce_rate": round(self.coalesce_rate, 4),
        }


class RequestScheduler:
    """A coalescing, bounded, concurrency-limited job scheduler."""

    def __init__(
        self,
        workers: int = 4,
        max_queue: int = 256,
        respawn_limit: int = 3,
    ) -> None:
        if workers < 1:
            raise ServiceError("workers must be positive")
        if max_queue < 1:
            raise ServiceError("max_queue must be positive")
        if respawn_limit < 0:
            raise ServiceError("respawn_limit must be non-negative")
        self.workers = workers
        self.max_queue = max_queue
        self.respawn_limit = respawn_limit
        self.stats = SchedulerStats()
        self._queue: asyncio.Queue | None = None
        self._inflight: dict = {}
        self._tasks: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None
        # Shared, process-global latency families (idempotent re-lookup).
        reg = registry()
        self._wait_hist = reg.histogram(
            "repro_scheduler_wait_ms",
            "Time jobs spend queued before a worker picks them up.",
        )
        self._run_hist = reg.histogram(
            "repro_scheduler_run_ms",
            "Time jobs spend executing on the worker pool.",
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._tasks:
            return
        self._queue = asyncio.Queue(self.max_queue)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-service",
        )
        self._tasks = [
            asyncio.create_task(self._supervise(slot))
            for slot in range(self.workers)
        ]

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        # Jobs still queued (or whose worker died mid-flight) must not
        # leave their waiters hanging on futures nobody will resolve.
        if self._queue is not None:
            while not self._queue.empty():
                _, _, future, _, _ = self._queue.get_nowait()
                if not future.done():
                    future.cancel()
        for future in self._inflight.values():
            if not future.done():
                future.cancel()
        self._queue = None
        self._inflight.clear()

    @property
    def running(self) -> bool:
        return bool(self._tasks)

    @property
    def workers_alive(self) -> int:
        """Worker slots whose supervisor task is still running.

        A supervisor only finishes when its worker exhausted the respawn
        budget (or the scheduler stopped), so during a crash+respawn the
        slot still counts as alive.
        """
        return sum(1 for task in self._tasks if not task.done())

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(self, key, fn: Callable[[], object]):
        """Run ``fn`` (or join the identical in-flight request) and return
        its result.  ``key`` must canonically identify the work."""
        if self._queue is None:
            raise RuntimeError("scheduler is not running")
        if self.workers_alive == 0:
            # Every worker exhausted its respawn budget; queueing would
            # hang the caller forever.  The health probe is already
            # failing at this point — fail fast here too.
            raise ServiceError("scheduler has no live workers")
        self.stats.submitted += 1
        future = self._inflight.get(key)
        if future is not None:
            self.stats.coalesced += 1
            # shield: one cancelled waiter must not cancel the shared job.
            return await asyncio.shield(future)
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        # Snapshot the submitter's context so the worker thread sees the
        # same current span (trace ids survive the pool hop).
        ctx = contextvars.copy_context()
        try:
            await self._queue.put((key, fn, future, ctx, perf_counter()))
        except BaseException:
            # The enqueue never happened; cancel the future so waiters that
            # already coalesced onto it are released rather than hung.
            self._inflight.pop(key, None)
            if not future.done():
                future.cancel()
            raise
        depth = self._queue.qsize()
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        return await asyncio.shield(future)

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    async def _supervise(self, slot: int) -> None:
        """Keep one worker slot alive across crashes (bounded).

        ``_worker`` only exits via an exception: ``CancelledError`` on
        stop (re-raised), or a ``BaseException`` that escaped a job —
        ``KeyboardInterrupt`` raised on a pool thread, a scheduler bug.
        Those used to kill the worker silently; now the crash is logged,
        counted, and the slot respawned up to ``respawn_limit`` times
        before it is retired (surfacing via ``workers_alive`` and the
        failing health probe).
        """
        restarts = 0
        while True:
            try:
                await self._worker()
            except asyncio.CancelledError:
                raise
            except BaseException as error:  # noqa: BLE001 - see docstring
                log_event(
                    _log, logging.ERROR, "worker-crashed",
                    slot=slot,
                    error=str(error),
                    error_type=type(error).__name__,
                    restarts=restarts,
                )
                if restarts >= self.respawn_limit:
                    log_event(
                        _log, logging.ERROR, "worker-retired",
                        slot=slot, restarts=restarts,
                    )
                    return
                restarts += 1
                self.stats.worker_restarts += 1

    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            key, fn, future, ctx, enqueued_at = await self._queue.get()
            started_at = perf_counter()
            self._wait_hist.observe((started_at - enqueued_at) * 1000.0)
            try:
                # ctx.run keeps the submitter's contextvars (current span,
                # trace id) current inside the pool thread.
                value = await loop.run_in_executor(self._executor, ctx.run, fn)
            except asyncio.CancelledError:
                if not future.done():
                    future.cancel()
                raise
            except Exception as error:
                self.stats.failed += 1
                self._run_hist.observe((perf_counter() - started_at) * 1000.0)
                trace_id = ctx.run(current_trace_id)
                log_event(
                    _log, logging.ERROR, "worker-error",
                    code=getattr(error, "code", "internal-error"),
                    error=str(error),
                    error_type=type(error).__name__,
                    **({"trace_id": trace_id} if trace_id else {}),
                )
                if not future.done():
                    future.set_exception(error)
                # The traceback is delivered to every waiter; the worker
                # stays alive.
                future.exception()
            except BaseException as error:
                # A worker-killing crash (KeyboardInterrupt from the job,
                # a scheduler bug): fail the waiters before the worker
                # dies, then let the supervisor respawn the slot.
                self.stats.failed += 1
                if not future.done():
                    future.set_exception(ServiceError(
                        "scheduler worker crashed: "
                        f"{type(error).__name__}: {error}",
                    ))
                    future.exception()
                raise
            else:
                self.stats.executed += 1
                self._run_hist.observe((perf_counter() - started_at) * 1000.0)
                if not future.done():
                    future.set_result(value)
            finally:
                self._inflight.pop(key, None)
                self._queue.task_done()

    # ------------------------------------------------------------------
    # metrics export
    # ------------------------------------------------------------------
    def metric_families(self) -> list[tuple[str, dict]]:
        """Scheduler counters and live queue depth as metric families."""
        snapshot = self.stats.snapshot()
        events = [
            ({"event": event}, snapshot[event])
            for event in ("submitted", "coalesced", "executed", "failed")
        ]
        depth = self._queue.qsize() if self._queue is not None else 0
        return [
            family_snapshot(
                "repro_scheduler_requests_total", "counter", events,
                help="Jobs submitted, coalesced, executed, and failed.",
            ),
            family_snapshot(
                "repro_scheduler_queue_depth", "gauge", [({}, depth)],
                help="Jobs currently waiting in the scheduler queue.",
            ),
            family_snapshot(
                "repro_scheduler_queue_depth_max", "gauge",
                [({}, snapshot["max_queue_depth"])],
                help="High-water mark of the scheduler queue.",
            ),
            family_snapshot(
                "repro_scheduler_workers_alive", "gauge",
                [({}, self.workers_alive)],
                help="Worker slots currently alive (configured: workers).",
            ),
            family_snapshot(
                "repro_scheduler_worker_restarts_total", "counter",
                [({}, snapshot["worker_restarts"])],
                help="Times a crashed worker slot was respawned.",
            ),
        ]

    # ------------------------------------------------------------------
    # health probes
    # ------------------------------------------------------------------
    def queue_saturation(self) -> float:
        """Live queue depth as a fraction of ``max_queue``."""
        if self._queue is None:
            return 0.0
        return self._queue.qsize() / self.max_queue
