"""Request scheduling: bounded queue, worker pool, request coalescing.

The service's unit of work is a *keyed job*: a canonical request key plus
a zero-argument callable producing the answer.  The scheduler guarantees

* **coalescing** — identical in-flight requests share one computation:
  the second ``submit`` of a key awaits the first key's future instead of
  enqueueing new work (heavy traffic on a hot (pattern, target) pair costs
  one count, not N);
* **bounded queueing** — ``submit`` applies backpressure once ``max_queue``
  jobs are waiting (the HTTP handler simply awaits; clients see latency,
  the process never sees an unbounded queue);
* **limited concurrency** — ``workers`` asyncio consumers execute jobs on
  a thread pool of the same size, so at most ``workers`` counts run at
  once and the engine's lock-guarded caches are shared safely.

Everything is stdlib asyncio; the scheduler owns its executor and is
started/stopped with the server.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable

from repro.errors import ServiceError


@dataclass
class SchedulerStats:
    """Counters for one :class:`RequestScheduler`."""

    submitted: int = 0
    coalesced: int = 0
    executed: int = 0
    failed: int = 0
    max_queue_depth: int = 0

    @property
    def coalesce_rate(self) -> float:
        return self.coalesced / self.submitted if self.submitted else 0.0

    def snapshot(self) -> dict[str, int | float]:
        return {
            "submitted": self.submitted,
            "coalesced": self.coalesced,
            "executed": self.executed,
            "failed": self.failed,
            "max_queue_depth": self.max_queue_depth,
            "coalesce_rate": round(self.coalesce_rate, 4),
        }


class RequestScheduler:
    """A coalescing, bounded, concurrency-limited job scheduler."""

    def __init__(self, workers: int = 4, max_queue: int = 256) -> None:
        if workers < 1:
            raise ServiceError("workers must be positive")
        if max_queue < 1:
            raise ServiceError("max_queue must be positive")
        self.workers = workers
        self.max_queue = max_queue
        self.stats = SchedulerStats()
        self._queue: asyncio.Queue | None = None
        self._inflight: dict = {}
        self._tasks: list[asyncio.Task] = []
        self._executor: ThreadPoolExecutor | None = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._tasks:
            return
        self._queue = asyncio.Queue(self.max_queue)
        self._executor = ThreadPoolExecutor(
            max_workers=self.workers,
            thread_name_prefix="repro-service",
        )
        self._tasks = [
            asyncio.create_task(self._worker()) for _ in range(self.workers)
        ]

    async def stop(self) -> None:
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except asyncio.CancelledError:
                pass
        self._tasks = []
        if self._executor is not None:
            self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
        # Jobs still queued (or whose worker died mid-flight) must not
        # leave their waiters hanging on futures nobody will resolve.
        if self._queue is not None:
            while not self._queue.empty():
                _, _, future = self._queue.get_nowait()
                if not future.done():
                    future.cancel()
        for future in self._inflight.values():
            if not future.done():
                future.cancel()
        self._queue = None
        self._inflight.clear()

    @property
    def running(self) -> bool:
        return bool(self._tasks)

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    async def submit(self, key, fn: Callable[[], object]):
        """Run ``fn`` (or join the identical in-flight request) and return
        its result.  ``key`` must canonically identify the work."""
        if self._queue is None:
            raise RuntimeError("scheduler is not running")
        self.stats.submitted += 1
        future = self._inflight.get(key)
        if future is not None:
            self.stats.coalesced += 1
            # shield: one cancelled waiter must not cancel the shared job.
            return await asyncio.shield(future)
        future = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            await self._queue.put((key, fn, future))
        except BaseException:
            # The enqueue never happened; cancel the future so waiters that
            # already coalesced onto it are released rather than hung.
            self._inflight.pop(key, None)
            if not future.done():
                future.cancel()
            raise
        depth = self._queue.qsize()
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth
        return await asyncio.shield(future)

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    async def _worker(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            key, fn, future = await self._queue.get()
            try:
                value = await loop.run_in_executor(self._executor, fn)
            except asyncio.CancelledError:
                if not future.done():
                    future.cancel()
                raise
            except Exception as error:
                self.stats.failed += 1
                if not future.done():
                    future.set_exception(error)
                # The traceback is delivered to every waiter; nothing to
                # log here and the worker stays alive.
                future.exception()
            else:
                self.stats.executed += 1
                if not future.done():
                    future.set_result(value)
            finally:
                self._inflight.pop(key, None)
                self._queue.task_done()
