"""The persistent cache tier under the engine's in-memory LRUs.

:class:`PersistentStore` keeps compiled plans and finished counts on disk,
keyed by the *same* canonical keys the :class:`~repro.engine.cache.EngineCache`
uses, so a restarted service serves warm traffic with zero recompilation:

* **counts** live in an append-only ``counts.jsonl`` (one ``{"key", "value"}``
  object per line, last write wins), loaded into an index at open;
* **plans** are pickled individually under ``plans/<digest>.pkl`` and written
  atomically (temp file + ``os.replace``).

Cache keys contain frozensets, whose iteration order is not stable across
processes (string hashing is salted), so keys are digested through a
recursive *sorted* serialisation before touching the filesystem — the same
logical key always lands on the same digest, in every process.

The store is safe to share between *processes* (the cluster's workers all
point at one directory):

* count appends hold an advisory ``flock`` on the counts file, so two
  workers never interleave bytes of one line;
* before appending, the writer repairs a torn tail left by a writer that
  crashed mid-line (a missing final newline) by terminating it — the torn
  fragment then decodes as an invalid line and is skipped, instead of
  merging with the next append into a *valid* line carrying a wrong value;
* :meth:`~PersistentStore.refresh` folds lines appended by other processes
  into the in-memory index; ``load_count`` triggers it automatically on a
  miss when the file has grown, so workers serve each other's warm counts.

Plans need none of this: they are digest-named and written via
``os.replace``, which is already atomic across processes.

The store keeps its own :class:`~repro.engine.cache.CacheStats` (evictions
stay zero — nothing is ever evicted from disk), so ``repro engine-stats
--persistent`` and the service ``stats`` endpoint report the tier with the
exact vocabulary used for the memory tier.
"""

from __future__ import annotations

import json
import os
import pickle
import threading

try:  # POSIX only; on other platforms appends fall back to best-effort
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platforms
    fcntl = None  # type: ignore[assignment]

from repro.engine.cache import CacheStats, LRUCache
from repro.utils import stable_key_digest

__all__ = ["PersistentStore", "stable_key_digest"]

_COUNTS_FILE = "counts.jsonl"
_PLANS_DIR = "plans"


def _flock(handle, exclusive: bool) -> bool:
    if fcntl is None:
        return False
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX if exclusive else fcntl.LOCK_SH)
    return True


def _funlock(handle) -> None:
    if fcntl is not None:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)


class PersistentStore:
    """On-disk plan + count storage implementing the engine's store protocol
    (``load_plan`` / ``save_plan`` / ``load_count`` / ``save_count``)."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._plans_path = os.path.join(self.path, _PLANS_DIR)
        os.makedirs(self._plans_path, exist_ok=True)
        self._counts_path = os.path.join(self.path, _COUNTS_FILE)
        self.stats = CacheStats()
        # One lock for the in-memory state (counts index, digest memo,
        # stats, append handle); plan pickling I/O deliberately runs
        # outside it — os.replace gives per-file atomicity, so a slow
        # disk round-trip must not serialize the worker pool's in-memory
        # count lookups.
        self._lock = threading.RLock()
        self._counts: dict[str, int] = {}
        # Keys embed full target fingerprints; memoise their digests so
        # repeated traffic on the same (pattern, target) pays the O(n+m)
        # serialisation once.
        self._digests = LRUCache(65536)
        # Bytes of counts.jsonl already folded into the index; refresh()
        # resumes scanning from here.  A torn final fragment (crashed
        # writer) is never consumed, so its size is remembered to avoid
        # re-reading it on every subsequent miss.
        self._read_offset = 0
        self._stalled_size: int | None = None
        self.refreshes = 0
        self._read_handle_obj: object | None = None
        self._load_counts()
        # One long-lived append handle: save_count is on the hot path of
        # every cold engine.count, so per-write open/close is avoided.
        self._counts_handle = open(self._counts_path, "ab")

    def _read_handle(self):
        handle = self._read_handle_obj
        if handle is None or handle.closed:
            handle = open(self._counts_path, "rb")
            self._read_handle_obj = handle
        return handle

    def _load_counts(self) -> None:
        if not os.path.exists(self._counts_path):
            return
        self._scan_new_lines()

    def _scan_new_lines(self) -> int:
        """Fold complete lines past ``_read_offset`` into the index.

        Holds a shared ``flock`` for the read, so a concurrent writer's
        line is either fully visible or not yet started; a torn tail
        (crashed writer, no trailing newline) is left unconsumed — the
        next locked append terminates it, turning the fragment into an
        invalid line that is skipped here, never merged into a valid one.
        Returns the number of entries applied.  Caller holds ``_lock``.
        """
        try:
            read = self._read_handle()
            locked = _flock(read, exclusive=False)
            try:
                read.seek(self._read_offset)
                data = read.read()
            finally:
                if locked:
                    _funlock(read)
        except OSError:
            return 0
        end = data.rfind(b"\n") + 1
        self._read_offset += end
        self._stalled_size = (
            self._read_offset + (len(data) - end) if end < len(data) else None
        )
        applied = 0
        for line in data[:end].splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
                self._counts[record["key"]] = int(record["value"])
                applied += 1
            except (ValueError, KeyError, TypeError):
                # A torn line (crashed writer, since repaired) is not
                # fatal; the entry is simply recomputed and re-appended.
                continue
        return applied

    def refresh(self) -> int:
        """Fold counts appended by *other* processes into the index.

        Returns the number of entries applied.  ``load_count`` calls this
        automatically on a miss when the file has grown; explicit calls
        are only needed to eagerly warm a long-idle process.
        """
        with self._lock:
            self.refreshes += 1
            return self._scan_new_lines()

    def _maybe_refresh_locked(self) -> bool:
        """Cheap growth check (one stat) before paying a rescan."""
        try:
            size = os.stat(self._counts_path).st_size
        except OSError:
            return False
        if size <= self._read_offset or size == self._stalled_size:
            return False
        self.refreshes += 1
        return self._scan_new_lines() > 0

    def _digest(self, key) -> str:
        with self._lock:
            cached = self._digests.get(key)
            if cached is not None:
                return cached
        digest = stable_key_digest(key)
        with self._lock:
            self._digests.put(key, digest)
        return digest

    # ------------------------------------------------------------------
    # engine store protocol
    # ------------------------------------------------------------------
    def load_count(self, key) -> int | None:
        digest = self._digest(key)
        with self._lock:
            value = self._counts.get(digest)
            if value is None and self._maybe_refresh_locked():
                value = self._counts.get(digest)
            if value is None:
                self.stats.count_misses += 1
            else:
                self.stats.count_hits += 1
            return value

    def save_count(self, key, value: int) -> None:
        digest = self._digest(key)
        line = json.dumps({"key": digest, "value": value}).encode("ascii")
        with self._lock:
            if self._counts.get(digest) == value:
                return
            self._counts[digest] = value
            if self._counts_handle.closed:  # reopened after close()
                self._counts_handle = open(self._counts_path, "ab")
            handle = self._counts_handle
            try:
                locked = _flock(handle, exclusive=True)
                try:
                    handle.write(self._tail_repair() + line + b"\n")
                    handle.flush()
                finally:
                    if locked:
                        _funlock(handle)
            except OSError:
                # Full disk / vanished directory: persistence is an
                # optimisation, never a correctness dependency (the
                # write probe surfaces the condition to health checks).
                return

    def _tail_repair(self) -> bytes:
        """A newline iff the file ends mid-line (crashed writer).

        Called with the exclusive append lock held.  Terminating the torn
        fragment *before* appending makes it decode as one invalid line —
        without this, ``fragment + this line`` could merge into a single
        syntactically valid record carrying a corrupted value.
        """
        try:
            read = self._read_handle()
            size = read.seek(0, os.SEEK_END)
            if size == 0:
                return b""
            read.seek(size - 1)
            return b"" if read.read(1) == b"\n" else b"\n"
        except OSError:
            return b""

    def close(self) -> None:
        """Release the file handles (reopened on demand if used again)."""
        with self._lock:
            if not self._counts_handle.closed:
                self._counts_handle.close()
            read = self._read_handle_obj
            if read is not None and not read.closed:
                read.close()

    def load_plan(self, key):
        digest = self._digest(key)
        plan_path = os.path.join(self._plans_path, f"{digest}.pkl")
        try:
            with open(plan_path, "rb") as handle:
                plan = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            with self._lock:
                self.stats.plan_misses += 1
            return None
        with self._lock:
            self.stats.plan_hits += 1
        return plan

    def save_plan(self, key, plan) -> None:
        digest = self._digest(key)
        plan_path = os.path.join(self._plans_path, f"{digest}.pkl")
        if os.path.exists(plan_path):
            return
        temp_path = f"{plan_path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            with open(temp_path, "wb") as handle:
                pickle.dump(plan, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, plan_path)
        except (OSError, pickle.PickleError):
            # Unpicklable exotic plan or a full disk: persistence is an
            # optimisation, never a correctness dependency.
            try:
                os.unlink(temp_path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def write_probe(self) -> str:
        """Prove the store directory is still writable.

        Writes and removes a tiny marker file; raises ``OSError`` when
        the disk is full, the directory vanished, or permissions were
        lost — the health layer turns that into a failing probe.
        """
        probe_path = os.path.join(
            self.path, f".write-probe.{os.getpid()}.{threading.get_ident()}",
        )
        with open(probe_path, "w", encoding="utf-8") as handle:
            handle.write("ok")
        os.unlink(probe_path)
        return self.path

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def counts_stored(self) -> int:
        with self._lock:
            return len(self._counts)

    def plans_stored(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self._plans_path)
                if name.endswith(".pkl")
            )
        except OSError:
            return 0

    def summary(self) -> dict[str, int | float | str]:
        report: dict[str, int | float | str] = {
            "path": self.path,
            "counts_stored": self.counts_stored(),
            "plans_stored": self.plans_stored(),
            "refreshes": self.refreshes,
        }
        report.update(self.stats.snapshot())
        return report
