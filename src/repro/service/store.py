"""The persistent cache tier under the engine's in-memory LRUs.

:class:`PersistentStore` keeps compiled plans and finished counts on disk,
keyed by the *same* canonical keys the :class:`~repro.engine.cache.EngineCache`
uses, so a restarted service serves warm traffic with zero recompilation:

* **counts** live in an append-only ``counts.jsonl`` (one ``{"key", "value"}``
  object per line, last write wins), loaded into an index at open;
* **plans** are pickled individually under ``plans/<digest>.pkl`` and written
  atomically (temp file + ``os.replace``).

Cache keys contain frozensets, whose iteration order is not stable across
processes (string hashing is salted), so keys are digested through a
recursive *sorted* serialisation before touching the filesystem — the same
logical key always lands on the same digest, in every process.

The store keeps its own :class:`~repro.engine.cache.CacheStats` (evictions
stay zero — nothing is ever evicted from disk), so ``repro engine-stats
--persistent`` and the service ``stats`` endpoint report the tier with the
exact vocabulary used for the memory tier.
"""

from __future__ import annotations

import json
import os
import pickle
import threading

from repro.engine.cache import CacheStats, LRUCache
from repro.utils import stable_key_digest

__all__ = ["PersistentStore", "stable_key_digest"]

_COUNTS_FILE = "counts.jsonl"
_PLANS_DIR = "plans"


class PersistentStore:
    """On-disk plan + count storage implementing the engine's store protocol
    (``load_plan`` / ``save_plan`` / ``load_count`` / ``save_count``)."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        self._plans_path = os.path.join(self.path, _PLANS_DIR)
        os.makedirs(self._plans_path, exist_ok=True)
        self._counts_path = os.path.join(self.path, _COUNTS_FILE)
        self.stats = CacheStats()
        # One lock for the in-memory state (counts index, digest memo,
        # stats, append handle); plan pickling I/O deliberately runs
        # outside it — os.replace gives per-file atomicity, so a slow
        # disk round-trip must not serialize the worker pool's in-memory
        # count lookups.
        self._lock = threading.RLock()
        self._counts: dict[str, int] = {}
        # Keys embed full target fingerprints; memoise their digests so
        # repeated traffic on the same (pattern, target) pays the O(n+m)
        # serialisation once.
        self._digests = LRUCache(65536)
        self._load_counts()
        # One long-lived append handle: save_count is on the hot path of
        # every cold engine.count, so per-write open/close is avoided.
        self._counts_handle = open(self._counts_path, "a", encoding="utf-8")

    def _load_counts(self) -> None:
        if not os.path.exists(self._counts_path):
            return
        with open(self._counts_path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    self._counts[record["key"]] = int(record["value"])
                except (ValueError, KeyError, TypeError):
                    # A torn final line (crashed writer) is not fatal; the
                    # entry is simply recomputed and re-appended.
                    continue

    def _digest(self, key) -> str:
        with self._lock:
            cached = self._digests.get(key)
            if cached is not None:
                return cached
        digest = stable_key_digest(key)
        with self._lock:
            self._digests.put(key, digest)
        return digest

    # ------------------------------------------------------------------
    # engine store protocol
    # ------------------------------------------------------------------
    def load_count(self, key) -> int | None:
        digest = self._digest(key)
        with self._lock:
            value = self._counts.get(digest)
            if value is None:
                self.stats.count_misses += 1
            else:
                self.stats.count_hits += 1
            return value

    def save_count(self, key, value: int) -> None:
        digest = self._digest(key)
        with self._lock:
            if self._counts.get(digest) == value:
                return
            self._counts[digest] = value
            if self._counts_handle.closed:  # reopened after close()
                self._counts_handle = open(
                    self._counts_path, "a", encoding="utf-8",
                )
            self._counts_handle.write(
                json.dumps({"key": digest, "value": value}) + "\n",
            )
            self._counts_handle.flush()

    def close(self) -> None:
        """Release the append handle (reopened on demand if written again)."""
        with self._lock:
            if not self._counts_handle.closed:
                self._counts_handle.close()

    def load_plan(self, key):
        digest = self._digest(key)
        plan_path = os.path.join(self._plans_path, f"{digest}.pkl")
        try:
            with open(plan_path, "rb") as handle:
                plan = pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            with self._lock:
                self.stats.plan_misses += 1
            return None
        with self._lock:
            self.stats.plan_hits += 1
        return plan

    def save_plan(self, key, plan) -> None:
        digest = self._digest(key)
        plan_path = os.path.join(self._plans_path, f"{digest}.pkl")
        if os.path.exists(plan_path):
            return
        temp_path = f"{plan_path}.tmp.{os.getpid()}.{threading.get_ident()}"
        try:
            with open(temp_path, "wb") as handle:
                pickle.dump(plan, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(temp_path, plan_path)
        except (OSError, pickle.PickleError):
            # Unpicklable exotic plan or a full disk: persistence is an
            # optimisation, never a correctness dependency.
            try:
                os.unlink(temp_path)
            except OSError:
                pass

    # ------------------------------------------------------------------
    # health
    # ------------------------------------------------------------------
    def write_probe(self) -> str:
        """Prove the store directory is still writable.

        Writes and removes a tiny marker file; raises ``OSError`` when
        the disk is full, the directory vanished, or permissions were
        lost — the health layer turns that into a failing probe.
        """
        probe_path = os.path.join(
            self.path, f".write-probe.{os.getpid()}.{threading.get_ident()}",
        )
        with open(probe_path, "w", encoding="utf-8") as handle:
            handle.write("ok")
        os.unlink(probe_path)
        return self.path

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def counts_stored(self) -> int:
        with self._lock:
            return len(self._counts)

    def plans_stored(self) -> int:
        try:
            return sum(
                1 for name in os.listdir(self._plans_path)
                if name.endswith(".pkl")
            )
        except OSError:
            return 0

    def summary(self) -> dict[str, int | float | str]:
        report: dict[str, int | float | str] = {
            "path": self.path,
            "counts_stored": self.counts_stored(),
            "plans_stored": self.plans_stored(),
        }
        report.update(self.stats.snapshot())
        return report
