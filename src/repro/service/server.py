"""The counting service: HTTP/JSON API over a shared engine.

Layers (top to bottom):

* :class:`ServiceServer` / :class:`BackgroundServer` — a minimal
  HTTP/1.1 loop on ``asyncio.start_server`` (stdlib only: parse request
  line + headers, read ``Content-Length`` body, answer JSON, close);
* :class:`CountingService` — the operations.  Request bodies decode into
  the canonical :mod:`repro.api.tasks` specs (the per-verb bodies *are*
  the spec payloads minus the ``task`` discriminator) and execute on a
  :class:`~repro.api.executors.LocalExecutor` bound to the service's
  engine and registry; every counting operation goes through the
  :class:`~repro.service.scheduler.RequestScheduler` under a canonical
  request key, so identical concurrent requests coalesce;
* one :class:`~repro.engine.HomEngine` shared by all workers (its caches
  are lock-guarded), optionally backed by a
  :class:`~repro.service.store.PersistentStore` so plans and counts
  survive restarts.

The service installs its engine as the process-wide default
(:func:`repro.engine.set_default_engine`), so library paths reached from
request handlers — Lemma-22 interpolation in particular — ride the same
caches.  ``BackgroundServer.stop()`` restores the previous default.

Errors travel as structured payloads: ``{"kind": "error", "error":
message, "code": stable-code}`` with the code taken from the
:mod:`repro.errors` hierarchy.

Routes
------
``POST /task``             any canonical task payload (``{"task": kind, ...}``),
                           answered with the full result payload
``POST /count``            ``{"pattern": graphspec, "target": name|graphspec}``
``POST /count-answers``    ``{"query": text, "target": name|graphspec}`` or
                           ``{"kg_query": kgqueryspec, "target": name|kgspec}``
``POST /wl-dim``           ``{"query": text}``
``POST /analyze``          ``{"query": text}``
``POST /register-dataset`` ``{"name": str, "graph": graphspec, "shards": int}``
                           or ``{"name": str, "kg": kgspec}``
``GET  /stats``, ``GET /datasets``, ``GET /health``
``GET  /metrics``          Prometheus text (``?format=json`` for the JSON
                           snapshot) of the process metrics registry
``GET  /traces``           recent and recent-slow span trees (``?limit=n``)
``GET  /profile``          the sampling profiler's snapshot
                           (``?format=collapsed`` for flame-graph text)
``POST /profile``          ``{"action": "start"|"stop"|"snapshot", ...}``
                           controls the process-global profiler
``GET  /slow-queries``     the slow-query log (``?limit=n``; an optional
                           ``threshold_ms`` retunes the capture threshold)
``GET  /healthz``          liveness: every registered health probe, 503
                           while any probe is failing
``GET  /readyz``           readiness: the gating probes (scheduler
                           workers, store writability) plus the dataset
                           count, 503 until the process should take
                           traffic
``GET  /slo``              objective attainment + burn rates over the
                           rolling SLO windows (``REPRO_SLO`` grammar)
``GET  /alerts``           the alert rule engine's current state
                           (evaluated on request)

Every HTTP response carries the request's trace id in an
``X-Repro-Trace`` header; error payloads (status >= 400) repeat it as a
``trace_id`` field so clients can quote it when reporting problems.
Requests may send their own ``X-Repro-Trace``: the server's root span
adopts it, linking server-side spans into the caller's trace.
"""

from __future__ import annotations

import asyncio
import json
import logging
import sys
import threading
from urllib.parse import parse_qsl

from repro.api.executors import LocalExecutor
from repro.api.session import Session
from repro.api.tasks import TaskBatch
from repro.engine import HomEngine, set_default_engine
from repro.engine.engine import engine_metric_families
from repro.errors import ReproError, ServiceError
from repro.obs import (
    family_snapshot,
    get_logger,
    log_event,
    observe_slo,
    profile_snapshot,
    recent_traces,
    registry as metrics_registry,
    render_collapsed,
    set_slowlog_threshold_ms,
    slow_queries,
    slow_traces,
    slowlog_threshold_ms,
    span,
    span_to_dict,
    start_profiling,
    stop_profiling,
)
from repro.obs.alerts import AlertManager, burn_rate_rule, probe_rule, threshold_rule
from repro.obs.health import (
    FAILING,
    EventLoopLagMonitor,
    GcPauseTracker,
    HealthRegistry,
    MemoryWatermarkProbe,
    degraded as probe_degraded,
    failing as probe_failing,
    ok as probe_ok,
)
from repro.obs.slo import tracker as slo_tracker
from repro.service.registry import DatasetRegistry, RegistryError
from repro.service.scheduler import RequestScheduler
from repro.service.store import PersistentStore, stable_key_digest
from repro.service.wire import (
    WireError,
    alerts_payload,
    error_payload,
    graph_from_spec,
    health_payload,
    kg_from_spec,
    kg_query_from_spec,
    kg_query_to_spec,
    kg_to_spec,
    kg_update_from_spec,
    readiness_payload,
    result_to_payload,
    result_to_wire,
    slo_payload,
    subscription_payload,
    target_update_payload,
    task_from_wire,
    update_batch_from_spec,
)

_MAX_BODY = 32 * 1024 * 1024

_log = get_logger("server")

# Meta/introspection routes stay out of the SLO windows: a burst of
# monitoring traffic must never burn a workload's error budget.
_SLO_EXEMPT_ROUTES = frozenset({
    "/health", "/healthz", "/readyz", "/metrics", "/slo", "/alerts",
    "/stats", "/traces", "/profile", "/slow-queries",
})


def _bad_request(message: str) -> dict:
    return {"kind": "error", "error": message, "code": "bad-request"}


def _require(body: dict, field: str):
    if field not in body:
        raise WireError(f"request is missing the {field!r} field")
    return body[field]


class CountingService:
    """The request handlers behind the HTTP routes (transport-agnostic)."""

    def __init__(
        self,
        data_dir: str | None = None,
        workers: int = 4,
        max_queue: int = 256,
        engine: HomEngine | None = None,
        install_default_engine: bool = True,
    ) -> None:
        if engine is not None and data_dir is not None:
            raise ServiceError("pass either an engine or a data_dir, not both")
        if engine is None:
            self.store = PersistentStore(data_dir) if data_dir else None
            engine = HomEngine(store=self.store)
        else:
            self.store = engine.store
        self.engine = engine
        self.registry = DatasetRegistry()
        # All counting routes execute their task specs on this session;
        # the executor shares the service engine and registry, so the
        # generic /task route and the per-verb routes serve identical state.
        self.session = Session(
            executor=LocalExecutor(engine=engine, registry=self.registry),
        )
        self.scheduler = RequestScheduler(workers=workers, max_queue=max_queue)
        self.request_counts: dict[str, int] = {}
        self.error_counts: dict[tuple[str, str], int] = {}
        self._request_ms = metrics_registry().histogram(
            "repro_server_request_ms",
            "End-to-end request handling latency per route.",
            labelnames=("route",),
        )
        # --- health / SLO / alert layer -------------------------------
        self.health = HealthRegistry()
        self.loop_monitor = EventLoopLagMonitor()
        self.gc_tracker = GcPauseTracker()
        self.gc_tracker.install()
        self.memory_probe = MemoryWatermarkProbe()
        self.slo = slo_tracker()
        self.alerts = AlertManager()
        self.health.register("event-loop", self.loop_monitor.probe)
        self.health.register("gc-pause", self.gc_tracker.probe)
        self.health.register("memory", self.memory_probe.probe)
        self.health.register("scheduler-workers", self._probe_scheduler_workers)
        self.health.register("scheduler-queue", self._probe_scheduler_queue)
        self.health.register("store-write", self._probe_store)
        self.health.register("dynamic-journal", self._probe_journals)
        for rule in (
            probe_rule(self.health, "event-loop", severity="page"),
            probe_rule(self.health, "scheduler-workers", severity="page"),
            probe_rule(self.health, "memory"),
            probe_rule(self.health, "store-write", severity="page",
                       fire_on=("failing",)),
            threshold_rule(
                "scheduler-queue-saturation",
                self.scheduler.queue_saturation,
                0.8,
                description="scheduler queue over 80% of max_queue",
            ),
        ):
            self.alerts.add_rule(*rule)
        # Burn-rate rules cover the objectives configured at construction
        # (REPRO_SLO or a prior configure_slo()); objectives added later
        # still show on /slo, just without a pre-built alert rule.
        for objective in self.slo.objectives:
            self.alerts.add_rule(*burn_rate_rule(self.slo, objective))
        metrics_registry().register_collector(self._collect_metrics)
        metrics_registry().register_collector(self._collect_health)
        self._routes = {
            ("POST", "/task"): self._op_task,
            ("POST", "/count"): self._op_count,
            ("POST", "/count-answers"): self._op_count_answers,
            ("POST", "/wl-dim"): self._op_wl_dim,
            ("POST", "/analyze"): self._op_analyze,
            ("POST", "/register-dataset"): self._op_register,
            ("POST", "/target-update"): self._op_target_update,
            ("POST", "/subscribe"): self._op_subscribe,
            ("GET", "/subscriptions"): self._op_subscriptions,
            ("GET", "/stats"): self._op_stats,
            ("GET", "/datasets"): self._op_datasets,
            ("GET", "/health"): self._op_health,
            ("GET", "/healthz"): self._op_healthz,
            ("GET", "/readyz"): self._op_readyz,
            ("GET", "/slo"): self._op_slo,
            ("GET", "/alerts"): self._op_alerts,
            ("GET", "/metrics"): self._op_metrics,
            ("GET", "/traces"): self._op_traces,
            ("GET", "/profile"): self._op_profile,
            ("POST", "/profile"): self._op_profile_control,
            ("GET", "/slow-queries"): self._op_slow_queries,
        }
        # Updates and subscription creations are stateful: each submission
        # gets a unique scheduler key (never coalesced); per-dataset
        # serialisation happens on the dynamic graph's lock.
        self._sequence = 0
        self._sequence_lock = threading.Lock()
        self._previous_default: tuple | None = None
        if install_default_engine:
            self._previous_default = (set_default_engine(self.engine),)

    def restore_default_engine(self) -> None:
        """Undo the ``set_default_engine`` performed at construction."""
        if self._previous_default is not None:
            set_default_engine(self._previous_default[0])
            self._previous_default = None

    def close(self) -> None:
        """Release held resources (the persistent store's append handle)."""
        metrics_registry().unregister_collector(self._collect_metrics)
        metrics_registry().unregister_collector(self._collect_health)
        self.stop_monitors()
        self.gc_tracker.uninstall()
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------
    # health monitors (started by the transport once a loop exists)
    # ------------------------------------------------------------------
    def start_monitors(self, loop) -> None:
        """Attach the event-loop lag watchdog to the serving loop."""
        self.loop_monitor.start(loop)

    def stop_monitors(self) -> None:
        self.loop_monitor.stop()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def handle(
        self, method: str, path: str, body: dict,
        client_trace: str | None = None,
    ) -> tuple[int, dict | str, str | None]:
        """Dispatch one request: ``(status, payload, trace_id)``.

        The whole request runs under a root ``server.request`` span, so
        scheduler hops and engine work nest under one trace; the trace id
        is echoed in the transport's ``X-Repro-Trace`` header and, for
        error payloads, in an additive ``trace_id`` field.  When the
        caller sent its own ``X-Repro-Trace`` (``client_trace``), the
        root span adopts that id, so server-side spans land in the trace
        rings under the caller's trace.  Unexpected handler exceptions
        become structured 500s with an error log.
        """
        route = (method.upper(), path.rstrip("/") or "/")
        handler = self._routes.get(route)
        if handler is None:
            name = "<unknown>"
            self.error_counts[(name, "unknown-route")] = (
                self.error_counts.get((name, "unknown-route"), 0) + 1
            )
            return 404, {
                "kind": "error",
                "error": f"no route {method.upper()} {path}",
                "code": "unknown-route",
            }, None
        name = route[1]
        self.request_counts[name] = self.request_counts.get(name, 0) + 1
        status = 200
        sp = span("server.request", route=name, method=route[0])
        with sp:
            sp.adopt_trace(client_trace)
            try:
                payload: dict | str = await handler(body)
                # Health-style handlers return (status, payload) so a
                # degraded verdict can travel as a 503 without being an
                # error payload.
                if isinstance(payload, tuple):
                    status, payload = payload
            except RegistryError as error:
                status, payload = 404, error_payload(error)
            except ReproError as error:
                status, payload = 400, error_payload(error)
            except Exception as error:  # noqa: BLE001 - a 500, not a crash
                status = 500
                payload = {
                    "kind": "error",
                    "error": f"{type(error).__name__}: {error}",
                    "code": "internal-error",
                }
            sp.annotate(status=status)
        self._request_ms.labels(route=name).observe(sp.duration_ms)
        if name not in _SLO_EXEMPT_ROUTES:
            observe_slo(
                name.lstrip("/"), sp.duration_ms, error=status >= 500,
            )
        if (
            status >= 400
            and isinstance(payload, dict)
            and payload.get("kind") == "error"
        ):
            code = str(payload.get("code", "internal-error"))
            self.error_counts[(name, code)] = (
                self.error_counts.get((name, code), 0) + 1
            )
            if sp.trace_id is not None:
                payload = {**payload, "trace_id": sp.trace_id}
            if status >= 500:
                log_event(
                    _log, logging.ERROR, "request-error",
                    route=name, status=status, code=code,
                    error=str(payload.get("error", "")),
                    **({"trace_id": sp.trace_id} if sp.trace_id else {}),
                )
        return status, payload, sp.trace_id

    # ------------------------------------------------------------------
    # task resolution
    # ------------------------------------------------------------------
    def _decode_task(self, kind: str, body: dict):
        """Decode a per-verb request body into its canonical task spec.

        The bodies *are* the canonical payloads of :func:`task_to_wire`
        (clients send the ``task`` discriminator; legacy callers omit it
        and the route supplies it here)."""
        if "target" not in body and kind in (
            "hom-count", "answer-count", "kg-answer-count",
        ):
            raise WireError("request is missing the 'target' field")
        return task_from_wire({**body, "task": kind})

    def _target_token(self, task):
        """The coalescing token of a task's target at admission time.

        Derived from dataset *content* (one immutable serving-state
        snapshot), not the name, so two names over different content
        never share in-flight work.  The executor reads its own single
        snapshot when the job actually runs — graph and cache key always
        come from one version — so a coalesced waiter may receive a count
        for a version *newer* than its admission token (committed while
        the request was in flight), never a mix of versions.  Resolving
        here also 404s unknown names before any work is scheduled."""
        target = getattr(task, "target", None)
        if target is None:
            return None
        if isinstance(target, str):
            kind = "kg" if task.kind == "kg-answer-count" else "graph"
            serving = self.registry.get(target, kind=kind).serving
            return ("dataset", serving.content_token)
        if hasattr(target, "triples"):
            return ("inline", stable_key_digest(kg_to_spec(target)))
        return ("inline", target.edge_fingerprint())

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _op_task(self, body: dict) -> dict:
        """The generic route: any canonical task payload, full result out."""

        # Decoding (graph specs, defensive copies, eager query parsing),
        # token resolution, and the spec digest all do CPU work on inline
        # targets — the whole admission step runs off the event loop.
        # Member tokens also validate dataset names up front and keep
        # batch keys content-accurate for coalescing.
        def admission() -> tuple:
            task = task_from_wire(body)
            if isinstance(task, TaskBatch):
                token: object = tuple(
                    self._target_token(member) for member in task
                )
            else:
                token = self._target_token(task)
            return task, task.cache_key(), token

        task, digest, token = await asyncio.get_running_loop().run_in_executor(
            None, admission,
        )
        if isinstance(task, TaskBatch):
            results = await self.scheduler.submit(
                ("task-batch", digest, token),
                lambda: self.session.run_batch(task),
            )
            return {
                "kind": "result-batch",
                "results": [result_to_wire(result) for result in results],
            }
        result = await self.scheduler.submit(
            ("task", digest, token), lambda: self.session.run(task),
        )
        return result_to_wire(result)

    async def _op_count(self, body: dict) -> dict:
        task = self._decode_task("hom-count", body)
        token = self._target_token(task)
        key = ("count", task.pattern.edge_fingerprint(), token)
        # The executor resolves one serving-state snapshot per run (shard
        # fan-out included) and plan describe() stays on the worker.
        result = await self.scheduler.submit(
            key, lambda: self.session.run(task),
        )
        payload = result_to_payload(result)
        # Coalesced waiters share the first submitter's result; re-echo
        # *this* caller's target name (tokens are content-derived, so two
        # names over identical content may share one computation).
        if isinstance(task.target, str) and payload["target"] != task.target:
            payload = {**payload, "target": task.target}
        return payload

    async def _op_count_answers(self, body: dict) -> dict:
        if "kg_query" in body:
            return await self._op_count_kg_answers(body)
        from repro.queries.parser import format_query

        task = self._decode_task("answer-count", body)
        token = self._target_token(task)
        key = (
            "count-answers",
            format_query(task.parsed(), style="logic"),
            task.method,
            token,
        )
        payload = await self.scheduler.submit(
            key, lambda: result_to_payload(self.session.run(task)),
        )
        # Re-echo *this* caller's raw query text and target name (the
        # coalescing key uses the canonical logic form).
        target_name = task.target if isinstance(task.target, str) else None
        if payload.get("query") != task.query or (
            target_name is not None and payload.get("target") != target_name
        ):
            payload = {**payload, "query": task.query}
            if target_name is not None:
                payload["target"] = target_name
        return payload

    async def _op_count_kg_answers(self, body: dict) -> dict:
        task = self._decode_task("kg-answer-count", body)
        if isinstance(task.target, str):
            token = self._target_token(task)
        else:
            # The inline content digest is CPU-bound; keep it off the
            # event loop so concurrent requests stay responsive.  (The
            # gadget encoding itself happens on the worker, memoised per
            # spec by the executor.)
            token = (
                "inline",
                await asyncio.get_running_loop().run_in_executor(
                    None, lambda: stable_key_digest(kg_to_spec(task.target)),
                ),
            )
        key = (
            "kg-count-answers",
            stable_key_digest(kg_query_to_spec(task.query)),
            token,
        )
        payload = await self.scheduler.submit(
            key, lambda: result_to_payload(self.session.run(task)),
        )
        if isinstance(task.target, str) and payload["target"] != task.target:
            payload = {**payload, "target": task.target}
        return payload

    async def _op_wl_dim(self, body: dict) -> dict:
        task = self._decode_task("wl-dimension", body)
        payload = await self.scheduler.submit(
            ("wl-dim", task.query.strip()),
            lambda: result_to_payload(self.session.run(task)),
        )
        if payload.get("query") != task.query:  # coalesced onto another's
            payload = {**payload, "query": task.query}
        return payload

    async def _op_analyze(self, body: dict) -> dict:
        task = self._decode_task("analyze", body)
        payload = await self.scheduler.submit(
            ("analyze", task.query.strip()),
            lambda: result_to_payload(self.session.run(task)),
        )
        if payload.get("query") != task.query:
            payload = {**payload, "query": task.query}
        return payload

    async def _op_register(self, body: dict) -> dict:
        name = _require(body, "name")
        if not isinstance(name, str) or not name:
            raise WireError("dataset name must be a non-empty string")
        # Registration is the heaviest non-counting operation (spec
        # decoding, sharding, IndexedGraph pre-encoding, KG gadget
        # encoding); run it on the executor so the event loop keeps
        # serving health checks and completed counts meanwhile.  The
        # registry is lock-guarded, so worker-thread writes are safe.
        if "kg" in body:
            def build():
                return self.registry.register_kg(name, kg_from_spec(body["kg"]))
        elif "graph" in body:
            shards = body.get("shards", 1)
            if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
                raise WireError(f"'shards' must be a positive integer, got {shards!r}")

            def build():
                return self.registry.register_graph(
                    name, graph_from_spec(body["graph"]), shards=shards,
                )
        else:
            raise WireError("register-dataset needs a 'graph' or 'kg' spec")
        dataset = await asyncio.get_running_loop().run_in_executor(None, build)
        return {"kind": "register-dataset", "dataset": dataset.summary()}

    # ------------------------------------------------------------------
    # dynamic targets
    # ------------------------------------------------------------------
    def _next_sequence(self) -> int:
        with self._sequence_lock:
            self._sequence += 1
            return self._sequence

    def _subscription_payloads(self, dataset) -> list[dict]:
        """Payloads for every subscription of ``dataset``.

        Reading a handle's value may trigger a lazy (engine-backed)
        refresh, so callers must run this on a worker/executor thread —
        never on the event loop.
        """
        return [
            subscription_payload(subscription_id, dataset.name, handle)
            for subscription_id, handle in sorted(dataset.subscriptions.items())
        ]

    async def _op_target_update(self, body: dict) -> dict:
        """Advance a registered dataset's version by one update batch.

        The batch is applied — and every subscribed maintained count
        refreshed (delta or fallback recompute) and serialised into the
        response — on a scheduler worker, so updates queue behind
        counting traffic under the same backpressure, and heavy
        refreshes never block the event loop.
        """
        name = _require(body, "target")
        if not isinstance(name, str):
            raise WireError("'target' must be a registered dataset name")
        dataset = self.registry.get(name)  # validate before scheduling
        if dataset.kind == "kg":
            updates = kg_update_from_spec(body)

            def fn() -> dict:
                updated, version = self.registry.update_kg(name, **updates)
                return target_update_payload(
                    name,
                    version.version,
                    version.applied_summary(),
                    version.patched,
                    updated.stats,
                    self._subscription_payloads(updated),
                )
        else:
            batch = update_batch_from_spec(body)

            def fn() -> dict:
                updated, record = self.registry.update_graph(name, batch)
                return target_update_payload(
                    name,
                    record.version,
                    record.applied_summary(),
                    record.patched,
                    updated.stats,
                    self._subscription_payloads(updated),
                )

        key = ("target-update", name, self._next_sequence())
        return await self.scheduler.submit(key, fn)

    async def _op_subscribe(self, body: dict) -> dict:
        """Create a maintained count for a registered dataset.

        ``{"target": name, "pattern": graphspec}`` maintains a
        homomorphism count; ``{"target": name, "query": text}`` a CQ
        answer count; ``{"target": name, "kg_query": spec}`` a KG answer
        count.  The handle refreshes on every ``target-update``.
        """
        from repro.dynamic.kg import MaintainedKgAnswerCount
        from repro.dynamic.maintained import (
            MaintainedAnswerCount,
            MaintainedCount,
        )

        name = _require(body, "target")
        if not isinstance(name, str):
            raise WireError("'target' must be a registered dataset name")
        subscription_id = body.get("id")
        if subscription_id is None:
            subscription_id = f"sub-{self._next_sequence()}"
        if not isinstance(subscription_id, str) or not subscription_id:
            raise WireError("subscription 'id' must be a non-empty string")
        engine = self.engine
        if "kg_query" in body:
            dataset = self.registry.get(name, kind="kg")
            query = kg_query_from_spec(body["kg_query"])

            def fn():
                return MaintainedKgAnswerCount(
                    query, dataset.dynamic_kg, engine=engine,
                )
        elif "query" in body:
            from repro.queries.parser import parse_query

            dataset = self.registry.get(name, kind="graph")
            query = parse_query(body["query"])

            def fn():
                return MaintainedAnswerCount(
                    query, dataset.dynamic, engine=engine,
                )
        elif "pattern" in body:
            dataset = self.registry.get(name, kind="graph")
            pattern = graph_from_spec(body["pattern"])

            def fn():
                return MaintainedCount(pattern, dataset.dynamic, engine=engine)
        else:
            raise WireError(
                "subscribe needs a 'pattern', 'query', or 'kg_query' field",
            )

        def create_and_register() -> dict:
            handle = fn()
            previous = dataset.subscriptions.get(subscription_id)
            if previous is not None:
                previous.close()
            dataset.subscriptions[subscription_id] = handle
            return subscription_payload(subscription_id, name, handle)

        key = ("subscribe", name, self._next_sequence())
        payload = await self.scheduler.submit(key, create_and_register)
        return {"kind": "subscribe", "subscription": payload}

    async def _op_subscriptions(self, body: dict) -> dict:
        # Handle values may lazily recompute: keep them off the event loop.
        def collect() -> list[dict]:
            payloads: list[dict] = []
            for name in self.registry.names():
                payloads.extend(
                    self._subscription_payloads(self.registry.get(name)),
                )
            return payloads

        payloads = await asyncio.get_running_loop().run_in_executor(
            None, collect,
        )
        return {"kind": "subscriptions", "subscriptions": payloads}

    async def _op_stats(self, body: dict) -> dict:
        return self.stats_payload()

    async def _op_datasets(self, body: dict) -> dict:
        return {"kind": "datasets", "datasets": self.registry.summary()}

    async def _op_health(self, body: dict) -> dict:
        """Aggregated probe verdict (always 200; status tells the story).

        ``kind``/``status`` are byte-compatible with the pre-PR-9 stub
        when everything is healthy; ``probes``/``reasons`` are additive.
        Probes may touch the disk (store write-probe), so they run off
        the event loop.
        """
        report = await asyncio.get_running_loop().run_in_executor(
            None, self.health.check,
        )
        return health_payload(report)

    async def _op_healthz(self, body: dict):
        """Liveness: 503 while any probe is failing, 200 otherwise."""
        report = await asyncio.get_running_loop().run_in_executor(
            None, self.health.check,
        )
        payload = health_payload(report, kind="healthz")
        return (503 if report.status == FAILING else 200, payload)

    async def _op_readyz(self, body: dict):
        """Readiness: the gating probes (scheduler workers up, store
        writable) plus the registered dataset count.  503 until the
        process should receive traffic."""
        gate = [
            name for name in ("scheduler-workers", "store-write")
            if name in self.health.names()
        ]
        report = await asyncio.get_running_loop().run_in_executor(
            None, lambda: self.health.check(names=gate),
        )
        ready = report.status != FAILING
        payload = readiness_payload(
            report, ready, datasets=len(self.registry.names()),
        )
        return (200 if ready else 503, payload)

    async def _op_slo(self, body: dict) -> dict:
        return slo_payload(self.slo.report())

    async def _op_alerts(self, body: dict) -> dict:
        # Rule checks run probes (which may touch disk): off the loop.
        states = await asyncio.get_running_loop().run_in_executor(
            None, self.alerts.evaluate,
        )
        return alerts_payload(states)

    async def _op_metrics(self, body: dict) -> dict | str:
        """The process metrics registry: Prometheus text, or JSON."""
        fmt = body.get("format", "prometheus")
        if fmt == "json":
            return {"kind": "metrics", "metrics": metrics_registry().snapshot()}
        if fmt not in ("prometheus", "text"):
            raise WireError(f"unknown metrics format {fmt!r}")
        return metrics_registry().render_prometheus()

    async def _op_traces(self, body: dict) -> dict:
        """Recent and recent-slow completed span trees."""
        limit = body.get("limit", 20)
        if isinstance(limit, str):
            try:
                limit = int(limit)
            except ValueError:
                raise WireError(f"'limit' must be an integer, got {limit!r}")
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise WireError(f"'limit' must be a positive integer, got {limit!r}")
        return {
            "kind": "traces",
            "recent": [span_to_dict(trace) for trace in recent_traces(limit)],
            "slow": [span_to_dict(trace) for trace in slow_traces(limit)],
        }

    async def _op_profile(self, body: dict) -> dict | str:
        """The sampling profiler's aggregated snapshot.

        ``?format=collapsed`` answers flame-graph-ready collapsed-stack
        text; the default JSON snapshot carries per-span sample totals
        and the heaviest stacks.
        """
        fmt = body.get("format", "json")
        if fmt == "collapsed":
            return render_collapsed()
        if fmt != "json":
            raise WireError(f"unknown profile format {fmt!r}")
        return {"kind": "profile", "profile": profile_snapshot()}

    async def _op_profile_control(self, body: dict) -> dict:
        """Start/stop the process-global profiler at runtime."""
        action = _require(body, "action")
        if action == "start":
            interval = body.get("interval_ms", 5.0)
            try:
                interval = float(interval)
            except (TypeError, ValueError):
                raise WireError(
                    f"'interval_ms' must be a number, got {interval!r}",
                )
            profiler = start_profiling(
                interval_ms=interval,
                keep_idle=bool(body.get("keep_idle", False)),
            )
            return {
                "kind": "profile",
                "running": True,
                "interval_ms": profiler.interval_ms,
            }
        if action == "stop":
            return {"kind": "profile", "profile": stop_profiling()}
        if action == "snapshot":
            return {"kind": "profile", "profile": profile_snapshot()}
        raise WireError(f"unknown profile action {action!r}")

    async def _op_slow_queries(self, body: dict) -> dict:
        """The slow-query log, newest last."""
        limit = body.get("limit", 20)
        if isinstance(limit, str):
            try:
                limit = int(limit)
            except ValueError:
                raise WireError(f"'limit' must be an integer, got {limit!r}")
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise WireError(f"'limit' must be a positive integer, got {limit!r}")
        threshold = body.get("threshold_ms")
        if threshold is not None:
            try:
                set_slowlog_threshold_ms(float(threshold))
            except (TypeError, ValueError):
                raise WireError(
                    f"'threshold_ms' must be a number, got {threshold!r}",
                )
        return {
            "kind": "slow-queries",
            "threshold_ms": slowlog_threshold_ms(),
            "slow_queries": slow_queries(limit),
        }

    def stats_payload(self) -> dict:
        from repro.service.wire import dynamic_stats_payload

        return {
            "kind": "stats",
            "engine": self.engine.stats_summary(),
            "scheduler": self.scheduler.stats.snapshot(),
            "datasets": self.registry.summary(),
            "dynamic": {
                name: dynamic_stats_payload(self.registry.get(name).stats)
                for name in self.registry.names()
            },
            "persistent": (
                self.store.summary() if self.store is not None else None
            ),
            "requests": dict(self.request_counts),
            # Additive: the full metrics snapshot rides along for callers
            # that want one stop; all pre-existing fields are unchanged.
            "metrics": metrics_registry().snapshot(),
        }

    # ------------------------------------------------------------------
    # health probes
    # ------------------------------------------------------------------
    def _probe_scheduler_workers(self):
        scheduler = self.scheduler
        if not scheduler.running:
            return probe_failing("scheduler is not running")
        alive = scheduler.workers_alive
        data = {
            "alive": alive,
            "configured": scheduler.workers,
            "restarts": scheduler.stats.worker_restarts,
        }
        if alive == 0:
            return probe_failing(
                "all scheduler workers exhausted their respawn budget",
                **data,
            )
        if alive < scheduler.workers:
            return probe_degraded(
                f"{scheduler.workers - alive} worker slot(s) retired", **data,
            )
        return probe_ok(None, **data)

    def _probe_scheduler_queue(self):
        saturation = self.scheduler.queue_saturation()
        data = {
            "saturation": round(saturation, 4),
            "max_queue": self.scheduler.max_queue,
        }
        if saturation >= 1.0:
            return probe_degraded(
                "scheduler queue is full (submitters are blocked)", **data,
            )
        return probe_ok(None, **data)

    def _probe_store(self):
        if self.store is None:
            return probe_ok("no persistent store configured")
        try:
            path = self.store.write_probe()
        except OSError as error:
            return probe_failing(
                f"store write failed: {error}", path=self.store.path,
            )
        return probe_ok(None, path=path)

    def _probe_journals(self):
        saturated: list[str] = []
        entries: dict[str, int] = {}
        for name in self.registry.names():
            dataset = self.registry.get(name)
            holder = getattr(dataset, "dynamic", None) or getattr(
                dataset, "dynamic_kg", None,
            )
            if holder is None:
                continue
            info = holder.journal_info()
            entries[name] = info["entries"]
            if info["saturated"]:
                saturated.append(name)
        if saturated:
            return probe_degraded(
                "update journal at capacity (oldest provenance evicted) "
                f"for: {', '.join(sorted(saturated))}",
                **entries,
            )
        return probe_ok(None, **entries)

    # ------------------------------------------------------------------
    # metrics export
    # ------------------------------------------------------------------
    def _collect_health(self) -> list[tuple[str, dict]]:
        """Scrape-time export of probe statuses and alert states."""
        return list(self.health.metric_families()) + list(
            self.alerts.metric_families(),
        )

    def _collect_metrics(self) -> list[tuple[str, dict]]:
        """Scrape-time export of service state as metric families."""
        families = list(self.scheduler.metric_families())
        requests = [
            ({"route": route}, count)
            for route, count in sorted(self.request_counts.items())
        ]
        errors = [
            ({"route": route, "code": code}, count)
            for (route, code), count in sorted(self.error_counts.items())
        ]
        families.append(family_snapshot(
            "repro_server_requests_total", "counter", requests,
            help="Requests handled per route.",
        ))
        families.append(family_snapshot(
            "repro_server_errors_total", "counter", errors,
            help="Error responses per route and stable error code.",
        ))
        # The default-engine collector (repro.engine) already exports the
        # service engine when it is installed as the process default; only
        # export it here when it is a private engine.
        from repro.engine import engine as engine_module

        if self.engine is not engine_module._default_engine:
            families.extend(engine_metric_families(self.engine, label="service"))
        dynamic_events: list[tuple[dict, int | float]] = []
        journals: list[tuple[dict, int | float]] = []
        for dataset_name in self.registry.names():
            dataset = self.registry.get(dataset_name)
            stats = getattr(dataset, "stats", None)
            if stats is None:
                continue
            snapshot = stats.snapshot()
            for field, value in snapshot.items():
                if field.endswith("_ratio"):
                    continue
                dynamic_events.append(
                    ({"dataset": dataset_name, "event": field}, value),
                )
            holder = getattr(dataset, "dynamic", None) or getattr(
                dataset, "dynamic_kg", None,
            )
            journal = getattr(holder, "journal", None)
            if journal is not None:
                journals.append(({"dataset": dataset_name}, len(journal)))
        families.append(family_snapshot(
            "repro_dynamic_events_total", "counter", dynamic_events,
            help="Dynamic-target update and refresh events per dataset.",
        ))
        families.append(family_snapshot(
            "repro_dynamic_journal_entries", "gauge", journals,
            help="Update-journal entries retained per dynamic dataset.",
        ))
        return families


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class ServiceServer:
    """Bind a :class:`CountingService` to a TCP port (asyncio, HTTP/1.1)."""

    def __init__(
        self,
        service: CountingService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        await self.service.scheduler.start()
        self.service.start_monitors(asyncio.get_running_loop())
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self.service.stop_monitors()
        await self.service.scheduler.stop()
        self.service.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server is not started")
        await self._server.serve_forever()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, payload, trace_id = await self._handle_request(reader)
            if isinstance(payload, str):
                data = payload.encode("utf-8")
                content_type = "text/plain; version=0.0.4; charset=utf-8"
            else:
                data = json.dumps(payload).encode("utf-8")
                content_type = "application/json"
            reason = {
                200: "OK",
                400: "Bad Request",
                404: "Not Found",
                503: "Service Unavailable",
            }.get(status, "Internal Server Error")
            trace_header = (
                f"X-Repro-Trace: {trace_id}\r\n" if trace_id else ""
            )
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    f"{trace_header}"
                    "Connection: close\r\n\r\n"
                ).encode("ascii") + data,
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader,
    ) -> tuple[int, dict | str, str | None]:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2:
                return 400, _bad_request("malformed request line"), None
            method, target = parts[0], parts[1]
            path, _, query = target.partition("?")
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("ascii", "replace").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > _MAX_BODY:
                return 400, _bad_request("request body too large"), None
            raw = await reader.readexactly(length) if length else b""
            body = json.loads(raw) if raw else {}
            if not isinstance(body, dict):
                return 400, _bad_request("request body must be a JSON object"), None
            if query:
                # Query parameters fill body fields (body wins), so GET
                # routes take options: /metrics?format=json, /traces?limit=5.
                for key, value in parse_qsl(query):
                    body.setdefault(key, value)
        except (ValueError, UnicodeDecodeError) as error:
            return 400, _bad_request(f"bad request: {error}"), None
        try:
            return await self.service.handle(
                method, path, body,
                client_trace=headers.get("x-repro-trace"),
            )
        except Exception as error:  # noqa: BLE001 - served as a 500, not a crash
            return 500, {
                "kind": "error",
                "error": f"{type(error).__name__}: {error}",
                "code": "internal-error",
            }, None


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    data_dir: str | None = None,
    workers: int = 4,
    max_queue: int = 256,
    announce=print,
) -> int:
    """Blocking entry point behind ``repro serve``."""

    async def main() -> None:
        service = CountingService(
            data_dir=data_dir, workers=workers, max_queue=max_queue,
        )
        server = ServiceServer(service, host=host, port=port)
        await server.start()
        announce(
            f"repro service listening on http://{host}:{server.port}"
            + (f" (persistent cache: {data_dir})" if data_dir else ""),
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    except OSError as error:
        print(f"error: cannot bind {host}:{port}: {error}", file=sys.stderr)
        return 2
    return 0


class BackgroundServer:
    """Run a service in a daemon thread — the e2e tests', demo's, and
    benchmarks' harness.  Context-manager friendly:

    >>> with BackgroundServer() as server:          # doctest: +SKIP
    ...     client = ServiceClient(port=server.port)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **service_kwargs) -> None:
        self.host = host
        self.port = port
        self.service: CountingService | None = None
        self._service_kwargs = service_kwargs
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-server", daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise TimeoutError("service did not start within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        if self.service is not None:
            self.service.restore_default_engine()

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced to start()
            self._startup_error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        service = CountingService(**self._service_kwargs)
        server = ServiceServer(service, host=self.host, port=self.port)
        try:
            await server.start()
        except BaseException as error:
            service.restore_default_engine()
            self._startup_error = error
            self._ready.set()
            return
        self.service = service
        self.port = server.port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await server.stop()
