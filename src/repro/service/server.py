"""The counting service: HTTP/JSON API over a shared engine.

Layers (top to bottom):

* :class:`ServiceServer` / :class:`BackgroundServer` — a minimal
  HTTP/1.1 loop on ``asyncio.start_server`` (stdlib only: parse request
  line + headers, read ``Content-Length`` body, answer JSON, close);
* :class:`CountingService` — the operations: ``count``,
  ``count-answers`` (CQ and KG), ``wl-dim``, ``analyze``,
  ``register-dataset``, ``stats``; every counting operation goes through
  the :class:`~repro.service.scheduler.RequestScheduler` under a
  canonical request key, so identical concurrent requests coalesce;
* one :class:`~repro.engine.HomEngine` shared by all workers (its caches
  are lock-guarded), optionally backed by a
  :class:`~repro.service.store.PersistentStore` so plans and counts
  survive restarts.

The service installs its engine as the process-wide default
(:func:`repro.engine.set_default_engine`), so library paths reached from
request handlers — Lemma-22 interpolation in particular — ride the same
caches.  ``BackgroundServer.stop()`` restores the previous default.

Routes
------
``POST /count``            ``{"pattern": graphspec, "target": name|graphspec}``
``POST /count-answers``    ``{"query": text, "target": name|graphspec}`` or
                           ``{"kg_query": kgqueryspec, "target": name|kgspec}``
``POST /wl-dim``           ``{"query": text}``
``POST /analyze``          ``{"query": text}``
``POST /register-dataset`` ``{"name": str, "graph": graphspec, "shards": int}``
                           or ``{"name": str, "kg": kgspec}``
``GET  /stats``, ``GET /datasets``, ``GET /health``
"""

from __future__ import annotations

import asyncio
import json
import sys
import threading

from repro.engine import HomEngine, set_default_engine
from repro.errors import ReproError
from repro.service.registry import DatasetRegistry, RegistryError
from repro.service.scheduler import RequestScheduler
from repro.service.store import PersistentStore, stable_key_digest
from repro.service.wire import (
    WireError,
    analyze_payload,
    count_answers_payload,
    count_payload,
    graph_from_spec,
    graph_summary,
    kg_from_spec,
    kg_query_from_spec,
    kg_query_to_spec,
    kg_to_spec,
    kg_update_from_spec,
    subscription_payload,
    target_update_payload,
    update_batch_from_spec,
    wl_dim_payload,
)

_MAX_BODY = 32 * 1024 * 1024


def _require(body: dict, field: str):
    if field not in body:
        raise WireError(f"request is missing the {field!r} field")
    return body[field]


class CountingService:
    """The request handlers behind the HTTP routes (transport-agnostic)."""

    def __init__(
        self,
        data_dir: str | None = None,
        workers: int = 4,
        max_queue: int = 256,
        engine: HomEngine | None = None,
        install_default_engine: bool = True,
    ) -> None:
        if engine is not None and data_dir is not None:
            raise ValueError("pass either an engine or a data_dir, not both")
        if engine is None:
            self.store = PersistentStore(data_dir) if data_dir else None
            engine = HomEngine(store=self.store)
        else:
            self.store = engine.store
        self.engine = engine
        self.registry = DatasetRegistry()
        self.scheduler = RequestScheduler(workers=workers, max_queue=max_queue)
        self.request_counts: dict[str, int] = {}
        self._routes = {
            ("POST", "/count"): self._op_count,
            ("POST", "/count-answers"): self._op_count_answers,
            ("POST", "/wl-dim"): self._op_wl_dim,
            ("POST", "/analyze"): self._op_analyze,
            ("POST", "/register-dataset"): self._op_register,
            ("POST", "/target-update"): self._op_target_update,
            ("POST", "/subscribe"): self._op_subscribe,
            ("GET", "/subscriptions"): self._op_subscriptions,
            ("GET", "/stats"): self._op_stats,
            ("GET", "/datasets"): self._op_datasets,
            ("GET", "/health"): self._op_health,
        }
        # Updates and subscription creations are stateful: each submission
        # gets a unique scheduler key (never coalesced); per-dataset
        # serialisation happens on the dynamic graph's lock.
        self._sequence = 0
        self._sequence_lock = threading.Lock()
        self._previous_default: tuple | None = None
        if install_default_engine:
            self._previous_default = (set_default_engine(self.engine),)

    def restore_default_engine(self) -> None:
        """Undo the ``set_default_engine`` performed at construction."""
        if self._previous_default is not None:
            set_default_engine(self._previous_default[0])
            self._previous_default = None

    def close(self) -> None:
        """Release held resources (the persistent store's append handle)."""
        if self.store is not None:
            self.store.close()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    async def handle(self, method: str, path: str, body: dict) -> tuple[int, dict]:
        route = (method.upper(), path.rstrip("/") or "/")
        handler = self._routes.get(route)
        if handler is None:
            return 404, {"error": f"no route {method.upper()} {path}"}
        self.request_counts[route[1]] = self.request_counts.get(route[1], 0) + 1
        try:
            return 200, await handler(body)
        except RegistryError as error:
            return 404, {"error": str(error)}
        except ReproError as error:
            return 400, {"error": str(error)}

    # ------------------------------------------------------------------
    # target resolution
    # ------------------------------------------------------------------
    def _resolve_graph_target(self, target):
        """``(host graph or None, serving state or None, coalescing token,
        display name)``.

        For a registered dataset the ``ServingState`` is read with a
        single attribute load — one immutable version snapshot, so a
        concurrent ``target-update`` can never pair this request's graph
        with another version's cache key.  The token is derived from the
        dataset *content*, not its name, so re-registering a name with a
        different graph never joins in-flight work computed against the
        old content.
        """
        if isinstance(target, str):
            serving = self.registry.get(target, kind="graph").serving
            return (
                serving.graph,
                serving,
                ("dataset", serving.content_token),
                target,
            )
        if target is None:
            raise WireError("request is missing the 'target' field")
        host = graph_from_spec(target)
        return host, None, ("inline", host.edge_fingerprint()), graph_summary(host)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    async def _op_count(self, body: dict) -> dict:
        pattern = graph_from_spec(_require(body, "pattern"))
        host, serving, token, target_name = self._resolve_graph_target(
            body.get("target"),
        )
        engine = self.engine
        shard_count = 1
        if (
            serving is not None
            and len(serving.shards) > 1
            and pattern.num_vertices() > 0
            and pattern.is_connected()
        ):
            # Connected patterns sum over component shards exactly.
            shards, shard_ids = serving.shards, serving.shard_ids
            shard_count = len(shards)

            def fn() -> tuple[int, str]:
                count = sum(
                    engine.count(pattern, shard, target_id=shard_id)
                    for shard, shard_id in zip(shards, shard_ids)
                )
                return count, engine.plan_for(pattern).describe()
        else:
            target_id = serving.target_id if serving is not None else None

            def fn() -> tuple[int, str]:
                count = engine.count(pattern, host, target_id=target_id)
                # describe() may compile/unpickle on a persistent-tier count
                # hit; keep that on the worker, off the event loop.
                return count, engine.plan_for(pattern).describe()

        key = ("count", pattern.edge_fingerprint(), token)
        count, plan = await self.scheduler.submit(key, fn)
        return count_payload(
            count, pattern, target_name, plan=plan, shards=shard_count,
        )

    async def _op_count_answers(self, body: dict) -> dict:
        if "kg_query" in body:
            return await self._op_count_kg_answers(body)
        from repro.queries.parser import format_query, parse_query

        text = _require(body, "query")
        query = parse_query(text)  # validate before scheduling
        host, _, token, target_name = self._resolve_graph_target(
            body.get("target"),
        )
        key = ("count-answers", format_query(query, style="logic"), token)
        payload = await self.scheduler.submit(
            key,
            lambda: count_answers_payload(text, host, target_name=target_name),
        )
        # Coalesced waiters share the first submitter's payload; re-echo
        # *this* caller's raw query text (the logic form is canonical).
        if payload.get("query") != text or payload.get("target") != target_name:
            payload = {**payload, "query": text, "target": target_name}
        return payload

    async def _op_count_kg_answers(self, body: dict) -> dict:
        from repro.kg.engine_bridge import count_kg_answers_engine, encode_kg

        query = kg_query_from_spec(_require(body, "kg_query"))
        target = body.get("target")
        if isinstance(target, str):
            # One snapshot read: encoding and coalescing token always
            # describe the same dataset version.
            serving = self.registry.get(target, kind="kg").serving
            encoding, token, target_name = (
                serving.kg_encoding, ("dataset", serving.content_token), target,
            )
            target_id = serving.target_id
        elif target is not None:
            kg = kg_from_spec(target)

            # Gadget encoding + content digest are CPU-bound; keep them off
            # the event loop so concurrent requests stay responsive.
            def encode_inline():
                return encode_kg(kg), stable_key_digest(kg_to_spec(kg))

            encoding, digest = await asyncio.get_running_loop().run_in_executor(
                None, encode_inline,
            )
            token = ("inline", digest)
            target_name = {
                "vertices": kg.num_vertices(), "triples": kg.num_triples(),
            }
            target_id = None
        else:
            raise WireError("request is missing the 'target' field")
        engine = self.engine
        key = (
            "kg-count-answers",
            stable_key_digest(kg_query_to_spec(query)),
            token,
        )
        count = await self.scheduler.submit(
            key,
            lambda: count_kg_answers_engine(
                query, encoding, engine=engine, target_id=target_id,
            ),
        )
        return {
            "kind": "count-answers",
            "kg_query": kg_query_to_spec(query),
            "target": target_name,
            "count": count,
            "method": "kg-engine",
        }

    async def _op_wl_dim(self, body: dict) -> dict:
        text = _require(body, "query")
        payload = await self.scheduler.submit(
            ("wl-dim", text.strip()), lambda: wl_dim_payload(text),
        )
        if payload.get("query") != text:  # coalesced onto another's payload
            payload = {**payload, "query": text}
        return payload

    async def _op_analyze(self, body: dict) -> dict:
        text = _require(body, "query")
        payload = await self.scheduler.submit(
            ("analyze", text.strip()), lambda: analyze_payload(text),
        )
        if payload.get("query") != text:
            payload = {**payload, "query": text}
        return payload

    async def _op_register(self, body: dict) -> dict:
        name = _require(body, "name")
        if not isinstance(name, str) or not name:
            raise WireError("dataset name must be a non-empty string")
        # Registration is the heaviest non-counting operation (spec
        # decoding, sharding, IndexedGraph pre-encoding, KG gadget
        # encoding); run it on the executor so the event loop keeps
        # serving health checks and completed counts meanwhile.  The
        # registry is lock-guarded, so worker-thread writes are safe.
        if "kg" in body:
            def build():
                return self.registry.register_kg(name, kg_from_spec(body["kg"]))
        elif "graph" in body:
            shards = body.get("shards", 1)
            if not isinstance(shards, int) or isinstance(shards, bool) or shards < 1:
                raise WireError(f"'shards' must be a positive integer, got {shards!r}")

            def build():
                return self.registry.register_graph(
                    name, graph_from_spec(body["graph"]), shards=shards,
                )
        else:
            raise WireError("register-dataset needs a 'graph' or 'kg' spec")
        dataset = await asyncio.get_running_loop().run_in_executor(None, build)
        return {"kind": "register-dataset", "dataset": dataset.summary()}

    # ------------------------------------------------------------------
    # dynamic targets
    # ------------------------------------------------------------------
    def _next_sequence(self) -> int:
        with self._sequence_lock:
            self._sequence += 1
            return self._sequence

    def _subscription_payloads(self, dataset) -> list[dict]:
        """Payloads for every subscription of ``dataset``.

        Reading a handle's value may trigger a lazy (engine-backed)
        refresh, so callers must run this on a worker/executor thread —
        never on the event loop.
        """
        return [
            subscription_payload(subscription_id, dataset.name, handle)
            for subscription_id, handle in sorted(dataset.subscriptions.items())
        ]

    async def _op_target_update(self, body: dict) -> dict:
        """Advance a registered dataset's version by one update batch.

        The batch is applied — and every subscribed maintained count
        refreshed (delta or fallback recompute) and serialised into the
        response — on a scheduler worker, so updates queue behind
        counting traffic under the same backpressure, and heavy
        refreshes never block the event loop.
        """
        name = _require(body, "target")
        if not isinstance(name, str):
            raise WireError("'target' must be a registered dataset name")
        dataset = self.registry.get(name)  # validate before scheduling
        if dataset.kind == "kg":
            updates = kg_update_from_spec(body)

            def fn() -> dict:
                updated, version = self.registry.update_kg(name, **updates)
                return target_update_payload(
                    name,
                    version.version,
                    version.applied_summary(),
                    version.patched,
                    updated.stats,
                    self._subscription_payloads(updated),
                )
        else:
            batch = update_batch_from_spec(body)

            def fn() -> dict:
                updated, record = self.registry.update_graph(name, batch)
                return target_update_payload(
                    name,
                    record.version,
                    record.applied_summary(),
                    record.patched,
                    updated.stats,
                    self._subscription_payloads(updated),
                )

        key = ("target-update", name, self._next_sequence())
        return await self.scheduler.submit(key, fn)

    async def _op_subscribe(self, body: dict) -> dict:
        """Create a maintained count for a registered dataset.

        ``{"target": name, "pattern": graphspec}`` maintains a
        homomorphism count; ``{"target": name, "query": text}`` a CQ
        answer count; ``{"target": name, "kg_query": spec}`` a KG answer
        count.  The handle refreshes on every ``target-update``.
        """
        from repro.dynamic.kg import MaintainedKgAnswerCount
        from repro.dynamic.maintained import (
            MaintainedAnswerCount,
            MaintainedCount,
        )

        name = _require(body, "target")
        if not isinstance(name, str):
            raise WireError("'target' must be a registered dataset name")
        subscription_id = body.get("id")
        if subscription_id is None:
            subscription_id = f"sub-{self._next_sequence()}"
        if not isinstance(subscription_id, str) or not subscription_id:
            raise WireError("subscription 'id' must be a non-empty string")
        engine = self.engine
        if "kg_query" in body:
            dataset = self.registry.get(name, kind="kg")
            query = kg_query_from_spec(body["kg_query"])

            def fn():
                return MaintainedKgAnswerCount(
                    query, dataset.dynamic_kg, engine=engine,
                )
        elif "query" in body:
            from repro.queries.parser import parse_query

            dataset = self.registry.get(name, kind="graph")
            query = parse_query(body["query"])

            def fn():
                return MaintainedAnswerCount(
                    query, dataset.dynamic, engine=engine,
                )
        elif "pattern" in body:
            dataset = self.registry.get(name, kind="graph")
            pattern = graph_from_spec(body["pattern"])

            def fn():
                return MaintainedCount(pattern, dataset.dynamic, engine=engine)
        else:
            raise WireError(
                "subscribe needs a 'pattern', 'query', or 'kg_query' field",
            )

        def create_and_register() -> dict:
            handle = fn()
            previous = dataset.subscriptions.get(subscription_id)
            if previous is not None:
                previous.close()
            dataset.subscriptions[subscription_id] = handle
            return subscription_payload(subscription_id, name, handle)

        key = ("subscribe", name, self._next_sequence())
        payload = await self.scheduler.submit(key, create_and_register)
        return {"kind": "subscribe", "subscription": payload}

    async def _op_subscriptions(self, body: dict) -> dict:
        # Handle values may lazily recompute: keep them off the event loop.
        def collect() -> list[dict]:
            payloads: list[dict] = []
            for name in self.registry.names():
                payloads.extend(
                    self._subscription_payloads(self.registry.get(name)),
                )
            return payloads

        payloads = await asyncio.get_running_loop().run_in_executor(
            None, collect,
        )
        return {"kind": "subscriptions", "subscriptions": payloads}

    async def _op_stats(self, body: dict) -> dict:
        return self.stats_payload()

    async def _op_datasets(self, body: dict) -> dict:
        return {"kind": "datasets", "datasets": self.registry.summary()}

    async def _op_health(self, body: dict) -> dict:
        return {"kind": "health", "status": "ok"}

    def stats_payload(self) -> dict:
        from repro.service.wire import dynamic_stats_payload

        return {
            "kind": "stats",
            "engine": self.engine.stats_summary(),
            "scheduler": self.scheduler.stats.snapshot(),
            "datasets": self.registry.summary(),
            "dynamic": {
                name: dynamic_stats_payload(self.registry.get(name).stats)
                for name in self.registry.names()
            },
            "persistent": (
                self.store.summary() if self.store is not None else None
            ),
            "requests": dict(self.request_counts),
        }


# ----------------------------------------------------------------------
# HTTP transport
# ----------------------------------------------------------------------
class ServiceServer:
    """Bind a :class:`CountingService` to a TCP port (asyncio, HTTP/1.1)."""

    def __init__(
        self,
        service: CountingService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None

    async def start(self) -> None:
        await self.service.scheduler.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port,
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.scheduler.stop()
        self.service.close()

    async def serve_forever(self) -> None:
        if self._server is None:
            raise RuntimeError("server is not started")
        await self._server.serve_forever()

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, payload = await self._handle_request(reader)
            data = json.dumps(payload).encode("utf-8")
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found"}.get(
                status, "Internal Server Error",
            )
            writer.write(
                (
                    f"HTTP/1.1 {status} {reason}\r\n"
                    "Content-Type: application/json\r\n"
                    f"Content-Length: {len(data)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("ascii") + data,
            )
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader,
    ) -> tuple[int, dict]:
        try:
            request_line = await reader.readline()
            parts = request_line.decode("ascii", "replace").split()
            if len(parts) < 2:
                return 400, {"error": "malformed request line"}
            method, path = parts[0], parts[1]
            headers: dict[str, str] = {}
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("ascii", "replace").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or "0")
            if length > _MAX_BODY:
                return 400, {"error": "request body too large"}
            raw = await reader.readexactly(length) if length else b""
            body = json.loads(raw) if raw else {}
            if not isinstance(body, dict):
                return 400, {"error": "request body must be a JSON object"}
        except (ValueError, UnicodeDecodeError) as error:
            return 400, {"error": f"bad request: {error}"}
        try:
            return await self.service.handle(method, path, body)
        except Exception as error:  # noqa: BLE001 - served as a 500, not a crash
            return 500, {"error": f"{type(error).__name__}: {error}"}


def run_server(
    host: str = "127.0.0.1",
    port: int = 8765,
    data_dir: str | None = None,
    workers: int = 4,
    max_queue: int = 256,
    announce=print,
) -> int:
    """Blocking entry point behind ``repro serve``."""

    async def main() -> None:
        service = CountingService(
            data_dir=data_dir, workers=workers, max_queue=max_queue,
        )
        server = ServiceServer(service, host=host, port=port)
        await server.start()
        announce(
            f"repro service listening on http://{host}:{server.port}"
            + (f" (persistent cache: {data_dir})" if data_dir else ""),
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    except OSError as error:
        print(f"error: cannot bind {host}:{port}: {error}", file=sys.stderr)
        return 2
    return 0


class BackgroundServer:
    """Run a service in a daemon thread — the e2e tests', demo's, and
    benchmarks' harness.  Context-manager friendly:

    >>> with BackgroundServer() as server:          # doctest: +SKIP
    ...     client = ServiceClient(port=server.port)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **service_kwargs) -> None:
        self.host = host
        self.port = port
        self.service: CountingService | None = None
        self._service_kwargs = service_kwargs
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._stop_event: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._startup_error: BaseException | None = None

    def start(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-service-server", daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=30.0)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise TimeoutError("service did not start within 30s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None
        if self.service is not None:
            self.service.restore_default_engine()

    def __enter__(self) -> "BackgroundServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced to start()
            self._startup_error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        service = CountingService(**self._service_kwargs)
        server = ServiceServer(service, host=self.host, port=self.port)
        try:
            await server.start()
        except BaseException as error:
            service.restore_default_engine()
            self._startup_error = error
            self._ready.set()
            return
        self.service = service
        self.port = server.port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await server.stop()
