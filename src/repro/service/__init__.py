"""repro.service — a concurrent counting service over the engine.

The subsystem that turns the compile-once :class:`~repro.engine.HomEngine`
into something you can *serve*:

* :mod:`repro.service.registry` — datasets (host graphs / knowledge
  graphs) registered once by name, preprocessed for the request path and
  *versioned*: ``POST /target-update`` advances a dataset through its
  :mod:`repro.dynamic` stream and refreshes subscribed maintained counts
  (``POST /subscribe`` / ``GET /subscriptions``);
* :mod:`repro.service.store` — the persistent on-disk cache tier under
  the engine's in-memory LRUs (plans + counts survive restarts);
* :mod:`repro.service.scheduler` — bounded queue, worker pool, and
  coalescing of identical in-flight requests;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  HTTP/JSON API (``repro serve``) and its stdlib Python client
  (``repro client``);
* :mod:`repro.service.wire` — JSON codecs and the payload shapes shared
  with the CLI's ``--json`` mode.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.registry import Dataset, DatasetRegistry, RegistryError
from repro.service.scheduler import RequestScheduler, SchedulerStats
from repro.service.server import (
    BackgroundServer,
    CountingService,
    ServiceServer,
    run_server,
)
from repro.service.store import PersistentStore, stable_key_digest
from repro.service.wire import (
    WireError,
    error_payload,
    graph_from_spec,
    graph_to_spec,
    result_from_wire,
    result_to_payload,
    result_to_wire,
    task_from_wire,
    task_to_wire,
)

__all__ = [
    "BackgroundServer",
    "CountingService",
    "Dataset",
    "DatasetRegistry",
    "PersistentStore",
    "RegistryError",
    "RequestScheduler",
    "SchedulerStats",
    "ServiceClient",
    "ServiceError",
    "ServiceServer",
    "WireError",
    "error_payload",
    "graph_from_spec",
    "graph_to_spec",
    "result_from_wire",
    "result_to_payload",
    "result_to_wire",
    "run_server",
    "stable_key_digest",
    "task_from_wire",
    "task_to_wire",
]
