"""A stdlib Python client for the counting service.

Wraps ``http.client`` (blocking, connection-per-request — the server
answers ``Connection: close``) around the wire format of
:mod:`repro.service.wire`.  Accepts rich objects (``Graph``,
``KnowledgeGraph``, ``KgQuery``) or raw spec dicts interchangeably.
"""

from __future__ import annotations

import http.client
import json
from typing import Mapping

from repro.errors import ReproError
from repro.graphs.graph import Graph
from repro.service.wire import graph_to_spec, kg_query_to_spec, kg_to_spec


class ServiceError(ReproError):
    """An error response (or transport failure) from the counting service."""

    def __init__(self, message: str, status: int = 0) -> None:
        super().__init__(message)
        self.status = status


def _as_graph_spec(value) -> dict:
    if isinstance(value, Graph):
        return graph_to_spec(value)
    if isinstance(value, Mapping):
        return dict(value)
    raise ServiceError(f"expected a Graph or a graph spec, got {type(value).__name__}")


def _as_target(value):
    """Dataset name, graph/KG object, or raw spec — as sent on the wire."""
    if isinstance(value, str):
        return value
    if isinstance(value, Graph):
        return graph_to_spec(value)
    if isinstance(value, Mapping):
        return dict(value)
    if hasattr(value, "triples"):
        return kg_to_spec(value)
    raise ServiceError(f"cannot encode target {type(value).__name__}")


class ServiceClient:
    """Talk to a running ``repro serve`` instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout,
        )
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            status = response.status
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {error}",
            ) from error
        finally:
            connection.close()
        try:
            decoded = json.loads(data) if data else {}
        except ValueError as error:
            raise ServiceError(f"non-JSON response: {error}", status) from error
        if status != 200:
            raise ServiceError(
                decoded.get("error", f"HTTP {status}"), status,
            )
        return decoded

    def _post(self, path: str, payload: dict) -> dict:
        return self.request("POST", path, payload)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/health")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def datasets(self) -> list[dict]:
        return self.request("GET", "/datasets")["datasets"]

    def register_graph(self, name: str, graph, shards: int = 1) -> dict:
        payload = {"name": name, "graph": _as_graph_spec(graph)}
        if shards > 1:
            payload["shards"] = shards
        return self._post("/register-dataset", payload)["dataset"]

    def register_kg(self, name: str, kg) -> dict:
        spec = kg_to_spec(kg) if hasattr(kg, "triples") else dict(kg)
        return self._post("/register-dataset", {"name": name, "kg": spec})["dataset"]

    def count(self, pattern, target) -> dict:
        """``|Hom(pattern, target)|``; target is a dataset name or a graph."""
        return self._post(
            "/count",
            {"pattern": _as_graph_spec(pattern), "target": _as_target(target)},
        )

    def count_answers(self, query: str, target) -> dict:
        """Answers of a parsed CQ on a dataset name or inline graph."""
        return self._post(
            "/count-answers", {"query": query, "target": _as_target(target)},
        )

    def count_kg_answers(self, kg_query, target) -> dict:
        """Answers of a KG conjunctive query on a KG dataset or inline KG."""
        spec = (
            kg_query_to_spec(kg_query)
            if hasattr(kg_query, "free_variables")
            else dict(kg_query)
        )
        return self._post(
            "/count-answers", {"kg_query": spec, "target": _as_target(target)},
        )

    def wl_dim(self, query: str) -> dict:
        return self._post("/wl-dim", {"query": query})

    def analyze(self, query: str) -> dict:
        return self._post("/analyze", {"query": query})

    # ------------------------------------------------------------------
    # dynamic targets
    # ------------------------------------------------------------------
    def target_update(
        self,
        name: str,
        add_edges=(),
        remove_edges=(),
        add_vertices=(),
        remove_vertices=(),
        add_triples=(),
        remove_triples=(),
    ) -> dict:
        """Advance a registered dataset's version by one update batch
        (edge/vertex fields for graph datasets, triple fields for KGs)."""
        payload: dict = {"target": name}
        for field, values in (
            ("add_edges", add_edges),
            ("remove_edges", remove_edges),
            ("add_vertices", add_vertices),
            ("remove_vertices", remove_vertices),
            ("add_triples", add_triples),
            ("remove_triples", remove_triples),
        ):
            values = [list(v) if isinstance(v, (list, tuple)) else v for v in values]
            if values:
                payload[field] = values
        return self._post("/target-update", payload)

    def subscribe(
        self,
        name: str,
        pattern=None,
        query: str | None = None,
        kg_query=None,
        subscription_id: str | None = None,
    ) -> dict:
        """Create a maintained count on dataset ``name`` (exactly one of
        ``pattern`` / ``query`` / ``kg_query``); returns its payload."""
        payload: dict = {"target": name}
        if subscription_id is not None:
            payload["id"] = subscription_id
        if pattern is not None:
            payload["pattern"] = _as_graph_spec(pattern)
        elif query is not None:
            payload["query"] = query
        elif kg_query is not None:
            payload["kg_query"] = (
                kg_query_to_spec(kg_query)
                if hasattr(kg_query, "free_variables")
                else dict(kg_query)
            )
        else:
            raise ServiceError("pass a pattern, query, or kg_query to subscribe")
        return self._post("/subscribe", payload)["subscription"]

    def subscriptions(self) -> list[dict]:
        return self.request("GET", "/subscriptions")["subscriptions"]
