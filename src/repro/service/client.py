"""A stdlib Python client for the counting service.

Wraps ``http.client`` (blocking, connection-per-request — the server
answers ``Connection: close``) around the wire format of
:mod:`repro.service.wire`.  Every counting call constructs the canonical
:mod:`repro.api.tasks` spec and sends its exact wire payload, so the
client, the CLI, and the server all speak one encoding; rich objects
(``Graph``, ``KnowledgeGraph``, ``KgQuery``) and raw spec dicts are
accepted interchangeably.

Error responses carry ``{"kind": "error", "error": msg, "code": code}``;
the raised :class:`ServiceError` exposes both ``status`` and ``code``.
"""

from __future__ import annotations

import http.client
import json
from typing import Mapping

from repro.errors import ServiceError
from repro.graphs.graph import Graph
from repro.obs.trace import current_trace_id
from repro.service.wire import kg_to_spec, task_to_wire

__all__ = ["ServiceClient", "ServiceError"]


def _as_task_target(value):
    """Dataset name, rich object, or raw spec — as a task target."""
    if isinstance(value, (str, Graph, Mapping)) or hasattr(value, "triples"):
        return value
    raise ServiceError(f"cannot encode target {type(value).__name__}")


def _as_graph_spec(value) -> dict:
    from repro.service.wire import graph_to_spec

    if isinstance(value, Graph):
        return graph_to_spec(value)
    if isinstance(value, Mapping):
        return dict(value)
    raise ServiceError(
        f"expected a Graph or a graph spec, got {type(value).__name__}",
    )


class ServiceClient:
    """Talk to a running ``repro serve`` instance."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8765,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        #: Trace id of the most recent response (the server's
        #: ``X-Repro-Trace`` header), for correlating with ``/traces``.
        self.last_trace_id: str | None = None

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _request_raw(
        self, method: str, path: str, payload: dict | None = None,
    ) -> tuple[int, bytes]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout,
        )
        try:
            body = json.dumps(payload).encode("utf-8") if payload is not None else None
            headers = {"Content-Type": "application/json"} if body else {}
            trace_id = current_trace_id()
            if trace_id is not None:
                # Propagate the caller's trace: the server's root span
                # adopts this id, so one trace follows the request across
                # the wire (client span tree + server /traces entries).
                headers["X-Repro-Trace"] = trace_id
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            data = response.read()
            status = response.status
            self.last_trace_id = response.getheader("X-Repro-Trace")
        except (OSError, http.client.HTTPException) as error:
            raise ServiceError(
                f"cannot reach service at {self.host}:{self.port}: {error}",
            ) from error
        finally:
            connection.close()
        return status, data

    def request(self, method: str, path: str, payload: dict | None = None) -> dict:
        status, data = self._request_raw(method, path, payload)
        try:
            decoded = json.loads(data) if data else {}
        except ValueError as error:
            raise ServiceError(f"non-JSON response: {error}", status) from error
        if status != 200:
            raise ServiceError(
                decoded.get("error", f"HTTP {status}"),
                status,
                code=decoded.get("code"),
            )
        return decoded

    def request_text(self, method: str, path: str) -> str:
        """A non-JSON GET (the Prometheus ``/metrics`` exposition)."""
        status, data = self._request_raw(method, path)
        text = data.decode("utf-8", "replace")
        if status != 200:
            code = None
            try:
                decoded = json.loads(text)
                message = decoded.get("error", f"HTTP {status}")
                code = decoded.get("code")
            except ValueError:
                message = f"HTTP {status}"
            raise ServiceError(message, status, code=code)
        return text

    def _post(self, path: str, payload: dict) -> dict:
        return self.request("POST", path, payload)

    def _post_task(self, path: str, factory) -> dict:
        """Build the canonical spec and POST its exact wire payload.

        Spec construction validates eagerly (queries parse, graph specs
        decode); a rejected input raises the same 400-coded
        :class:`ServiceError` the server would have answered with, just
        without the round trip.
        """
        from repro.errors import ReproError

        try:
            task = factory() if callable(factory) else factory
            payload = task_to_wire(task)
        except ServiceError:
            raise
        except ReproError as error:
            raise ServiceError(str(error), 400, code=error.code) from error
        return self._post(path, payload)

    def probe(self, method: str, path: str) -> tuple[int, dict]:
        """Like :meth:`request` but non-raising on HTTP errors: returns
        ``(status, decoded_payload)``.  Health endpoints answer 503 with
        a structured verdict, not an error payload — callers inspect the
        status instead of catching.  Transport failures still raise."""
        status, data = self._request_raw(method, path)
        try:
            decoded = json.loads(data) if data else {}
        except ValueError as error:
            raise ServiceError(f"non-JSON response: {error}", status) from error
        return status, decoded

    def wait_ready(
        self, timeout: float = 30.0, interval: float = 0.05,
    ) -> dict:
        """Poll ``GET /readyz`` until the service is ready.

        Swallows connection errors and 503s until ``timeout`` elapses —
        the canonical replacement for sleep/retry startup loops in tests
        and scripts.  Returns the final readiness payload; raises
        :class:`ServiceError` (code ``not-ready``) on deadline.
        """
        import time as _time

        deadline = _time.monotonic() + timeout
        last: dict | str = "no response yet"
        while True:
            try:
                status, payload = self.probe("GET", "/readyz")
                if status == 200:
                    return payload
                last = payload
            except ServiceError as error:
                last = str(error)
            if _time.monotonic() >= deadline:
                raise ServiceError(
                    f"service at {self.host}:{self.port} not ready "
                    f"after {timeout:g}s: {last}",
                    503,
                    code="not-ready",
                )
            _time.sleep(interval)

    # ------------------------------------------------------------------
    # API
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self.request("GET", "/health")

    def healthz(self) -> tuple[int, dict]:
        """Liveness: ``(status, payload)`` — 503 while any probe fails."""
        return self.probe("GET", "/healthz")

    def readyz(self) -> tuple[int, dict]:
        """Readiness: ``(status, payload)`` — 503 until serviceable."""
        return self.probe("GET", "/readyz")

    def slo(self) -> dict:
        """Objective attainment and burn rates (``GET /slo``)."""
        return self.request("GET", "/slo")

    def alerts(self) -> dict:
        """The alert rule engine's current state (``GET /alerts``)."""
        return self.request("GET", "/alerts")

    def stats(self) -> dict:
        return self.request("GET", "/stats")

    def datasets(self) -> list[dict]:
        return self.request("GET", "/datasets")["datasets"]

    def metrics(self) -> dict:
        """The metrics registry snapshot (``GET /metrics?format=json``)."""
        return self.request("GET", "/metrics?format=json")["metrics"]

    def metrics_text(self) -> str:
        """The Prometheus text exposition (``GET /metrics``)."""
        return self.request_text("GET", "/metrics")

    def traces(self, limit: int = 20) -> dict:
        """Recent and recent-slow span trees (``GET /traces``)."""
        return self.request("GET", f"/traces?limit={int(limit)}")

    def profile(self) -> dict:
        """The server profiler's snapshot (``GET /profile``)."""
        return self.request("GET", "/profile")["profile"]

    def profile_collapsed(self) -> str:
        """Flame-graph-ready collapsed stacks (``GET /profile?format=collapsed``)."""
        return self.request_text("GET", "/profile?format=collapsed")

    def profile_start(
        self, interval_ms: float = 5.0, keep_idle: bool = False,
    ) -> dict:
        """Start the server's sampling profiler."""
        payload: dict = {"action": "start", "interval_ms": float(interval_ms)}
        if keep_idle:
            payload["keep_idle"] = True
        return self._post("/profile", payload)

    def profile_stop(self) -> dict:
        """Stop the server's profiler; returns the final snapshot."""
        return self._post("/profile", {"action": "stop"})["profile"]

    def slow_queries(
        self, limit: int = 20, threshold_ms: float | None = None,
    ) -> dict:
        """The server's slow-query log (``GET /slow-queries``).

        Passing ``threshold_ms`` retunes the server's capture threshold.
        """
        path = f"/slow-queries?limit={int(limit)}"
        if threshold_ms is not None:
            path += f"&threshold_ms={float(threshold_ms)}"
        return self.request("GET", path)

    def register_graph(self, name: str, graph, shards: int = 1) -> dict:
        payload = {"name": name, "graph": _as_graph_spec(graph)}
        if shards > 1:
            payload["shards"] = shards
        return self._post("/register-dataset", payload)["dataset"]

    def register_kg(self, name: str, kg) -> dict:
        spec = kg_to_spec(kg) if hasattr(kg, "triples") else dict(kg)
        return self._post("/register-dataset", {"name": name, "kg": spec})["dataset"]

    def run_task(self, task) -> dict:
        """Run any canonical task spec through ``POST /task``.

        Returns the full result payload (``result_from_wire`` decodes it
        back into a :class:`~repro.api.result.Result`); batches return
        ``{"kind": "result-batch", "results": [...]}``.
        """
        return self._post_task("/task", task)

    def count(self, pattern, target) -> dict:
        """``|Hom(pattern, target)|``; target is a dataset name or a graph."""
        from repro.api.tasks import HomCountTask

        return self._post_task(
            "/count", lambda: HomCountTask(pattern, _as_task_target(target)),
        )

    def count_answers(self, query: str, target) -> dict:
        """Answers of a parsed CQ on a dataset name or inline graph."""
        from repro.api.tasks import AnswerCountTask

        return self._post_task(
            "/count-answers",
            lambda: AnswerCountTask(query, _as_task_target(target)),
        )

    def count_kg_answers(self, kg_query, target) -> dict:
        """Answers of a KG conjunctive query on a KG dataset or inline KG."""
        from repro.api.tasks import KgAnswerCountTask

        return self._post_task(
            "/count-answers",
            lambda: KgAnswerCountTask(kg_query, _as_task_target(target)),
        )

    def wl_dim(self, query: str) -> dict:
        from repro.api.tasks import WlDimensionTask

        return self._post_task("/wl-dim", lambda: WlDimensionTask(query))

    def analyze(self, query: str) -> dict:
        from repro.api.tasks import AnalyzeTask

        return self._post_task("/analyze", lambda: AnalyzeTask(query))

    # ------------------------------------------------------------------
    # dynamic targets
    # ------------------------------------------------------------------
    def target_update(
        self,
        name: str,
        add_edges=(),
        remove_edges=(),
        add_vertices=(),
        remove_vertices=(),
        add_triples=(),
        remove_triples=(),
    ) -> dict:
        """Advance a registered dataset's version by one update batch
        (edge/vertex fields for graph datasets, triple fields for KGs)."""
        payload: dict = {"target": name}
        for field, values in (
            ("add_edges", add_edges),
            ("remove_edges", remove_edges),
            ("add_vertices", add_vertices),
            ("remove_vertices", remove_vertices),
            ("add_triples", add_triples),
            ("remove_triples", remove_triples),
        ):
            values = [list(v) if isinstance(v, (list, tuple)) else v for v in values]
            if values:
                payload[field] = values
        return self._post("/target-update", payload)

    def subscribe(
        self,
        name: str,
        pattern=None,
        query: str | None = None,
        kg_query=None,
        subscription_id: str | None = None,
    ) -> dict:
        """Create a maintained count on dataset ``name`` (exactly one of
        ``pattern`` / ``query`` / ``kg_query``); returns its payload."""
        from repro.service.wire import kg_query_to_spec

        payload: dict = {"target": name}
        if subscription_id is not None:
            payload["id"] = subscription_id
        if pattern is not None:
            payload["pattern"] = _as_graph_spec(pattern)
        elif query is not None:
            payload["query"] = query
        elif kg_query is not None:
            payload["kg_query"] = (
                kg_query_to_spec(kg_query)
                if hasattr(kg_query, "free_variables")
                else dict(kg_query)
            )
        else:
            raise ServiceError("pass a pattern, query, or kg_query to subscribe")
        return self._post("/subscribe", payload)["subscription"]

    def subscriptions(self) -> list[dict]:
        return self.request("GET", "/subscriptions")["subscriptions"]
