"""The integer-indexed graph kernel.

:class:`Graph` speaks the paper's language — vertices are arbitrary
hashable labels such as CFI pairs ``(w, frozenset(S))`` or ℓ-copy pairs
``(y, i)`` — but every hot inner loop (homomorphism DP tables, colour
refinement, k-WL tuple colourings, backtracking candidate pools) only
needs *identity* and *adjacency*.  :class:`IndexedGraph` compiles a graph
once into a compact representation the compute layers share:

* vertices are ``0 .. n-1`` in the :class:`Graph`'s insertion order;
* adjacency is CSR-style (``offsets``/``targets`` as ``array('q')``),
  neighbours sorted ascending, so ``degree`` is O(1) and neighbour scans
  are cache-friendly;
* lazily cached invariants: per-vertex **neighbourhood bitsets** (Python
  big-ints, one bit per vertex — an O(n/64)-word intersection replaces a
  ``frozenset`` intersection of rich labels), the sorted degree sequence,
  connected components, and a structural digest;
* a :class:`LabelCodec` keeps the original labels at the boundary:
  ``Graph.to_indexed()`` encodes once (and caches on the graph),
  :meth:`IndexedGraph.to_graph` decodes back losslessly.

The intended architecture is *labels at the boundary, indices inside*:
public APIs accept and return labels, while everything between — search
orders, DP table keys, partition arrays, candidate pools — lives in index
space.  See README "Architecture".
"""

from __future__ import annotations

import hashlib
from array import array
from sys import getsizeof
from typing import TYPE_CHECKING, Hashable, Iterable, Iterator, Sequence

from repro.errors import GraphError

if TYPE_CHECKING:  # pragma: no cover
    from repro.graphs.graph import Graph

Vertex = Hashable


class LabelCodec:
    """A frozen bijection between hashable vertex labels and ``0..n-1``.

    The index of a label is its position in the originating graph's
    insertion order, so ``Graph.vertices()[i]`` and ``codec.labels[i]``
    always agree.
    """

    __slots__ = ("labels", "_index")

    def __init__(self, labels: Iterable[Vertex]) -> None:
        self.labels: tuple = tuple(labels)
        self._index: dict = {label: i for i, label in enumerate(self.labels)}
        if len(self._index) != len(self.labels):
            raise GraphError("codec labels must be distinct")

    def __len__(self) -> int:
        return len(self.labels)

    def __contains__(self, label: Vertex) -> bool:
        return label in self._index

    def encode(self, label: Vertex) -> int:
        """The index of ``label``; raises :class:`GraphError` if unknown."""
        try:
            return self._index[label]
        except KeyError as exc:
            raise GraphError(f"vertex {label!r} not in graph") from exc

    def encode_or_none(self, label: Vertex) -> int | None:
        """The index of ``label``, or ``None`` — never raises."""
        try:
            return self._index.get(label)
        except TypeError:  # unhashable probe
            return None

    def decode(self, index: int) -> Vertex:
        return self.labels[index]

    def encode_mask(self, labels: Iterable[Vertex]) -> int:
        """A bitset of the indices of the known labels in ``labels``
        (unknown labels are skipped — they cannot be images/vertices)."""
        index = self._index
        mask = 0
        for label in labels:
            i = index.get(label)
            if i is not None:
                mask |= 1 << i
        return mask


class IndexedGraph:
    """A frozen, integer-indexed snapshot of a :class:`Graph`.

    Construct via :meth:`Graph.to_indexed` (cached on the graph) or
    :meth:`IndexedGraph.from_graph`.  All invariants are cached on first
    use; the object itself is immutable.
    """

    __slots__ = (
        "n",
        "offsets",
        "targets",
        "codec",
        "_adjacency_lists",
        "_bitsets",
        "_packed_bitsets",
        "_degree_sequence",
        "_components",
        "_digest",
    )

    def __init__(
        self,
        n: int,
        offsets: array,
        targets: array,
        codec: LabelCodec,
    ) -> None:
        self.n = n
        self.offsets = offsets
        self.targets = targets
        self.codec = codec
        self._adjacency_lists: tuple[tuple[int, ...], ...] | None = None
        self._bitsets: tuple[int, ...] | None = None
        self._packed_bitsets = None  # (n, words) uint64 — repro.kernel
        self._degree_sequence: tuple[int, ...] | None = None
        self._components: tuple[tuple[int, ...], ...] | None = None
        self._digest: str | None = None

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: "Graph") -> "IndexedGraph":
        """Encode ``graph`` (vertices in insertion order)."""
        adjacency = graph.adjacency_view()
        codec = LabelCodec(adjacency)
        index = codec._index
        n = len(codec)
        offsets = array("q", bytes(8 * (n + 1)))
        targets = array("q")
        position = 0
        for i, label in enumerate(codec.labels):
            row = sorted(index[u] for u in adjacency[label])
            targets.extend(row)
            position += len(row)
            offsets[i + 1] = position
        return cls(n, offsets, targets, codec)

    @classmethod
    def from_neighbour_lists(
        cls,
        neighbour_lists: Sequence[Sequence[int]],
        labels: Sequence[Vertex] | None = None,
    ) -> "IndexedGraph":
        """Build directly from per-vertex sorted neighbour index lists.

        ``labels`` defaults to the indices themselves.  Used for derived
        graphs that never existed in label space (e.g. disjoint unions
        inside WL equivalence checks).
        """
        n = len(neighbour_lists)
        codec = LabelCodec(range(n) if labels is None else labels)
        offsets = array("q", bytes(8 * (n + 1)))
        targets = array("q")
        position = 0
        for i, row in enumerate(neighbour_lists):
            targets.extend(row)
            position += len(row)
            offsets[i + 1] = position
        return cls(n, offsets, targets, codec)

    def to_graph(self) -> "Graph":
        """Decode back to a label-space :class:`Graph` (lossless)."""
        from repro.graphs.graph import Graph

        labels = self.codec.labels
        graph = Graph(vertices=labels)
        for u, v in self.edges():
            graph.add_edge(labels[u], labels[v])
        return graph

    @staticmethod
    def disjoint_union(first: "IndexedGraph", second: "IndexedGraph") -> "IndexedGraph":
        """The disjoint union with ``second``'s indices shifted by
        ``first.n`` — pure index space, labels are the shifted indices."""
        shift = first.n
        rows = list(first.adjacency_lists())
        rows.extend(
            tuple(u + shift for u in row) for row in second.adjacency_lists()
        )
        return IndexedGraph.from_neighbour_lists(rows)

    # ------------------------------------------------------------------
    # adjacency
    # ------------------------------------------------------------------
    def num_vertices(self) -> int:
        return self.n

    def num_edges(self) -> int:
        return len(self.targets) // 2

    def degree(self, vertex: int) -> int:
        """O(1): the CSR row width."""
        return self.offsets[vertex + 1] - self.offsets[vertex]

    def neighbours(self, vertex: int) -> tuple[int, ...]:
        """Sorted neighbour indices of ``vertex``."""
        return self.adjacency_lists()[vertex]

    def adjacency_lists(self) -> tuple[tuple[int, ...], ...]:
        """Per-vertex sorted neighbour tuples (cached; the fastest
        structure for Python-level scans)."""
        cached = self._adjacency_lists
        if cached is None:
            offsets, targets = self.offsets, self.targets
            cached = tuple(
                tuple(targets[offsets[i]:offsets[i + 1]]) for i in range(self.n)
            )
            self._adjacency_lists = cached
        return cached

    def bitsets(self) -> tuple[int, ...]:
        """Per-vertex neighbourhood bitsets: bit ``w`` of ``bitsets()[v]``
        is set iff ``{v, w}`` is an edge.  Python big-ints, so any ``n``
        works; intersections cost O(n/64) words."""
        cached = self._bitsets
        if cached is None:
            rows = []
            for row in self.adjacency_lists():
                bits = 0
                for w in row:
                    bits |= 1 << w
                rows.append(bits)
            cached = tuple(rows)
            self._bitsets = cached
        return cached

    def packed_bitsets(self):
        """The neighbourhood bitsets as an ``(n, words)`` ``uint64``
        ndarray (cached) — the vectorised twin of :meth:`bitsets`,
        available only when the numpy kernel tier is importable."""
        from repro.kernel.bitset_numpy import pack_bitsets

        return pack_bitsets(self)

    def has_edge(self, u: int, v: int) -> bool:
        return bool((self.bitsets()[u] >> v) & 1)

    def edges(self) -> Iterator[tuple[int, int]]:
        """Each edge once, as ``(u, v)`` with ``u < v``."""
        offsets, targets = self.offsets, self.targets
        for u in range(self.n):
            for position in range(offsets[u], offsets[u + 1]):
                v = targets[position]
                if u < v:
                    yield (u, v)

    # ------------------------------------------------------------------
    # cached invariants
    # ------------------------------------------------------------------
    def degree_sequence(self) -> tuple[int, ...]:
        """Sorted (descending) degree sequence."""
        cached = self._degree_sequence
        if cached is None:
            offsets = self.offsets
            cached = tuple(
                sorted(
                    (offsets[i + 1] - offsets[i] for i in range(self.n)),
                    reverse=True,
                ),
            )
            self._degree_sequence = cached
        return cached

    def connected_components(self) -> tuple[tuple[int, ...], ...]:
        """Vertex index sets of the connected components (sorted tuples)."""
        cached = self._components
        if cached is None:
            adjacency = self.adjacency_lists()
            seen = bytearray(self.n)
            components: list[tuple[int, ...]] = []
            for root in range(self.n):
                if seen[root]:
                    continue
                seen[root] = 1
                component = [root]
                frontier = [root]
                while frontier:
                    current = frontier.pop()
                    for neighbour in adjacency[current]:
                        if not seen[neighbour]:
                            seen[neighbour] = 1
                            component.append(neighbour)
                            frontier.append(neighbour)
                components.append(tuple(sorted(component)))
            cached = tuple(components)
            self._components = cached
        return cached

    def structural_digest(self) -> str:
        """SHA-256 over ``(n, CSR arrays)`` — a label-independent identity
        of the indexed structure (equal for equally-indexed graphs)."""
        cached = self._digest
        if cached is None:
            hasher = hashlib.sha256()
            hasher.update(str(self.n).encode())
            hasher.update(self.offsets.tobytes())
            hasher.update(self.targets.tobytes())
            cached = hasher.hexdigest()
            self._digest = cached
        return cached

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def memory_footprint(self) -> int:
        """Approximate bytes held by the index structures (CSR arrays +
        codec; cached invariants excluded — they are optional extras)."""
        total = getsizeof(self.offsets) + getsizeof(self.targets)
        total += getsizeof(self.codec.labels) + getsizeof(self.codec._index)
        return total

    def __repr__(self) -> str:
        return f"IndexedGraph(n={self.n}, m={self.num_edges()})"


def graph_memory_footprint(graph: "Graph") -> int:
    """Approximate bytes held by a :class:`Graph`'s dict-of-sets adjacency
    (dict + per-vertex sets; label payloads themselves excluded, matching
    :meth:`IndexedGraph.memory_footprint` which also shares the labels)."""
    adjacency = graph.adjacency_view()
    total = getsizeof(adjacency)
    for neighbours in adjacency.values():
        total += getsizeof(neighbours)
    return total
