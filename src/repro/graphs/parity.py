"""Lemma 58: parity-prescribed edge assignments.

For a connected graph ``G`` and an even-cardinality vertex set ``S`` there
is an assignment ``β : E(G) → {0, 1}`` whose per-vertex incident sums have
prescribed parities: odd exactly at the vertices of ``S``.  This is the
combinatorial engine of Lemma 54 (constructing the extension homomorphism
inside a CFI component) — a T-join on a spanning tree.

The implementation realises β as the symmetric difference of tree paths
pairing up the odd vertices, which is linear-time and constructive (the
paper's proof is an induction; the object produced is the same).
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import GraphError
from repro.graphs.graph import Graph, Vertex


def parity_edge_assignment(
    graph: Graph,
    odd_vertices: Iterable[Vertex],
) -> dict[frozenset, int]:
    """An assignment ``β`` with ``Σ_{u∈N(v)} β({u,v}) ≡ [v ∈ S] (mod 2)``.

    Raises :class:`GraphError` if the graph is disconnected, ``S`` is odd,
    or ``S`` contains unknown vertices (matching Lemma 58's hypotheses).
    """
    odd = set(odd_vertices)
    unknown = odd - set(graph.vertices())
    if unknown:
        raise GraphError(f"odd vertices not in graph: {unknown!r}")
    if len(odd) % 2 != 0:
        raise GraphError("Lemma 58 requires an even number of odd vertices")
    if graph.num_vertices() == 0:
        return {}
    if not graph.is_connected():
        raise GraphError("Lemma 58 requires a connected graph")

    beta = {frozenset(edge): 0 for edge in graph.edges()}
    if not odd:
        return beta

    # Spanning tree by BFS, remembering parents.
    root = graph.vertices()[0]
    parent: dict[Vertex, Vertex | None] = {root: None}
    order = [root]
    frontier = [root]
    while frontier:
        current = frontier.pop()
        for neighbour in graph.neighbours(current):
            if neighbour not in parent:
                parent[neighbour] = current
                order.append(neighbour)
                frontier.append(neighbour)

    # Process vertices leaves-first: if a vertex still needs odd parity,
    # flip its tree edge to the parent (toggling the parent's need).
    needs_odd = {v: v in odd for v in graph.vertices()}
    for v in reversed(order):
        if not needs_odd[v]:
            continue
        up = parent[v]
        if up is None:
            raise AssertionError(
                "root left odd — impossible for even |S| on a connected graph",
            )
        edge = frozenset((v, up))
        beta[edge] ^= 1
        needs_odd[v] = False
        needs_odd[up] = not needs_odd[up]
    return beta


def verify_parity_assignment(
    graph: Graph,
    odd_vertices: Iterable[Vertex],
    beta: dict[frozenset, int],
) -> bool:
    """Check the Lemma 58 condition for a candidate assignment."""
    odd = set(odd_vertices)
    if set(beta) != {frozenset(edge) for edge in graph.edges()}:
        return False
    for v in graph.vertices():
        total = sum(beta[frozenset((u, v))] for u in graph.neighbours(v))
        if total % 2 != (1 if v in odd else 0):
            return False
    return True
