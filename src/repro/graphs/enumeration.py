"""Exhaustive enumeration of small graphs, up to isomorphism.

The hom-indistinguishability oracle (Definition 19 restricted to a finite
size bound) needs "all graphs of treewidth ≤ k on at most n vertices".  We
enumerate all graphs on ``n`` labelled vertices, deduplicate with canonical
forms, and filter by a predicate.  Counts are cross-checked against OEIS
A000088 (1, 1, 2, 4, 11, 34, 156, 1044, …) in the test-suite.
"""

from __future__ import annotations

from itertools import combinations
from typing import Callable, Iterator

from repro.graphs.canonical import canonical_key
from repro.graphs.graph import Graph


def all_graphs_up_to_iso(num_vertices: int) -> Iterator[Graph]:
    """All isomorphism classes of simple graphs on ``num_vertices`` vertices.

    Enumerate edge subsets of ``K_n`` and deduplicate via canonical forms.
    Intended for ``num_vertices <= 6`` (156 classes); beyond that the labelled
    count (2^(n choose 2)) makes the filter impractical.
    """
    possible_edges = list(combinations(range(num_vertices), 2))
    seen: set[tuple] = set()
    for mask in range(2 ** len(possible_edges)):
        graph = Graph(vertices=range(num_vertices))
        for bit, edge in enumerate(possible_edges):
            if mask >> bit & 1:
                graph.add_edge(*edge)
        key = canonical_key(graph)
        if key not in seen:
            seen.add(key)
            yield graph


def all_connected_graphs_up_to_iso(num_vertices: int) -> Iterator[Graph]:
    """Connected isomorphism classes on exactly ``num_vertices`` vertices."""
    for graph in all_graphs_up_to_iso(num_vertices):
        if graph.is_connected():
            yield graph


def graphs_with_property(
    max_vertices: int,
    predicate: Callable[[Graph], bool],
    connected_only: bool = False,
    min_vertices: int = 1,
) -> Iterator[Graph]:
    """All isomorphism classes with ``min_vertices..max_vertices`` vertices
    satisfying ``predicate``."""
    for n in range(min_vertices, max_vertices + 1):
        source = (
            all_connected_graphs_up_to_iso(n)
            if connected_only
            else all_graphs_up_to_iso(n)
        )
        for graph in source:
            if predicate(graph):
                yield graph


def all_trees_up_to_iso(num_vertices: int) -> Iterator[Graph]:
    """All trees on exactly ``num_vertices`` vertices, up to isomorphism.

    Generated directly (attach each new vertex to an existing one) and
    deduplicated — much cheaper than filtering all graphs.
    """
    if num_vertices <= 0:
        return
    seen: set[tuple] = set()

    def grow(graph: Graph, next_vertex: int) -> Iterator[Graph]:
        if next_vertex == num_vertices:
            key = canonical_key(graph)
            if key not in seen:
                seen.add(key)
                yield graph.copy()
            return
        for parent in range(next_vertex):
            extended = graph.copy()
            extended.add_edge(next_vertex, parent)
            yield from grow(extended, next_vertex + 1)

    yield from grow(Graph(vertices=[0]), 1)
