"""Generators for the graph families used throughout the paper and tests.

Includes the standard small families (paths, cycles, cliques, stars,
complete bipartite, grids, trees, hypercubes), the classical 1-WL-equivalent
pair ``2K3`` / ``C6`` from Observation 62, the Petersen graph, prisms, and
seeded Erdős–Rényi random graphs for property-based tests.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.errors import GraphError
from repro.graphs.graph import Graph


def empty_graph(n: int) -> Graph:
    """``n`` isolated vertices labelled ``0..n-1``."""
    if n < 0:
        raise GraphError("n must be non-negative")
    return Graph(vertices=range(n))


def path_graph(n: int) -> Graph:
    """The path ``P_n`` on ``n`` vertices (``n-1`` edges)."""
    graph = empty_graph(n)
    for i in range(n - 1):
        graph.add_edge(i, i + 1)
    return graph


def cycle_graph(n: int) -> Graph:
    """The cycle ``C_n``; requires ``n >= 3``."""
    if n < 3:
        raise GraphError("cycles need at least 3 vertices")
    graph = path_graph(n)
    graph.add_edge(n - 1, 0)
    return graph


def complete_graph(n: int) -> Graph:
    """The clique ``K_n``."""
    graph = empty_graph(n)
    for i in range(n):
        for j in range(i + 1, n):
            graph.add_edge(i, j)
    return graph


def star_graph(k: int) -> Graph:
    """The star with centre ``'y'`` and leaves ``'x1'..'xk'``.

    This is the underlying graph ``S_k`` of the k-star query
    (Definition 66); the leaves are the free variables.
    """
    if k < 1:
        raise GraphError("stars need at least one leaf")
    graph = Graph(vertices=["y"])
    for i in range(1, k + 1):
        graph.add_edge(f"x{i}", "y")
    return graph


def complete_bipartite_graph(a: int, b: int) -> Graph:
    """``K_{a,b}`` with sides ``('L', i)`` and ``('R', j)``."""
    graph = Graph(
        vertices=[("L", i) for i in range(a)] + [("R", j) for j in range(b)],
    )
    for i in range(a):
        for j in range(b):
            graph.add_edge(("L", i), ("R", j))
    return graph


def grid_graph(rows: int, cols: int) -> Graph:
    """The ``rows × cols`` grid; treewidth ``min(rows, cols)``."""
    graph = Graph(vertices=[(r, c) for r in range(rows) for c in range(cols)])
    for r in range(rows):
        for c in range(cols):
            if r + 1 < rows:
                graph.add_edge((r, c), (r + 1, c))
            if c + 1 < cols:
                graph.add_edge((r, c), (r, c + 1))
    return graph


def binary_tree(depth: int) -> Graph:
    """Complete binary tree of the given depth (``depth = 0``: one vertex)."""
    graph = Graph(vertices=[0])
    last = 2 ** (depth + 1) - 1
    for child in range(1, last):
        graph.add_edge(child, (child - 1) // 2)
    return graph


def hypercube_graph(dimension: int) -> Graph:
    """The ``dimension``-dimensional hypercube on bitmask vertices."""
    n = 2 ** dimension
    graph = Graph(vertices=range(n))
    for v in range(n):
        for bit in range(dimension):
            graph.add_edge(v, v ^ (1 << bit))
    return graph


def petersen_graph() -> Graph:
    """The Petersen graph (treewidth 4, girth 5)."""
    graph = Graph(vertices=range(10))
    for i in range(5):
        graph.add_edge(i, (i + 1) % 5)
        graph.add_edge(i, i + 5)
        graph.add_edge(i + 5, (i + 2) % 5 + 5)
    return graph


def prism_graph(n: int) -> Graph:
    """The circular ladder ``C_n × K_2`` (two n-cycles joined by a matching)."""
    if n < 3:
        raise GraphError("prisms need n >= 3")
    graph = Graph(vertices=[("a", i) for i in range(n)] + [("b", i) for i in range(n)])
    for i in range(n):
        graph.add_edge(("a", i), ("a", (i + 1) % n))
        graph.add_edge(("b", i), ("b", (i + 1) % n))
        graph.add_edge(("a", i), ("b", i))
    return graph


def two_triangles() -> Graph:
    """``2K3``: the disjoint union of two triangles (Observation 62)."""
    graph = Graph()
    for offset in (0, 3):
        for i in range(3):
            graph.add_edge(offset + i, offset + (i + 1) % 3)
    return graph


def six_cycle() -> Graph:
    """``C6`` — 1-WL-equivalent to ``2K3`` but not 2-WL-equivalent."""
    return cycle_graph(6)


def disjoint_cliques(sizes: Iterable[int]) -> Graph:
    """Disjoint union of cliques with the given sizes."""
    graph = Graph()
    offset = 0
    for size in sizes:
        for i in range(size):
            graph.add_vertex(offset + i)
            for j in range(i):
                graph.add_edge(offset + i, offset + j)
        offset += size
    return graph


def random_graph(n: int, p: float, seed: int | None = None) -> Graph:
    """Erdős–Rényi ``G(n, p)`` with a deterministic seed for reproducibility."""
    if not 0.0 <= p <= 1.0:
        raise GraphError("edge probability must be in [0, 1]")
    rng = random.Random(seed)
    graph = empty_graph(n)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                graph.add_edge(i, j)
    return graph


def random_tree(n: int, seed: int | None = None) -> Graph:
    """A uniformly random labelled tree via a random Prüfer-style attachment."""
    rng = random.Random(seed)
    graph = empty_graph(n)
    for v in range(1, n):
        graph.add_edge(v, rng.randrange(v))
    return graph


def random_connected_graph(n: int, extra_edge_prob: float, seed: int | None = None) -> Graph:
    """A random connected graph: a random tree plus independent extra edges."""
    rng = random.Random(seed)
    graph = random_tree(n, seed=rng.randrange(2 ** 30))
    for i in range(n):
        for j in range(i + 1, n):
            if not graph.has_edge(i, j) and rng.random() < extra_edge_prob:
                graph.add_edge(i, j)
    return graph


def wheel_graph(n: int) -> Graph:
    """The wheel ``W_n``: a hub adjacent to every vertex of ``C_n``."""
    graph = cycle_graph(n)
    for i in range(n):
        graph.add_edge("hub", i)
    return graph
