"""Graph operations used by the paper's constructions and corollaries.

* disjoint union — Observation 62 (products over components)
* tensor product ``A ⊗ B`` — Corollary 5's separation argument, with
  ``|Hom(H, A ⊗ B)| = |Hom(H, A)| · |Hom(H, B)|``
* self-loop-free complement — Corollary 68 (dominating sets)
* quotients — inclusion–exclusion over identifications of free variables
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Mapping

from repro.errors import GraphError
from repro.graphs.graph import Graph, Vertex


def disjoint_union(first: Graph, second: Graph) -> Graph:
    """Disjoint union with vertices tagged ``(0, v)`` and ``(1, v)``."""
    result = Graph()
    for v in first.vertices():
        result.add_vertex((0, v))
    for v in second.vertices():
        result.add_vertex((1, v))
    for u, v in first.edges():
        result.add_edge((0, u), (0, v))
    for u, v in second.edges():
        result.add_edge((1, u), (1, v))
    return result


def disjoint_union_many(graphs: Iterable[Graph]) -> Graph:
    """Disjoint union of arbitrarily many graphs, tagged ``(i, v)``."""
    result = Graph()
    for index, graph in enumerate(graphs):
        for v in graph.vertices():
            result.add_vertex((index, v))
        for u, v in graph.edges():
            result.add_edge((index, u), (index, v))
    return result


def tensor_product(first: Graph, second: Graph) -> Graph:
    """The categorical (tensor) product ``A ⊗ B``.

    ``(a1, b1) ~ (a2, b2)`` iff ``a1 ~ a2`` in ``A`` and ``b1 ~ b2`` in ``B``.
    Homomorphism counts multiply: ``|Hom(H, A⊗B)| = |Hom(H,A)|·|Hom(H,B)|``.
    """
    result = Graph(
        vertices=[(a, b) for a in first.vertices() for b in second.vertices()],
    )
    for a1, a2 in first.edges():
        for b1, b2 in second.edges():
            result.add_edge((a1, b1), (a2, b2))
            result.add_edge((a1, b2), (a2, b1))
    return result


def complement(graph: Graph) -> Graph:
    """The self-loop-free complement ``Ḡ`` (Section 5.4)."""
    vertices = graph.vertices()
    result = Graph(vertices=vertices)
    for i, u in enumerate(vertices):
        for v in vertices[i + 1:]:
            if not graph.has_edge(u, v):
                result.add_edge(u, v)
    return result


def quotient(graph: Graph, blocks: Iterable[Iterable[Vertex]]) -> Graph:
    """Identify each block of vertices to a single vertex.

    The blocks must partition ``V(graph)``.  Block vertices are labelled by
    the frozenset of their members.  Edges *inside* a block would become
    self-loops; since the paper's graphs are simple, such an identification
    is rejected with :class:`GraphError` — callers doing inclusion–exclusion
    (e.g. injective answers, Corollary 68) must skip those quotients or rely
    on the query-level quotient which drops the contribution.
    """
    block_of: dict[Vertex, frozenset] = {}
    for block in blocks:
        frozen = frozenset(block)
        for vertex in frozen:
            if vertex in block_of:
                raise GraphError(f"vertex {vertex!r} appears in two blocks")
            block_of[vertex] = frozen
    if set(block_of) != set(graph.vertices()):
        raise GraphError("blocks must partition the vertex set")

    result = Graph(vertices=set(block_of.values()))
    for u, v in graph.edges():
        bu, bv = block_of[u], block_of[v]
        if bu == bv:
            raise GraphError(
                "identification creates a self-loop; simple graphs only",
            )
        result.add_edge(bu, bv)
    return result


def quotient_by_map(graph: Graph, mapping: Mapping[Vertex, Hashable]) -> Graph:
    """Quotient where ``mapping`` sends each vertex to its block label.

    Unlike :func:`quotient` this keeps caller-chosen labels.  Self-loops are
    rejected as above.
    """
    result = Graph(vertices=set(mapping[v] for v in graph.vertices()))
    for u, v in graph.edges():
        lu, lv = mapping[u], mapping[v]
        if lu == lv:
            raise GraphError("identification creates a self-loop")
        result.add_edge(lu, lv)
    return result


def subdivide_edges(graph: Graph, times: int = 1) -> Graph:
    """Replace every edge by a path with ``times`` internal vertices.

    Internal vertices are labelled ``('sub', u, v, i)`` with ``(u, v)`` the
    original edge in a canonical order.
    """
    if times < 0:
        raise GraphError("times must be non-negative")
    if times == 0:
        return graph.copy()
    result = Graph(vertices=graph.vertices())
    for u, v in graph.edges():
        key = (u, v) if repr(u) <= repr(v) else (v, u)
        previous: Vertex = u
        for i in range(times):
            internal = ("sub", key[0], key[1], i)
            result.add_edge(previous, internal)
            previous = internal
        result.add_edge(previous, v)
    return result


def map_labels(graph: Graph, function: Callable[[Vertex], Vertex]) -> Graph:
    """Relabel through an arbitrary injective function."""
    mapping = {v: function(v) for v in graph.vertices()}
    return graph.relabelled(mapping)


def add_apex(graph: Graph, apex_label: Vertex = "apex") -> Graph:
    """Add a universal vertex adjacent to every existing vertex."""
    result = graph.copy()
    if result.has_vertex(apex_label):
        raise GraphError(f"label {apex_label!r} already used")
    result.add_vertex(apex_label)
    for v in graph.vertices():
        result.add_edge(apex_label, v)
    return result
