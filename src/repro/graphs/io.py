"""Graph serialisation: graph6 strings and simple edge-list text.

graph6 is the compact ASCII format used by ``nauty``/``geng``; we support
graphs up to 62 vertices which is far beyond what the experiments need.
"""

from __future__ import annotations

from repro.errors import GraphError
from repro.graphs.graph import Graph


def to_graph6(graph: Graph) -> str:
    """Encode ``graph`` (relabelled to ``0..n-1`` insertion order) as graph6."""
    n = graph.num_vertices()
    if n > 62:
        raise GraphError("graph6 encoder supports at most 62 vertices")
    indexed, mapping = graph.to_index_graph()
    bits: list[int] = []
    for j in range(1, n):
        for i in range(j):
            bits.append(1 if indexed.has_edge(i, j) else 0)
    while len(bits) % 6 != 0:
        bits.append(0)
    chars = [chr(n + 63)]
    for start in range(0, len(bits), 6):
        value = 0
        for bit in bits[start:start + 6]:
            value = (value << 1) | bit
        chars.append(chr(value + 63))
    del mapping
    return "".join(chars)


def from_graph6(text: str) -> Graph:
    """Decode a graph6 string into a graph on vertices ``0..n-1``."""
    text = text.strip()
    if not text:
        raise GraphError("empty graph6 string")
    n = ord(text[0]) - 63
    if n < 0 or n > 62:
        raise GraphError("unsupported graph6 header")
    bits: list[int] = []
    for char in text[1:]:
        value = ord(char) - 63
        if value < 0 or value > 63:
            raise GraphError(f"invalid graph6 character {char!r}")
        for shift in range(5, -1, -1):
            bits.append((value >> shift) & 1)
    expected = n * (n - 1) // 2
    if len(bits) < expected:
        raise GraphError("graph6 string too short")
    graph = Graph(vertices=range(n))
    position = 0
    for j in range(1, n):
        for i in range(j):
            if bits[position]:
                graph.add_edge(i, j)
            position += 1
    return graph


def to_edge_list(graph: Graph) -> str:
    """Readable one-edge-per-line text; isolated vertices listed first."""
    lines = [f"# vertices: {graph.num_vertices()}"]
    isolated = [v for v in graph.vertices() if graph.degree(v) == 0]
    for v in isolated:
        lines.append(f"v {v!r}")
    for u, v in graph.edges():
        lines.append(f"e {u!r} {v!r}")
    return "\n".join(lines) + "\n"


def from_edge_list(text: str) -> Graph:
    """Parse the output of :func:`to_edge_list` (labels via ``eval``-free repr
    of ints and strings only)."""

    def parse_label(token: str):
        token = token.strip()
        if token.startswith("'") and token.endswith("'"):
            return token[1:-1]
        if token.startswith('"') and token.endswith('"'):
            return token[1:-1]
        try:
            return int(token)
        except ValueError as exc:
            raise GraphError(f"unsupported label token {token!r}") from exc

    graph = Graph()
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split(None, 1)
        if parts[0] == "v":
            graph.add_vertex(parse_label(parts[1]))
        elif parts[0] == "e":
            left, right = parts[1].rsplit(None, 1)
            graph.add_edge(parse_label(left), parse_label(right))
        else:
            raise GraphError(f"unrecognised line {line!r}")
    return graph
