"""Graph isomorphism, colour-preserving isomorphism, and automorphisms.

The instances in this library are small (query graphs, ℓ-copies, CFI gadgets
with a few dozen vertices), so a colour-refinement-guided backtracking search
is fast and — unlike hashing heuristics — exact.

Colour-preserving variants take an explicit vertex-colouring; they are the
workhorse behind query isomorphism (which must map free variables to free
variables, Definition 8) and behind ``Aut(H, X)`` (Definition 42).
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterator, Mapping

from repro.graphs.graph import Graph, Vertex

Colouring = Mapping[Vertex, Hashable]


def _refine_colours(graph: Graph, colours: dict[Vertex, Hashable]) -> dict[Vertex, int]:
    """Run colour refinement to a stable partition; return integer colours.

    The integer colour ids are *canonical across graphs*: two vertices in
    different graphs receive the same id iff their refinement histories
    match, so the result can be used to pair up candidate images.
    """
    current = dict(colours)
    palette: dict[Hashable, int] = {}

    def intern(signature: Hashable) -> int:
        if signature not in palette:
            palette[signature] = len(palette)
        return palette[signature]

    current = {v: intern(("init", c)) for v, c in current.items()}
    for _ in range(graph.num_vertices() + 1):
        updated = {
            v: intern(
                (current[v], tuple(sorted(current[u] for u in graph.neighbours(v)))),
            )
            for v in graph.vertices()
        }
        if len(set(updated.values())) == len(set(current.values())):
            return updated
        current = updated
    return current


def _joint_refinement(
    first: Graph,
    second: Graph,
    first_colours: Colouring,
    second_colours: Colouring,
) -> tuple[dict[Vertex, int], dict[Vertex, int]] | None:
    """Refine both graphs with a shared palette; ``None`` if histograms differ."""
    union = Graph()
    for v in first.vertices():
        union.add_vertex((0, v))
    for v in second.vertices():
        union.add_vertex((1, v))
    for u, v in first.edges():
        union.add_edge((0, u), (0, v))
    for u, v in second.edges():
        union.add_edge((1, u), (1, v))
    seeds = {(0, v): first_colours[v] for v in first.vertices()}
    seeds.update({(1, v): second_colours[v] for v in second.vertices()})
    refined = _refine_colours(union, seeds)
    left = {v: refined[(0, v)] for v in first.vertices()}
    right = {v: refined[(1, v)] for v in second.vertices()}

    def histogram(colouring: dict[Vertex, int]) -> dict[int, int]:
        counts: dict[int, int] = {}
        for colour in colouring.values():
            counts[colour] = counts.get(colour, 0) + 1
        return counts

    if histogram(left) != histogram(right):
        return None
    return left, right


def _search(
    first: Graph,
    second: Graph,
    left: dict[Vertex, int],
    right: dict[Vertex, int],
) -> Iterator[dict[Vertex, Vertex]]:
    """Backtracking over colour-compatible assignments, yielding isomorphisms."""
    by_colour: dict[int, list[Vertex]] = {}
    for v in second.vertices():
        by_colour.setdefault(right[v], []).append(v)

    # Order domain vertices: rarest colour class first for early pruning.
    order = sorted(
        first.vertices(),
        key=lambda v: (len(by_colour.get(left[v], ())), left[v], repr(v)),
    )
    mapping: dict[Vertex, Vertex] = {}
    used: set[Vertex] = set()

    def extend(index: int) -> Iterator[dict[Vertex, Vertex]]:
        if index == len(order):
            yield dict(mapping)
            return
        u = order[index]
        for candidate in by_colour.get(left[u], ()):
            if candidate in used:
                continue
            compatible = True
            for mapped in mapping:
                edge_left = first.has_edge(u, mapped)
                edge_right = second.has_edge(candidate, mapping[mapped])
                if edge_left != edge_right:
                    compatible = False
                    break
            if compatible:
                mapping[u] = candidate
                used.add(candidate)
                yield from extend(index + 1)
                used.remove(candidate)
                del mapping[u]

    yield from extend(0)


def isomorphisms_coloured(
    first: Graph,
    second: Graph,
    first_colours: Colouring,
    second_colours: Colouring,
) -> Iterator[dict[Vertex, Vertex]]:
    """All isomorphisms ``first → second`` preserving the given colours."""
    if first.num_vertices() != second.num_vertices():
        return
    if first.num_edges() != second.num_edges():
        return
    refined = _joint_refinement(first, second, first_colours, second_colours)
    if refined is None:
        return
    yield from _search(first, second, refined[0], refined[1])


def find_isomorphism(first: Graph, second: Graph) -> dict[Vertex, Vertex] | None:
    """An isomorphism ``first → second`` or ``None``."""
    uniform_first = {v: 0 for v in first.vertices()}
    uniform_second = {v: 0 for v in second.vertices()}
    for mapping in isomorphisms_coloured(first, second, uniform_first, uniform_second):
        return mapping
    return None


def are_isomorphic(first: Graph, second: Graph) -> bool:
    """Exact isomorphism test."""
    return find_isomorphism(first, second) is not None


def find_isomorphism_coloured(
    first: Graph,
    second: Graph,
    first_colours: Colouring,
    second_colours: Colouring,
) -> dict[Vertex, Vertex] | None:
    """A colour-preserving isomorphism or ``None``."""
    for mapping in isomorphisms_coloured(first, second, first_colours, second_colours):
        return mapping
    return None


def automorphisms(
    graph: Graph,
    colours: Colouring | None = None,
) -> Iterator[dict[Vertex, Vertex]]:
    """All (colour-preserving) automorphisms of ``graph``.

    With ``colours=None`` every vertex gets the same colour, giving the full
    automorphism group ``Aut(G)``.
    """
    if colours is None:
        colours = {v: 0 for v in graph.vertices()}
    yield from isomorphisms_coloured(graph, graph, colours, colours)


def automorphism_count(graph: Graph, colours: Colouring | None = None) -> int:
    """``|Aut(G)|`` (colour-preserving if colours are given)."""
    return sum(1 for _ in automorphisms(graph, colours))


def orbit_partition(graph: Graph) -> list[frozenset]:
    """Vertex orbits under ``Aut(G)``, as a partition of the vertex set."""
    parent: dict[Vertex, Vertex] = {v: v for v in graph.vertices()}

    def find(v: Vertex) -> Vertex:
        while parent[v] != v:
            parent[v] = parent[parent[v]]
            v = parent[v]
        return v

    for automorphism in automorphisms(graph):
        for source, target in automorphism.items():
            root_a, root_b = find(source), find(target)
            if root_a != root_b:
                parent[root_a] = root_b

    orbits: dict[Vertex, set[Vertex]] = {}
    for v in graph.vertices():
        orbits.setdefault(find(v), set()).add(v)
    return [frozenset(orbit) for orbit in orbits.values()]


def is_isomorphism(
    first: Graph,
    second: Graph,
    mapping: Mapping[Vertex, Vertex],
    predicate: Callable[[Vertex, Vertex], bool] | None = None,
) -> bool:
    """Verify that ``mapping`` is an isomorphism (and satisfies ``predicate``)."""
    vertices = first.vertices()
    if set(mapping) != set(vertices):
        return False
    images = set(mapping.values())
    if images != set(second.vertices()) or len(images) != len(vertices):
        return False
    if predicate is not None:
        if not all(predicate(v, mapping[v]) for v in vertices):
            return False
    for i, u in enumerate(vertices):
        for v in vertices[i + 1:]:
            if first.has_edge(u, v) != second.has_edge(mapping[u], mapping[v]):
                return False
    return True
