"""Core graph data structure.

All graphs in the paper — and therefore in this library — are finite,
undirected, and *simple*: no self-loops and no parallel edges (Section 2).
:class:`Graph` stores an adjacency-set representation over arbitrary hashable
vertex labels.  CFI graphs (Definition 25) use structured labels such as
``(w, frozenset(S))``, ℓ-copies (Definition 13) use ``(y, i)`` pairs, so the
vertex type is deliberately generic.

The class is mutable during construction (``add_vertex`` / ``add_edge``) but
the analysis code treats graphs as values; helpers that need a modified graph
copy first (:meth:`Graph.copy`).

Hot-path callers (homomorphism counting, colour refinement, k-WL, the
engine's DP plans) should not iterate this dict-of-sets structure directly:
:meth:`Graph.to_indexed` compiles the graph once into a frozen
:class:`~repro.graphs.indexed.IndexedGraph` — CSR adjacency over vertices
``0..n-1`` with neighbourhood bitsets — and caches it on the graph, so the
encode cost is amortised across every compute layer.  Labels stay at the
boundary; indices do the work.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping

from repro.errors import GraphError

Vertex = Hashable
Edge = tuple[Vertex, Vertex]


class Graph:
    """A finite simple undirected graph with hashable vertex labels.

    Parameters
    ----------
    vertices:
        Initial vertices.  Vertices mentioned only in ``edges`` are added
        automatically.
    edges:
        Iterable of 2-element tuples/iterables.  Self-loops raise
        :class:`~repro.errors.GraphError`; duplicate edges are ignored
        (the graph is simple).

    Examples
    --------
    >>> g = Graph(edges=[(0, 1), (1, 2)])
    >>> sorted(g.vertices())
    [0, 1, 2]
    >>> g.degree(1)
    2
    """

    __slots__ = ("_adjacency", "_indexed")

    def __init__(
        self,
        vertices: Iterable[Vertex] = (),
        edges: Iterable[Iterable[Vertex]] = (),
    ) -> None:
        self._adjacency: dict[Vertex, set[Vertex]] = {}
        self._indexed = None
        for vertex in vertices:
            self.add_vertex(vertex)
        for edge in edges:
            u, v = edge
            self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_vertex(self, vertex: Vertex) -> None:
        """Add ``vertex`` if not already present."""
        self._indexed = None
        self._adjacency.setdefault(vertex, set())

    def add_edge(self, u: Vertex, v: Vertex) -> None:
        """Add the undirected edge ``{u, v}``, adding endpoints as needed."""
        if u == v:
            raise GraphError(f"self-loops are not allowed (vertex {u!r})")
        self.add_vertex(u)
        self.add_vertex(v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def remove_edge(self, u: Vertex, v: Vertex) -> None:
        """Remove the edge ``{u, v}``; raise if it is absent."""
        try:
            self._adjacency[u].remove(v)
            self._adjacency[v].remove(u)
        except KeyError as exc:
            raise GraphError(f"edge {{{u!r}, {v!r}}} not in graph") from exc
        self._indexed = None

    def remove_vertex(self, vertex: Vertex) -> None:
        """Remove ``vertex`` and all incident edges; raise if absent."""
        if vertex not in self._adjacency:
            raise GraphError(f"vertex {vertex!r} not in graph")
        self._indexed = None
        for neighbour in self._adjacency[vertex]:
            self._adjacency[neighbour].discard(vertex)
        del self._adjacency[vertex]

    def copy(self) -> "Graph":
        """An independent deep copy of the adjacency structure.

        The cached :meth:`to_indexed` encoding is *shared* with the copy:
        :class:`~repro.graphs.indexed.IndexedGraph` is immutable and both
        graphs currently encode to the same value, so the copy starts warm
        instead of paying a re-encode.  Sharing is safe because every
        mutator on either graph clears only its *own* ``_indexed`` slot —
        the other graph keeps the (still correct) snapshot.  The
        copy-then-mutate regression suite pins this down.
        """
        clone = Graph()
        clone._adjacency = {v: set(adj) for v, adj in self._adjacency.items()}
        clone._indexed = self._indexed
        return clone

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def vertices(self) -> list[Vertex]:
        """All vertices, in insertion order."""
        return list(self._adjacency)

    def edges(self) -> list[Edge]:
        """Each edge once, as a tuple in first-seen endpoint order."""
        seen: set[frozenset] = set()
        result: list[Edge] = []
        for u in self._adjacency:
            for v in self._adjacency[u]:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    def has_vertex(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def has_edge(self, u: Vertex, v: Vertex) -> bool:
        return u in self._adjacency and v in self._adjacency[u]

    def neighbours(self, vertex: Vertex) -> frozenset:
        """The open neighbourhood ``N(v)``.

        Allocates a fresh ``frozenset`` per call; loops that scan many
        neighbourhoods should run over :meth:`to_indexed` instead.
        """
        if vertex not in self._adjacency:
            raise GraphError(f"vertex {vertex!r} not in graph")
        return frozenset(self._adjacency[vertex])

    def neighbourhood_of_set(self, vertices: Iterable[Vertex]) -> frozenset:
        """``N(U) = ∪_{u∈U} N(u)`` (may intersect ``U``)."""
        result: set[Vertex] = set()
        for vertex in vertices:
            result |= self._adjacency[vertex]
        return frozenset(result)

    def degree(self, vertex: Vertex) -> int:
        """``|N(v)|`` — O(1), no neighbourhood allocation."""
        try:
            return len(self._adjacency[vertex])
        except KeyError as exc:
            raise GraphError(f"vertex {vertex!r} not in graph") from exc

    def num_vertices(self) -> int:
        return len(self._adjacency)

    def num_edges(self) -> int:
        return sum(len(adj) for adj in self._adjacency.values()) // 2

    def degree_sequence(self) -> tuple[int, ...]:
        """Sorted (descending) degree sequence — a cheap invariant."""
        return tuple(sorted((len(adj) for adj in self._adjacency.values()), reverse=True))

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def connected_components(self) -> list[frozenset]:
        """Vertex sets of the connected components (BFS)."""
        remaining = set(self._adjacency)
        components: list[frozenset] = []
        while remaining:
            root = next(iter(remaining))
            component = {root}
            frontier = [root]
            while frontier:
                current = frontier.pop()
                for neighbour in self._adjacency[current]:
                    if neighbour not in component:
                        component.add(neighbour)
                        frontier.append(neighbour)
            components.append(frozenset(component))
            remaining -= component
        return components

    def is_connected(self) -> bool:
        """True for the empty graph and for connected graphs."""
        if not self._adjacency:
            return True
        return len(self.connected_components()) == 1

    def component_adjacent_to(self, component: Iterable[Vertex], vertex: Vertex) -> bool:
        """True if some vertex of ``component`` is adjacent to ``vertex``.

        This is the adjacency notion between connected components of
        ``H[Y]`` and free variables used throughout Section 2.
        """
        adjacency = self._adjacency[vertex]
        return any(u in adjacency for u in component)

    def induced_subgraph(self, vertices: Iterable[Vertex]) -> "Graph":
        """``G[S]``: the subgraph induced by ``vertices``."""
        keep = set(vertices)
        missing = keep - set(self._adjacency)
        if missing:
            raise GraphError(f"vertices not in graph: {sorted(map(repr, missing))}")
        sub = Graph(vertices=keep)
        for u in keep:
            for v in self._adjacency[u]:
                if v in keep:
                    sub._adjacency[u].add(v)
        return sub

    def is_clique(self, vertices: Iterable[Vertex]) -> bool:
        """True if every pair of distinct vertices in the set is adjacent."""
        vertex_list = list(vertices)
        for i, u in enumerate(vertex_list):
            for v in vertex_list[i + 1:]:
                if not self.has_edge(u, v):
                    return False
        return True

    def bfs_distances(self, source: Vertex) -> dict[Vertex, int]:
        """Shortest-path distances from ``source`` to all reachable vertices."""
        distances = {source: 0}
        frontier = [source]
        while frontier:
            next_frontier: list[Vertex] = []
            for current in frontier:
                for neighbour in self._adjacency[current]:
                    if neighbour not in distances:
                        distances[neighbour] = distances[current] + 1
                        next_frontier.append(neighbour)
            frontier = next_frontier
        return distances

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def __contains__(self, vertex: Vertex) -> bool:
        return vertex in self._adjacency

    def __iter__(self) -> Iterator[Vertex]:
        return iter(self._adjacency)

    def __len__(self) -> int:
        return len(self._adjacency)

    def __eq__(self, other: object) -> bool:
        """Label-level equality (same vertices, same edges) — *not* isomorphism."""
        if not isinstance(other, Graph):
            return NotImplemented
        return self._adjacency == other._adjacency

    def __hash__(self) -> int:  # pragma: no cover - graphs are mutable
        raise TypeError("Graph is unhashable; use edge_fingerprint() for keys")

    def __repr__(self) -> str:
        return f"Graph(n={self.num_vertices()}, m={self.num_edges()})"

    # Pickling (persistent plan store): ship only the adjacency — the
    # indexed encoding is a cache and is rebuilt on demand after loading.
    def __getstate__(self):
        return self._adjacency

    def __setstate__(self, state) -> None:
        if isinstance(state, tuple):  # default slots-protocol payload
            _, slots = state
            state = slots["_adjacency"]
        self._adjacency = state
        self._indexed = None

    def edge_fingerprint(self) -> frozenset:
        """A hashable, label-level identity for the graph."""
        return frozenset(
            (frozenset(self._adjacency), frozenset(frozenset(e) for e in self.edges())),
        )

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    def relabelled(self, mapping: Mapping[Vertex, Vertex]) -> "Graph":
        """A copy with vertices renamed through ``mapping`` (a bijection)."""
        values = list(mapping.values())
        if len(set(values)) != len(values):
            raise GraphError("relabelling must be injective")
        result = Graph(vertices=(mapping[v] for v in self._adjacency))
        for u, v in self.edges():
            result.add_edge(mapping[u], mapping[v])
        return result

    def to_index_graph(self) -> tuple["Graph", dict[Vertex, int]]:
        """Relabel to ``0..n-1`` (insertion order); also return the mapping."""
        mapping = {v: i for i, v in enumerate(self._adjacency)}
        return self.relabelled(mapping), mapping

    def adjacency_dict(self) -> dict[Vertex, frozenset]:
        """A read-only snapshot of the adjacency structure."""
        return {v: frozenset(adj) for v, adj in self._adjacency.items()}

    def adjacency_view(self) -> Mapping[Vertex, set]:
        """The live adjacency mapping — zero-copy, for encoders only.

        Callers must not mutate the returned structure; use the public
        construction methods instead (they invalidate the indexed cache).
        """
        return self._adjacency

    def to_indexed(self):
        """The :class:`~repro.graphs.indexed.IndexedGraph` compilation of
        this graph — vertices ``0..n-1`` in insertion order, CSR adjacency,
        cached bitsets and invariants.

        The encoding is computed once and cached on the graph (mutating the
        graph invalidates it), so the cost is amortised across all compute
        layers: the engine, the homomorphism counters, and the WL stack all
        share one encode per graph value.
        """
        cached = self._indexed
        if cached is None:
            from repro.graphs.indexed import IndexedGraph

            cached = IndexedGraph.from_graph(self)
            self._indexed = cached
        return cached

    def adopt_indexed(self, indexed) -> None:
        """Seed the :meth:`to_indexed` cache with an externally built
        encoding (the dynamic layer patches the previous version's index
        instead of recompiling).

        ``indexed`` must encode exactly this graph — vertices in insertion
        order, every edge present.  Cheap shape invariants are verified
        here; the dynamic layer's property tests assert full agreement.
        """
        if indexed.n != self.num_vertices() or indexed.num_edges() != self.num_edges():
            raise GraphError(
                f"adopted index has shape (n={indexed.n}, m={indexed.num_edges()}), "
                f"graph has (n={self.num_vertices()}, m={self.num_edges()})",
            )
        self._indexed = indexed
