"""Canonical forms for small graphs.

A *canonical form* assigns to each graph a value that is equal for two graphs
iff they are isomorphic.  We use it to deduplicate enumerated graph families
(e.g. all graphs of treewidth ≤ k on ≤ n vertices for the
hom-indistinguishability oracle) and to give conjunctive queries stable
identities.

The implementation is individualisation–refinement: refine colours, then
branch on the smallest non-singleton colour class, taking the lexicographic
minimum of the resulting adjacency encodings.  Exponential in the worst case
but instantaneous on the ≤ 10-vertex graphs it is applied to.
"""

from __future__ import annotations

from typing import Hashable, Mapping

from repro.graphs.graph import Graph, Vertex


def _refine(
    graph: Graph,
    colours: dict[Vertex, Hashable],
) -> dict[Vertex, int]:
    """Stable colour refinement with deterministic integer colour names."""
    current = dict(colours)
    while True:
        signatures = {
            v: (
                current[v],
                tuple(sorted(repr(current[u]) for u in graph.neighbours(v))),
            )
            for v in graph.vertices()
        }
        order = sorted(set(signatures.values()), key=repr)
        rename = {signature: i for i, signature in enumerate(order)}
        updated = {v: rename[signatures[v]] for v in graph.vertices()}
        if len(set(updated.values())) == len(set(current.values())):
            return updated
        current = updated


def _encode(graph: Graph, ordering: list[Vertex]) -> tuple:
    """Upper-triangular adjacency bits under the given vertex ordering."""
    index = {v: i for i, v in enumerate(ordering)}
    bits = []
    for i, u in enumerate(ordering):
        for v in ordering[i + 1:]:
            bits.append(1 if graph.has_edge(u, v) else 0)
    del index
    return tuple(bits)


def _canonical_encoding(
    graph: Graph,
    colours: dict[Vertex, Hashable],
) -> tuple:
    refined = _refine(graph, colours)
    classes: dict[int, list[Vertex]] = {}
    for v, colour in refined.items():
        classes.setdefault(colour, []).append(v)

    non_singletons = [c for c, members in classes.items() if len(members) > 1]
    if not non_singletons:
        ordering = sorted(graph.vertices(), key=lambda v: refined[v])
        return _encode(graph, ordering)

    target = min(non_singletons)
    best: tuple | None = None
    for vertex in classes[target]:
        branched = dict(refined)
        branched[vertex] = ("individualised", refined[vertex])
        encoding = _canonical_encoding(graph, branched)
        if best is None or encoding < best:
            best = encoding
    assert best is not None
    return best


def canonical_form(
    graph: Graph,
    colours: Mapping[Vertex, Hashable] | None = None,
) -> tuple:
    """A complete isomorphism invariant of ``graph`` (colour-aware).

    Two graphs have equal canonical forms iff they are isomorphic (by a
    colour-preserving isomorphism when ``colours`` is given).  The returned
    value also bakes in the multiset of initial colours so differently
    coloured graphs never collide.
    """
    if colours is None:
        seed: dict[Vertex, Hashable] = {v: 0 for v in graph.vertices()}
    else:
        seed = {v: ("c", colours[v]) for v in graph.vertices()}
    colour_histogram = tuple(sorted(repr(c) for c in seed.values()))
    return (
        graph.num_vertices(),
        colour_histogram,
        _canonical_encoding(graph, seed),
    )


def canonical_key(graph: Graph) -> tuple:
    """Shorthand for the uncoloured canonical form."""
    return canonical_form(graph)
