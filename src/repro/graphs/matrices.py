"""Adjacency matrices and spectral/walk-based counting (numpy).

Closed-form homomorphism counts through linear algebra:

* ``|Hom(C_k, G)| = trace(A^k)``   (closed walks of length k);
* ``|Hom(P_k, G)| = 1ᵀ A^{k-1} 1`` (walks of length k−1);

used as independent oracles for the combinatorial counters in tests, and
as the engine behind walk-profile invariants (walk counts of length ≤ L
are 1-WL-invariant — exercised in the property suite).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover
    import numpy


def adjacency_matrix(graph: Graph) -> "numpy.ndarray":
    """Dense 0/1 adjacency matrix in insertion order of the vertices.

    Built from the cached :class:`~repro.graphs.indexed.IndexedGraph`
    encoding (index order *is* insertion order), so no label is hashed
    here however rich the vertex labels are.
    """
    import numpy

    indexed = graph.to_indexed()
    n = indexed.n
    matrix = numpy.zeros((n, n), dtype=numpy.int64)
    offsets, targets = indexed.offsets, indexed.targets
    for u in range(n):
        for position in range(offsets[u], offsets[u + 1]):
            matrix[u][targets[position]] = 1
    return matrix


# Entries of A^k are bounded by n^k; keep int64 only while that bound fits
# comfortably below 2^63 (one bit spared for the final sum/trace reduction).
_INT64_SAFE_BITS = 62


def _needs_exact_dtype(n: int, power: int) -> bool:
    """Can ``sum()``/``trace()`` of ``A^power`` exceed the int64 range?

    Walk counts are bounded by ``n · (n-1)^power`` (``n`` starts, at most
    ``n-1`` continuations per step); with ``b = bit_length(n-1)`` that is
    below ``2^((power+1)·b)``, so staying within ``(power+1)·b <= 62``
    keeps every intermediate *and* the final reduction inside int64.
    """
    if n == 0 or power == 0:
        return False
    return (power + 1) * max(n - 1, 1).bit_length() > _INT64_SAFE_BITS


def _exact_matrix_power(matrix: "numpy.ndarray", power: int) -> "numpy.ndarray":
    """``matrix ** power`` without silent int64 wraparound.

    ``numpy.linalg.matrix_power`` on ``int64`` overflows silently once the
    walk counts exceed 2^63 (large graphs, long walks).  When the a-priori
    bound may not fit, the computation switches to ``dtype=object`` —
    Python big integers, exact at any size.
    """
    import numpy

    if _needs_exact_dtype(int(matrix.shape[0]), power):
        matrix = matrix.astype(object)
    return numpy.linalg.matrix_power(matrix, power)


def count_walks(graph: Graph, length: int) -> int:
    """Number of walks with ``length`` edges = ``|Hom(P_{length+1}, G)|``."""
    if length < 0:
        raise ValueError("length must be non-negative")
    if graph.num_vertices() == 0:
        return 0
    power = _exact_matrix_power(adjacency_matrix(graph), length)
    return int(power.sum())


def count_closed_walks(graph: Graph, length: int) -> int:
    """Number of closed walks of ``length`` edges = ``|Hom(C_length, G)|``.

    Requires ``length >= 3``: cycles on fewer than three vertices do not
    exist, so shorter "closed walk" traces (``trace(A) = 0``,
    ``trace(A²) = 2|E|``) never equal a cycle homomorphism count.
    """
    import numpy

    if length < 3:
        raise ValueError(
            "closed-walk counts require length >= 3 (C_k needs k >= 3)",
        )
    if graph.num_vertices() == 0:
        return 0
    power = _exact_matrix_power(adjacency_matrix(graph), length)
    return int(numpy.trace(power))


def walk_profile(graph: Graph, max_length: int) -> tuple[int, ...]:
    """``(walks of length 0, 1, …, max_length)`` — a 1-WL-invariant vector."""
    return tuple(count_walks(graph, length) for length in range(max_length + 1))


def closed_walk_profile(graph: Graph, max_length: int) -> tuple[int, ...]:
    """``(closed walks of length 3..max_length)`` — power sums of the
    adjacency spectrum from the first informative length onwards; constant
    on 2-WL-equivalent graphs.  (Lengths 1 and 2 are fixed at ``0`` and
    ``2|E|`` and carry no extra information.)"""
    return tuple(
        count_closed_walks(graph, length) for length in range(3, max_length + 1)
    )


def spectrum(graph: Graph) -> tuple[float, ...]:
    """Adjacency eigenvalues, sorted descending (floats)."""
    import numpy

    if graph.num_vertices() == 0:
        return ()
    values = numpy.linalg.eigvalsh(adjacency_matrix(graph).astype(float))
    return tuple(sorted((float(v) for v in values), reverse=True))


def cospectral(first: Graph, second: Graph, tolerance: float = 1e-8) -> bool:
    """Equal spectra up to tolerance.  Cospectrality is implied by
    2-WL-equivalence (closed-walk counts are spectral power sums)."""
    spec_a = spectrum(first)
    spec_b = spectrum(second)
    if len(spec_a) != len(spec_b):
        return False
    return all(abs(a - b) <= tolerance for a, b in zip(spec_a, spec_b))
