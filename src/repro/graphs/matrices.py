"""Adjacency matrices and spectral/walk-based counting (numpy).

Closed-form homomorphism counts through linear algebra:

* ``|Hom(C_k, G)| = trace(A^k)``   (closed walks of length k);
* ``|Hom(P_k, G)| = 1ᵀ A^{k-1} 1`` (walks of length k−1);

used as independent oracles for the combinatorial counters in tests, and
as the engine behind walk-profile invariants (walk counts of length ≤ L
are 1-WL-invariant — exercised in the property suite).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover
    import numpy


def adjacency_matrix(graph: Graph) -> "numpy.ndarray":
    """Dense 0/1 adjacency matrix in insertion order of the vertices."""
    import numpy

    vertices = graph.vertices()
    index = {v: i for i, v in enumerate(vertices)}
    matrix = numpy.zeros((len(vertices), len(vertices)), dtype=numpy.int64)
    for u, v in graph.edges():
        matrix[index[u]][index[v]] = 1
        matrix[index[v]][index[u]] = 1
    return matrix


def count_walks(graph: Graph, length: int) -> int:
    """Number of walks with ``length`` edges = ``|Hom(P_{length+1}, G)|``."""
    import numpy

    if length < 0:
        raise ValueError("length must be non-negative")
    if graph.num_vertices() == 0:
        return 0
    matrix = adjacency_matrix(graph)
    power = numpy.linalg.matrix_power(matrix, length)
    return int(power.sum())


def count_closed_walks(graph: Graph, length: int) -> int:
    """Number of closed walks of ``length`` edges = ``|Hom(C_length, G)|``
    for ``length ≥ 3``."""
    import numpy

    if length < 1:
        raise ValueError("length must be positive")
    if graph.num_vertices() == 0:
        return 0
    matrix = adjacency_matrix(graph)
    power = numpy.linalg.matrix_power(matrix, length)
    return int(numpy.trace(power))


def walk_profile(graph: Graph, max_length: int) -> tuple[int, ...]:
    """``(walks of length 0, 1, …, max_length)`` — a 1-WL-invariant vector."""
    return tuple(count_walks(graph, length) for length in range(max_length + 1))


def closed_walk_profile(graph: Graph, max_length: int) -> tuple[int, ...]:
    """``(closed walks of length 1..max_length)`` — equivalently the power
    sums of the adjacency spectrum; constant on 2-WL-equivalent graphs."""
    return tuple(
        count_closed_walks(graph, length) for length in range(1, max_length + 1)
    )


def spectrum(graph: Graph) -> tuple[float, ...]:
    """Adjacency eigenvalues, sorted descending (floats)."""
    import numpy

    if graph.num_vertices() == 0:
        return ()
    values = numpy.linalg.eigvalsh(adjacency_matrix(graph).astype(float))
    return tuple(sorted((float(v) for v in values), reverse=True))


def cospectral(first: Graph, second: Graph, tolerance: float = 1e-8) -> bool:
    """Equal spectra up to tolerance.  Cospectrality is implied by
    2-WL-equivalence (closed-walk counts are spectral power sums)."""
    spec_a = spectrum(first)
    spec_b = spectrum(second)
    if len(spec_a) != len(spec_b):
        return False
    return all(abs(a - b) <= tolerance for a, b in zip(spec_a, spec_b))
