"""Adjacency matrices and spectral/walk-based counting.

Closed-form homomorphism counts through linear algebra:

* ``|Hom(C_k, G)| = trace(A^k)``   (closed walks of length k);
* ``|Hom(P_k, G)| = 1ᵀ A^{k-1} 1`` (walks of length k−1);

used as independent oracles for the combinatorial counters in tests, and
as the engine behind walk-profile invariants (walk counts of length ≤ L
are 1-WL-invariant — exercised in the property suite).

Walk counting runs on the kernel tier the registry picks
(:mod:`repro.kernel.backend`): with numpy importable the powers are
int64 ``numpy.linalg.matrix_power`` (switching to ``dtype=object``
big-ints when the a-priori bound says int64 could wrap), without it a
pure-Python exact matrix power takes over — same counts, so
``MatrixPlan`` and the whole suite work with numpy uninstalled.
:func:`spectrum`/:func:`cospectral` are float linear algebra with no
pure equivalent; they raise :class:`repro.errors.ReproError` without
numpy.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.graphs.graph import Graph

if TYPE_CHECKING:  # pragma: no cover
    import numpy


def adjacency_matrix(graph: Graph) -> "numpy.ndarray":
    """Dense 0/1 adjacency matrix in insertion order of the vertices.

    Built from the cached :class:`~repro.graphs.indexed.IndexedGraph`
    encoding (index order *is* insertion order), so no label is hashed
    here however rich the vertex labels are.  The fill is one flat
    scatter over the CSR arrays.  Requires numpy (the return type *is*
    an ndarray); the walk counters below do not.
    """
    import numpy

    indexed = graph.to_indexed()
    n = indexed.n
    flat = numpy.zeros(n * n, dtype=numpy.int64)
    if len(indexed.targets):
        offsets = numpy.frombuffer(indexed.offsets, dtype=numpy.int64)
        targets = numpy.frombuffer(indexed.targets, dtype=numpy.int64)
        degrees = offsets[1:] - offsets[:-1]
        sources = numpy.repeat(numpy.arange(n, dtype=numpy.int64), degrees)
        flat[sources * n + targets] = 1
    return flat.reshape(n, n)


def _adjacency_rows(graph: Graph) -> list[list[int]]:
    """The adjacency matrix as plain Python lists (kernel-free twin)."""
    indexed = graph.to_indexed()
    n = indexed.n
    rows = [[0] * n for _ in range(n)]
    for u, row in enumerate(indexed.adjacency_lists()):
        this = rows[u]
        for v in row:
            this[v] = 1
    return rows


# Entries of A^k are bounded by n^k; keep int64 only while that bound fits
# comfortably below 2^63 (one bit spared for the final sum/trace reduction).
_INT64_SAFE_BITS = 62


def _needs_exact_dtype(n: int, power: int) -> bool:
    """Can ``sum()``/``trace()`` of ``A^power`` exceed the int64 range?

    Walk counts are bounded by ``n · (n-1)^power`` (``n`` starts, at most
    ``n-1`` continuations per step); with ``b = bit_length(n-1)`` that is
    below ``2^((power+1)·b)``, so staying within ``(power+1)·b <= 62``
    keeps every intermediate *and* the final reduction inside int64.
    """
    if n == 0 or power == 0:
        return False
    return (power + 1) * max(n - 1, 1).bit_length() > _INT64_SAFE_BITS


def _exact_matrix_power(matrix: "numpy.ndarray", power: int) -> "numpy.ndarray":
    """``matrix ** power`` without silent int64 wraparound.

    ``numpy.linalg.matrix_power`` on ``int64`` overflows silently once the
    walk counts exceed 2^63 (large graphs, long walks).  When the a-priori
    bound may not fit, the computation switches to ``dtype=object`` —
    Python big integers, exact at any size.
    """
    import numpy

    if _needs_exact_dtype(int(matrix.shape[0]), power):
        matrix = matrix.astype(object)
    return numpy.linalg.matrix_power(matrix, power)


def _python_matrix_power(rows: list[list[int]], power: int) -> list[list[int]]:
    """Exact big-int ``rows ** power`` by repeated squaring — the
    kernel-free fallback behind the walk counters (and the oracle the
    numpy powers are differentially tested against)."""
    n = len(rows)
    result = [[int(i == j) for j in range(n)] for i in range(n)]
    base = [list(row) for row in rows]
    while power:
        if power & 1:
            result = _python_matmul(result, base)
        power >>= 1
        if power:
            base = _python_matmul(base, base)
    return result


def _python_matmul(a: list[list[int]], b: list[list[int]]) -> list[list[int]]:
    n = len(a)
    transposed = list(zip(*b)) if n else []
    return [
        [
            sum(x * y for x, y in zip(row, column) if x)
            for column in transposed
        ]
        for row in a
    ]


def _walk_matrix_power(graph: Graph, power: int):
    """``A^power`` on the selected kernel tier: ``(ndarray, None)`` or
    ``(None, list-of-lists)``."""
    from repro.kernel import backend as kernel_backend

    n = graph.num_vertices()
    numpy = kernel_backend.numpy_or_none()
    if numpy is not None:
        kernel_backend.note_selected("matrix", "numpy")
        return _exact_matrix_power(adjacency_matrix(graph), power), None
    kernel_backend.note_selected("matrix", "python")
    if n * n * max(power, 1) > 1 << 24:
        # The cubic pure power is the availability fallback, not a fast
        # path; flag enormous requests in the metrics but still run.
        kernel_backend.note_fallback("matrix", "large-pure-power")
    return None, _python_matrix_power(_adjacency_rows(graph), power)


def count_walks(graph: Graph, length: int) -> int:
    """Number of walks with ``length`` edges = ``|Hom(P_{length+1}, G)|``."""
    if length < 0:
        raise ValueError("length must be non-negative")
    if graph.num_vertices() == 0:
        return 0
    ndarray_power, rows = _walk_matrix_power(graph, length)
    if ndarray_power is not None:
        return int(ndarray_power.sum())
    return sum(sum(row) for row in rows)


def count_closed_walks(graph: Graph, length: int) -> int:
    """Number of closed walks of ``length`` edges = ``|Hom(C_length, G)|``.

    Requires ``length >= 3``: cycles on fewer than three vertices do not
    exist, so shorter "closed walk" traces (``trace(A) = 0``,
    ``trace(A²) = 2|E|``) never equal a cycle homomorphism count.
    """
    if length < 3:
        raise ValueError(
            "closed-walk counts require length >= 3 (C_k needs k >= 3)",
        )
    if graph.num_vertices() == 0:
        return 0
    ndarray_power, rows = _walk_matrix_power(graph, length)
    if ndarray_power is not None:
        import numpy

        return int(numpy.trace(ndarray_power))
    return sum(rows[i][i] for i in range(len(rows)))


def walk_profile(graph: Graph, max_length: int) -> tuple[int, ...]:
    """``(walks of length 0, 1, …, max_length)`` — a 1-WL-invariant vector."""
    return tuple(count_walks(graph, length) for length in range(max_length + 1))


def closed_walk_profile(graph: Graph, max_length: int) -> tuple[int, ...]:
    """``(closed walks of length 3..max_length)`` — power sums of the
    adjacency spectrum from the first informative length onwards; constant
    on 2-WL-equivalent graphs.  (Lengths 1 and 2 are fixed at ``0`` and
    ``2|E|`` and carry no extra information.)"""
    return tuple(
        count_closed_walks(graph, length) for length in range(3, max_length + 1)
    )


def spectrum(graph: Graph) -> tuple[float, ...]:
    """Adjacency eigenvalues, sorted descending (floats).

    Float linear algebra with no pure-Python twin: raises
    :class:`ReproError` when numpy is unavailable.  (Deliberately not
    routed through the kernel registry — ``REPRO_KERNEL=python`` pins the
    *exact* counters to their oracle tier and has nothing to say about
    float spectra.)
    """
    try:
        import numpy
    except ImportError as exc:
        raise ReproError(
            "spectrum() requires numpy (no pure-Python tier)",
        ) from exc
    if graph.num_vertices() == 0:
        return ()
    values = numpy.linalg.eigvalsh(adjacency_matrix(graph).astype(float))
    return tuple(sorted((float(v) for v in values), reverse=True))


def cospectral(first: Graph, second: Graph, tolerance: float = 1e-8) -> bool:
    """Equal spectra up to tolerance.  Cospectrality is implied by
    2-WL-equivalence (closed-walk counts are spectral power sums)."""
    spec_a = spectrum(first)
    spec_b = spectrum(second)
    if len(spec_a) != len(spec_b):
        return False
    return all(abs(a - b) <= tolerance for a, b in zip(spec_a, spec_b))
