"""Interchangeable executors: one task model, three execution contexts.

* :class:`LocalExecutor` — runs specs in-process over a
  :class:`~repro.engine.HomEngine` (plus the library's query machinery),
  resolving dataset names through a
  :class:`~repro.service.registry.DatasetRegistry` with the same
  serving-state snapshot and component-shard fan-out discipline as the
  HTTP server, which runs its routes on exactly this executor.
* :class:`ServiceExecutor` — ships the canonical wire payload of a spec
  to a running counting service (``POST /task``) and decodes the result.
* :class:`DynamicExecutor` — binds each spec to a maintained handle
  (:class:`~repro.dynamic.maintained.MaintainedCount` and friends), so
  re-running the spec reads the live value at the target's *current*
  version instead of recounting: the spec stays subscribed across
  ``apply``/``rollback``.

Executors memoise per-spec resolution (decoded patterns, parsed queries,
target fingerprints, gadget encodings, maintained handles) keyed by the
spec's canonical :meth:`~repro.api.tasks.Task.cache_key`, bounded by an
LRU so long sessions stay flat in memory.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.api.result import Result
from repro.api.tasks import (
    AnalyzeTask,
    AnswerCountTask,
    HomCountTask,
    KgAnswerCountTask,
    Task,
    TaskBatch,
    WlDimensionTask,
)
from repro.engine.batch import run_shard_batch
from repro.errors import TaskError
from repro.obs import (
    child_span,
    cost_breakdown,
    leaf_span,
    maybe_record as _slowlog_record,
    observe_slo,
    observe_task_cost,
    registry as _metrics_registry,
    span,
)

# Per-executor resolution memo bound; evicted entries are simply re-resolved
# (and maintained handles re-subscribed) on next use.
PREPARED_LIMIT = 512

# repro_tasks_total children, memoised per (kind, executor) so the warm
# path pays one dict hit + one counter inc, not a registry lookup.
_task_children: dict[tuple[str, str], object] = {}


def _count_task(kind: str, executor: str) -> None:
    child = _task_children.get((kind, executor))
    if child is None:
        family = _metrics_registry().counter(
            "repro_tasks_total",
            "Task specs executed, by task kind and executor.",
            labelnames=("kind", "executor"),
        )
        child = family.labels(kind=kind, executor=executor)
        _task_children[(kind, executor)] = child
    child.inc()


def _finish_task(task: Task, result: Result, sp) -> Result:
    """Post-run telemetry shared by every in-process execution path.

    Phase-cost histograms only when the span tree has children — i.e.
    some real compile/execute/encode work ran; a warm cache hit skips
    the tree walk entirely.  The slow-query check is one float compare
    for fast results.
    """
    if sp.children and sp.live:
        observe_task_cost(result.kind, result.backend, cost_breakdown(sp))
    # Feed the task-kind SLO window (cheap no-op when tracking is off).
    observe_slo(result.kind, result.elapsed_ms)
    _slowlog_record(task, result)
    return result


class _PreparedCache:
    """A tiny lock-guarded LRU for per-task resolution state.

    Executors are shared across server worker threads, so every
    operation locks; the optional eviction hook lets the dynamic
    executor close maintained handles it drops.
    """

    def __init__(self, limit: int = PREPARED_LIMIT, on_evict=None) -> None:
        self._entries: OrderedDict[str, object] = OrderedDict()
        self._limit = limit
        self._on_evict = on_evict
        self._lock = threading.Lock()

    def get(self, key: str):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key: str, entry) -> None:
        evicted = []
        with self._lock:
            self._entries[key] = entry
            self._entries.move_to_end(key)
            while len(self._entries) > self._limit:
                evicted.append(self._entries.popitem(last=False)[1])
        if self._on_evict is not None:
            for entry in evicted:
                self._on_evict(entry)

    def values(self):
        with self._lock:
            return list(self._entries.values())

    def clear(self) -> None:
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        if self._on_evict is not None:
            for entry in entries:
                self._on_evict(entry)


class Executor:
    """The executor protocol: ``run`` one spec, ``run_batch`` a container."""

    name = "abstract"

    def run(self, task: Task) -> Result:
        raise NotImplementedError

    def run_batch(self, batch: TaskBatch) -> list[Result]:
        return [self.run(task) for task in batch]

    def close(self) -> None:
        """Release held resources (maintained handles, connections)."""

    # ------------------------------------------------------------------
    # shared pure computations (no target involved)
    # ------------------------------------------------------------------
    def _run_query_analysis(self, task: Task) -> Result:
        from repro.core.wl_dimension import analyse_query, wl_dimension
        from repro.queries.parser import format_query, parse_query

        sp = span(f"task.{task.kind}", executor=self.name)
        with sp:
            query = parse_query(task.query)
            logic = format_query(query, style="logic")
            if isinstance(task, WlDimensionTask):
                value: object = wl_dimension(query)
            else:
                value = analyse_query(query)
        _count_task(task.kind, self.name)
        provenance: dict = {"query": task.query, "logic": logic}
        if sp.live:
            provenance["trace"] = sp
        return _finish_task(task, Result(
            kind=task.kind,
            value=value,
            executor=self.name,
            backend="exact",
            provenance=provenance,
            elapsed_ms=sp.duration_ms,
        ), sp)


def _graph_summary(graph) -> dict:
    # One source of truth with the wire payloads (imported lazily — the
    # service package's __init__ pulls in the server, which imports us).
    from repro.service.wire import graph_summary

    return graph_summary(graph)


def _kg_summary(kg) -> dict:
    from repro.service.wire import kg_summary

    return kg_summary(kg)


class LocalExecutor(Executor):
    """Run task specs in-process over a shared engine and registry.

    ``engine=None`` resolves :func:`repro.engine.default_engine` *per
    call*, so the executor honours ``set_default_engine`` swaps (tests
    and the service install their own engines); pass an engine to pin
    one.  ``registry`` resolves dataset-name targets; the HTTP server
    passes its own so requests and the task route serve identical state.
    """

    name = "local"

    def __init__(self, engine=None, registry=None) -> None:
        self._engine = engine
        if registry is None:
            from repro.service.registry import DatasetRegistry

            registry = DatasetRegistry()
        self.registry = registry
        self._prepared = _PreparedCache()

    @property
    def engine(self):
        if self._engine is not None:
            return self._engine
        from repro.engine import default_engine

        return default_engine()

    # ------------------------------------------------------------------
    # fast-path counting (ints, no Result) — the legacy shims ride these
    # ------------------------------------------------------------------
    def hom_count(self, pattern, target, target_id=None) -> int:
        """``|Hom(pattern, target)|`` for an inline target graph."""
        return self.engine.count(pattern, target, target_id=target_id)

    def answer_count(self, query, target, method: str = "auto") -> int:
        """``|Ans(query, target)|`` for a parsed query or query text."""
        if isinstance(query, str):
            from repro.queries.parser import parse_query

            query = parse_query(query)
        return self._answer_count_parsed(query, target, method)[0]

    def kg_answer_count(self, query, target, target_id=None) -> int:
        from repro.kg.engine_bridge import count_kg_answers_engine

        return count_kg_answers_engine(
            query, target, engine=self.engine, target_id=target_id,
        )

    def _answer_count_parsed(self, query, target, method: str) -> tuple[int, str]:
        from repro.queries.answers import (
            count_answers_by_interpolation,
            count_answers_direct,
        )

        if method == "auto":
            method = "direct" if query.is_boolean() else "interpolation"
        if method == "direct":
            return count_answers_direct(query, target), "direct"
        return count_answers_by_interpolation(query, target), "interpolation"

    # ------------------------------------------------------------------
    # task execution
    # ------------------------------------------------------------------
    def run(self, task: Task) -> Result:
        if isinstance(task, HomCountTask):
            return self._run_hom_count(task)
        if isinstance(task, AnswerCountTask):
            return self._run_answer_count(task)
        if isinstance(task, KgAnswerCountTask):
            return self._run_kg_answer_count(task)
        if isinstance(task, (WlDimensionTask, AnalyzeTask)):
            return self._run_query_analysis(task)
        if isinstance(task, TaskBatch):
            raise TaskError("run a TaskBatch through run_batch()")
        raise TaskError(f"cannot execute task kind {task.kind!r}")

    def _serving(self, name: str, kind: str):
        """One immutable serving-state snapshot for a named dataset."""
        return self.registry.get(name, kind=kind).serving

    def _run_hom_count(self, task: HomCountTask) -> Result:
        engine = self.engine
        # leaf_span: warm cache hits are tens of microseconds, so this
        # span skips contextvar registration; the engine's cold-path
        # spans are handed `sp` explicitly instead of discovering it.
        sp = leaf_span("task.hom-count", executor=self.name)
        with sp:
            pattern = task.pattern
            shard_count = 1
            version = None
            if isinstance(task.target, str):
                serving = self._serving(task.target, "graph")
                version = serving.version
                target_name: object = task.target
                target_graph = serving.graph
                if (
                    len(serving.shards) > 1
                    and pattern.num_vertices() > 0
                    and pattern.is_connected()
                ):
                    # Connected patterns sum over component shards exactly;
                    # numpy-tier shard misses run on a thread pool so one
                    # request uses this worker process's cores.
                    shard_count = len(serving.shards)
                    value, cached = run_shard_batch(
                        engine, pattern, serving.shards, serving.shard_ids,
                        parent_span=sp,
                    )
                else:
                    value, cached = engine.count_detailed(
                        pattern, serving.graph, target_id=serving.target_id,
                        parent_span=sp,
                    )
            else:
                target_name = _graph_summary(task.target)
                target_graph = task.target
                target_id = self._prepared_target_id(task, sp)
                value, cached = engine.count_detailed(
                    pattern, task.target, target_id=target_id, parent_span=sp,
                )
            backend = engine.plan_for(pattern, parent_span=sp).describe_for(
                target_graph,
            )
        _count_task(task.kind, self.name)
        provenance: dict = {
            "pattern": _graph_summary(pattern),
            "target": target_name,
            "shards": shard_count,
        }
        if sp.live:
            sp.attrs["cached"] = cached
            provenance["trace"] = sp
        return _finish_task(task, Result(
            kind=task.kind,
            value=value,
            executor=self.name,
            backend=backend,
            cached=cached,
            version=version,
            provenance=provenance,
            elapsed_ms=sp.duration_ms,
        ), sp)

    def _prepared_target_id(self, task: HomCountTask, parent=None) -> tuple:
        """The inline target's engine cache key, fingerprinted once per spec."""
        key = task.cache_key()
        target_id = self._prepared.get(key)
        if target_id is None:
            from repro.engine.cache import target_key

            with child_span(parent, "task.encode.target"):
                target_id = target_key(task.target)
            self._prepared.put(key, target_id)
        return target_id

    def _run_answer_count(self, task: AnswerCountTask) -> Result:
        from repro.queries.parser import format_query

        sp = span("task.answer-count", executor=self.name)
        with sp:
            query = task.parsed()
            version = None
            if isinstance(task.target, str):
                serving = self._serving(task.target, "graph")
                host, version, target_name = (
                    serving.graph, serving.version, task.target,
                )
            else:
                host, target_name = task.target, _graph_summary(task.target)
            value, method = self._answer_count_parsed(query, host, task.method)
            sp.annotate(backend=method)
        _count_task(task.kind, self.name)
        provenance: dict = {
            "query": task.query,
            "logic": format_query(query, style="logic"),
            "target": target_name,
        }
        if sp.live:
            provenance["trace"] = sp
        return _finish_task(task, Result(
            kind=task.kind,
            value=value,
            executor=self.name,
            backend=method,
            version=version,
            provenance=provenance,
            elapsed_ms=sp.duration_ms,
        ), sp)

    def _run_kg_answer_count(self, task: KgAnswerCountTask) -> Result:
        from repro.service.wire import kg_query_to_spec

        sp = span("task.kg-answer-count", executor=self.name)
        with sp:
            version = None
            if isinstance(task.target, str):
                serving = self._serving(task.target, "kg")
                encoding, target_id = serving.kg_encoding, serving.target_id
                version, target_name = serving.version, task.target
            else:
                encoding, target_id = self._prepared_kg_encoding(task, sp)
                target_name = _kg_summary(task.target)
            value = self.kg_answer_count(
                task.query, encoding, target_id=target_id,
            )
        _count_task(task.kind, self.name)
        provenance: dict = {
            "kg_query": kg_query_to_spec(task.query),
            "target": target_name,
        }
        if sp.live:
            provenance["trace"] = sp
        return _finish_task(task, Result(
            kind=task.kind,
            value=value,
            executor=self.name,
            backend="kg-engine",
            version=version,
            provenance=provenance,
            elapsed_ms=sp.duration_ms,
        ), sp)

    def _prepared_kg_encoding(self, task: KgAnswerCountTask, parent=None):
        """Gadget-encode an inline KG target once per spec."""
        key = task.cache_key()
        entry = self._prepared.get(key)
        if entry is None:
            from repro.engine.cache import target_key
            from repro.kg.engine_bridge import encode_kg

            with child_span(parent, "task.encode.kg"):
                encoding = encode_kg(task.target)
                entry = (encoding, target_key(encoding.graph))
            self._prepared.put(key, entry)
        return entry


class ServiceExecutor(Executor):
    """Run task specs on a counting service over HTTP.

    Wraps a :class:`~repro.service.client.ServiceClient`; every spec
    travels as its canonical wire payload through ``POST /task`` and the
    service's scheduler (coalescing, backpressure) applies as for any
    other request.
    """

    name = "service"

    def __init__(self, client=None, host: str = "127.0.0.1", port: int = 8765) -> None:
        if client is None:
            from repro.service.client import ServiceClient

            client = ServiceClient(host=host, port=port)
        self.client = client

    def run(self, task: Task) -> Result:
        from repro.service.wire import result_from_wire

        payload = self.client.run_task(task)
        return result_from_wire(payload).with_executor(self.name)

    def run_batch(self, batch: TaskBatch) -> list[Result]:
        from repro.service.wire import result_from_wire

        payload = self.client.run_task(batch)
        return [
            result_from_wire(entry).with_executor(self.name)
            for entry in payload["results"]
        ]


class DynamicExecutor(Executor):
    """Bind task specs to maintained handles over dynamic targets.

    The first ``run`` of a counting spec subscribes a maintained handle
    (:class:`MaintainedCount` / :class:`MaintainedAnswerCount` /
    :class:`MaintainedKgAnswerCount`); subsequent runs read the handle's
    live value, so the spec tracks every ``apply``/``rollback`` of the
    target.  Dataset names resolve through the shared registry (whose
    datasets are dynamic streams already); inline graph/KG targets are
    wrapped in private dynamic streams keyed by the spec, which makes
    cross-executor equivalence checks uniform but snapshots the inline
    value at bind time.
    """

    name = "dynamic"

    def __init__(self, engine=None, registry=None, mode: str = "auto") -> None:
        self._engine = engine
        if registry is None:
            from repro.service.registry import DatasetRegistry

            registry = DatasetRegistry()
        self.registry = registry
        self.mode = mode
        self._handles = _PreparedCache(on_evict=self._close_handle)
        self._bind_lock = threading.Lock()

    @property
    def engine(self):
        if self._engine is not None:
            return self._engine
        from repro.engine import default_engine

        return default_engine()

    @staticmethod
    def _close_handle(entry) -> None:
        handle, _ = entry
        handle.close()

    def run(self, task: Task) -> Result:
        if isinstance(task, (WlDimensionTask, AnalyzeTask)):
            return self._run_query_analysis(task)
        if isinstance(task, TaskBatch):
            raise TaskError("run a TaskBatch through run_batch()")
        if not isinstance(
            task, (HomCountTask, AnswerCountTask, KgAnswerCountTask),
        ):
            raise TaskError(f"cannot execute task kind {task.kind!r}")
        if isinstance(task, AnswerCountTask) and task.method != "auto":
            # The maintained route is the only answer-count route here
            # (all routes agree on values, Lemma 22); normalising the
            # method keeps specs differing only in it on one shared
            # handle instead of duplicating subscriptions.
            task = AnswerCountTask(task.query, task.target)
        sp = span("task.maintained", executor=self.name, kind=task.kind)
        with sp:
            key = task.cache_key()
            for _ in range(3):
                entry = self._handle_for(task)
                handle, target_name = entry
                value = handle.value
                # A concurrent bind may have LRU-evicted (and closed) this
                # handle mid-read, in which case the value can miss updates
                # applied since the close; re-check and rebind if the entry
                # did not survive the read.  Each retry re-puts the entry as
                # most-recently-used, so a second eviction needs the whole
                # cache to churn again — three attempts in practice always
                # settle, and the bound rules out a livelock under
                # pathological spec churn.
                if self._handles.get(key) is entry:
                    break
            backend = getattr(handle, "method", "maintained")
        _count_task(task.kind, self.name)
        provenance = self._provenance(task, target_name)
        if sp.live:
            provenance["trace"] = sp
        return _finish_task(task, Result(
            kind=task.kind,
            value=value,
            executor=self.name,
            backend=f"maintained/{backend}",
            version=handle.version,
            provenance=provenance,
            elapsed_ms=sp.duration_ms,
        ), sp)

    def _provenance(self, task: Task, target_name) -> dict:
        if isinstance(task, HomCountTask):
            return {
                "pattern": _graph_summary(task.pattern),
                "target": target_name,
                "shards": 1,
            }
        if isinstance(task, AnswerCountTask):
            from repro.queries.parser import format_query

            return {
                "query": task.query,
                "logic": format_query(task.parsed(), style="logic"),
                "target": target_name,
            }
        from repro.service.wire import kg_query_to_spec

        return {"kg_query": kg_query_to_spec(task.query), "target": target_name}

    def _handle_for(self, task: Task):
        key = task.cache_key()
        entry = self._handles.get(key)
        if entry is None:
            # Serialise creation: binding subscribes a maintained handle,
            # and a lost race would leave an orphan subscription.
            with self._bind_lock:
                entry = self._handles.get(key)
                if entry is None:
                    entry = (self._bind(task), self._target_display(task))
                    self._handles.put(key, entry)
        return entry

    def _target_display(self, task: Task):
        if isinstance(task.target, str):
            return task.target
        if isinstance(task, KgAnswerCountTask):
            return _kg_summary(task.target)
        return _graph_summary(task.target)

    def _bind(self, task: Task):
        """Create the maintained handle a spec subscribes to."""
        engine = self.engine
        if isinstance(task, KgAnswerCountTask):
            from repro.dynamic.kg import (
                DynamicKnowledgeGraph,
                MaintainedKgAnswerCount,
            )

            if isinstance(task.target, str):
                stream = self.registry.get(task.target, kind="kg").dynamic_kg
            else:
                stream = DynamicKnowledgeGraph(task.target)
            return MaintainedKgAnswerCount(task.query, stream, engine=engine)
        from repro.dynamic.graph import DynamicGraph
        from repro.dynamic.maintained import (
            MaintainedAnswerCount,
            MaintainedCount,
        )

        if isinstance(task.target, str):
            stream = self.registry.get(task.target, kind="graph").dynamic
        else:
            stream = DynamicGraph(task.target)
        if isinstance(task, HomCountTask):
            return MaintainedCount(
                task.pattern, stream, engine=engine, mode=self.mode,
            )
        return MaintainedAnswerCount(
            task.parsed(), stream, engine=engine, mode=self.mode,
        )

    def close(self) -> None:
        """Close every maintained handle this executor created."""
        self._handles.clear()
