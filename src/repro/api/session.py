"""The :class:`Session` facade: one entry point, any executor.

A session owns a :class:`~repro.service.registry.DatasetRegistry` and an
executor, and runs any :mod:`~repro.api.tasks` spec:

>>> session = Session()                                   # doctest: +SKIP
>>> session.register("hosts", graph)
>>> session.run(HomCountTask(cycle_graph(4), "hosts")).value

``session.using(executor)`` rebinds the same registry to another
executor, which is how the cross-executor equivalence suite runs one
spec everywhere:

>>> local = Session()                                     # doctest: +SKIP
>>> dynamic = local.using(DynamicExecutor(registry=local.registry))
>>> remote = local.using(ServiceExecutor(port=server.port))

Sessions also expose ``run_*`` fast paths returning bare ints; the
legacy ``count_homomorphisms`` / ``count_answers`` / ``count_kg_answers``
entry points are thin shims over these, so every public counting route in
the library funnels through one object model.
"""

from __future__ import annotations

from repro.api.executors import Executor, LocalExecutor
from repro.api.result import Result
from repro.api.tasks import Task, TaskBatch
from repro.errors import TaskError


class Session:
    """Resolve once, run anywhere: the library's uniform task runner."""

    def __init__(self, executor: Executor | None = None, engine=None, registry=None) -> None:
        if executor is not None and engine is not None:
            raise TaskError("pass an executor or an engine, not both")
        if executor is not None and registry is not None:
            # An executor brings its own registry; a silently ignored
            # one would strand every dataset registered in it.
            raise TaskError(
                "pass an executor or a registry, not both "
                "(construct the executor with registry=...)",
            )
        if executor is None:
            executor = LocalExecutor(engine=engine, registry=registry)
        self.executor = executor
        self.registry = getattr(executor, "registry", None)

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    def using(self, executor: Executor) -> "Session":
        """The same session state bound to a different executor.

        Registry-backed executors (local, dynamic) are rebound to *this*
        session's registry, so datasets registered here stay visible; a
        :class:`~repro.api.executors.ServiceExecutor` keeps its own
        server-side state.  The executor must be freshly constructed and
        not shared with another session: rebinding takes ownership of its
        (empty) registry slot, and an executor that already holds
        datasets is rejected rather than silently stranding them.
        """
        if self.registry is not None and hasattr(executor, "registry"):
            if len(executor.registry):
                raise TaskError(
                    "using() needs a freshly constructed executor; build "
                    "it with registry=session.registry instead",
                )
            executor.registry = self.registry
        return Session(executor=executor)

    # ------------------------------------------------------------------
    # dataset management
    # ------------------------------------------------------------------
    def register(self, name: str, target, shards: int = 1):
        """Register a named dataset with the executor's backing store.

        Graphs and knowledge graphs both register; on a
        :class:`~repro.api.executors.ServiceExecutor` this becomes a
        ``register-dataset`` request, otherwise it lands in the shared
        in-process registry (as a dynamic stream, so the dynamic executor
        can maintain counts over it).
        """
        client = getattr(self.executor, "client", None)
        if client is not None:
            if hasattr(target, "triples"):
                return client.register_kg(name, target)
            return client.register_graph(name, target, shards=shards)
        if self.registry is None:
            raise TaskError("executor has no registry to register datasets in")
        if hasattr(target, "triples"):
            return self.registry.register_kg(name, target).summary()
        return self.registry.register_graph(name, target, shards=shards).summary()

    def update(self, name: str, **updates):
        """Advance a registered dataset by one update batch.

        Keywords are the wire update fields: ``add_edges`` /
        ``remove_edges`` / ``add_vertices`` / ``remove_vertices`` for
        graph datasets, ``add_vertices`` / ``add_triples`` /
        ``remove_triples`` for KGs.  Returns the new version number.
        """
        client = getattr(self.executor, "client", None)
        if client is not None:
            return client.target_update(name, **updates)["version"]
        if self.registry is None:
            raise TaskError("executor has no registry to update datasets in")
        dataset = self.registry.get(name)
        if dataset.kind == "kg":
            kg_updates = {
                key: updates.pop(key, ())
                for key in ("add_vertices", "add_triples", "remove_triples")
            }
            if any(updates.values()):
                raise TaskError(
                    f"KG datasets take triple updates, got {sorted(updates)}",
                )
            _, version = self.registry.update_kg(name, **kg_updates)
            return version.version
        graph_updates = {
            key: updates.pop(key, ())
            for key in (
                "add_vertices", "add_edges", "remove_edges", "remove_vertices",
            )
        }
        if any(updates.values()):
            raise TaskError(
                f"graph datasets take edge/vertex updates, got {sorted(updates)}",
            )
        from repro.dynamic.graph import UpdateBatch

        _, record = self.registry.update_graph(
            name, UpdateBatch.build(**graph_updates),
        )
        return record.version

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, task: Task) -> Result:
        """Execute one spec on this session's executor."""
        if isinstance(task, TaskBatch):
            raise TaskError("run a TaskBatch through run_batch()")
        return self.executor.run(task)

    def run_batch(self, batch) -> list[Result]:
        """Execute a batch (or any iterable of specs), one result each."""
        if not isinstance(batch, TaskBatch):
            batch = TaskBatch(batch)
        return self.executor.run_batch(batch)

    def explain(self, task: Task) -> str:
        """Run a spec and render its :meth:`~repro.api.result.Result.explain`."""
        return self.run(task).explain()

    # ------------------------------------------------------------------
    # fast paths (bare values, no Result) — the legacy shims ride these
    # ------------------------------------------------------------------
    def run_hom_count(self, pattern, target) -> int:
        executor = self.executor
        if isinstance(executor, LocalExecutor):
            return executor.hom_count(pattern, target)
        from repro.api.tasks import HomCountTask

        return self.run(HomCountTask(pattern, target)).value

    def run_answer_count(self, query, target, method: str = "auto") -> int:
        executor = self.executor
        if isinstance(executor, LocalExecutor):
            return executor.answer_count(query, target, method=method)
        from repro.api.tasks import AnswerCountTask

        return self.run(AnswerCountTask(query, target, method=method)).value

    def run_kg_answer_count(self, query, target) -> int:
        executor = self.executor
        if isinstance(executor, LocalExecutor):
            return executor.kg_answer_count(query, target)
        from repro.api.tasks import KgAnswerCountTask

        return self.run(KgAnswerCountTask(query, target)).value

    def close(self) -> None:
        self.executor.close()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


_default_session: Session | None = None


def default_session() -> Session:
    """The process-wide session behind the legacy ``count_*`` shims.

    Backed by a :class:`LocalExecutor` with no pinned engine, so it
    follows :func:`repro.engine.set_default_engine` swaps exactly like
    the pre-API call paths did.
    """
    global _default_session
    if _default_session is None:
        _default_session = Session()
    return _default_session
