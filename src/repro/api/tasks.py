"""Typed, immutable task specs — the declarative surface of the library.

A *task* describes one unit of work ("count homomorphisms of this pattern
into that target", "analyse this query") without saying *where* it runs.
The same spec executes on any :mod:`~repro.api.executors` executor — the
in-process engine, the counting service, or a dynamic maintained handle —
and serialises canonically through :mod:`repro.service.wire`, so the CLI,
the HTTP server, and the Python client all construct and consume the same
payloads.

Specs are frozen at construction: inputs are validated eagerly (queries
parsed, wire specs decoded, graphs defensively copied) so a task that
constructs is a task that runs.  Equality and hashing go through
:meth:`Task.cache_key` — a process-independent digest of the canonical
wire payload — which is also what executors key their memoised
resolutions and maintained handles on.

Targets are polymorphic: a registered **dataset name** (``str``), an
inline :class:`~repro.graphs.graph.Graph` /
:class:`~repro.kg.kgraph.KnowledgeGraph`, or a raw wire spec mapping
(decoded on the spot).  Graphs handed to a task are treated as frozen
values from then on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar, Mapping

from repro.errors import TaskError
from repro.graphs.graph import Graph

_ANSWER_METHODS = ("auto", "direct", "interpolation")


def _normalise_graph(value, what: str, copy: bool = False) -> Graph:
    """Graph or wire spec → :class:`Graph` (patterns are defensively
    copied; targets may be large, so they are held as frozen-by-convention
    references)."""
    if isinstance(value, Graph):
        return value.copy() if copy else value
    if isinstance(value, Mapping):
        from repro.service.wire import graph_from_spec

        return graph_from_spec(value)
    raise TaskError(f"{what} must be a Graph or a graph spec, got {type(value).__name__}")


def _normalise_graph_target(value):
    """Dataset name, graph, or spec → ``str`` or :class:`Graph`."""
    if isinstance(value, str):
        if not value:
            raise TaskError("dataset name must be a non-empty string")
        return value
    return _normalise_graph(value, "target")


def _normalise_kg(value, what: str):
    from repro.kg.kgraph import KnowledgeGraph

    if isinstance(value, KnowledgeGraph):
        return value
    if isinstance(value, Mapping):
        from repro.service.wire import kg_from_spec

        return kg_from_spec(value)
    raise TaskError(
        f"{what} must be a KnowledgeGraph or a KG spec, got {type(value).__name__}",
    )


def _normalise_query_text(value) -> str:
    """Query text or a :class:`ConjunctiveQuery` → validated text."""
    from repro.queries.parser import format_query, parse_query
    from repro.queries.query import ConjunctiveQuery

    if isinstance(value, ConjunctiveQuery):
        return format_query(value, style="datalog")
    if isinstance(value, str):
        parse_query(value)  # validation only; the raw text stays canonical
        return value
    raise TaskError(
        f"query must be text or a ConjunctiveQuery, got {type(value).__name__}",
    )


@dataclass(frozen=True, eq=False, repr=False)
class Task:
    """Base class: canonical identity, wire codec hooks, and parsing memos."""

    kind: ClassVar[str] = "task"

    def to_wire(self) -> dict:
        """The canonical JSON-able payload (see :mod:`repro.service.wire`)."""
        from repro.service.wire import task_to_wire

        return task_to_wire(self)

    def cache_key(self) -> str:
        """Process-independent digest of the canonical wire payload.

        Memoised per instance: the wire encoding runs at most once however
        often executors hash the task.
        """
        key = self.__dict__.get("_cache_key")
        if key is None:
            from repro.utils import stable_key_digest

            key = stable_key_digest((self.kind, self.to_wire()))
            object.__setattr__(self, "_cache_key", key)
        return key

    def __eq__(self, other) -> bool:
        if not isinstance(other, Task):
            return NotImplemented
        return self.kind == other.kind and self.cache_key() == other.cache_key()

    def __hash__(self) -> int:
        return hash(self.cache_key())

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.describe()})"

    def describe(self) -> str:
        return self.kind


def _target_brief(target) -> str:
    if isinstance(target, str):
        return f"dataset {target!r}"
    if isinstance(target, Graph):
        return f"graph n{target.num_vertices()}m{target.num_edges()}"
    return f"kg n{target.num_vertices()}t{target.num_triples()}"


@dataclass(frozen=True, eq=False, repr=False)
class HomCountTask(Task):
    """``|Hom(pattern, target)|`` — the engine's bread and butter."""

    kind: ClassVar[str] = "hom-count"

    pattern: Graph
    target: object  # str (dataset name) or Graph

    def __init__(self, pattern, target) -> None:
        object.__setattr__(
            self, "pattern", _normalise_graph(pattern, "pattern", copy=True),
        )
        object.__setattr__(self, "target", _normalise_graph_target(target))

    def describe(self) -> str:
        return (
            f"pattern n{self.pattern.num_vertices()}"
            f"m{self.pattern.num_edges()} -> {_target_brief(self.target)}"
        )


@dataclass(frozen=True, eq=False, repr=False)
class AnswerCountTask(Task):
    """``|Ans((H, X), target)|`` for a conjunctive query.

    ``method`` selects the counting route: ``'direct'`` enumerates,
    ``'interpolation'`` rides Lemma 22 over engine-backed power sums, and
    ``'auto'`` (the service's behaviour) goes direct for Boolean queries
    and interpolates otherwise.  All routes agree on the value.
    """

    kind: ClassVar[str] = "answer-count"

    query: str
    target: object  # str (dataset name) or Graph
    method: str = "auto"

    def __init__(self, query, target, method: str = "auto") -> None:
        if method not in _ANSWER_METHODS:
            raise TaskError(f"unknown answer-count method {method!r}")
        object.__setattr__(self, "query", _normalise_query_text(query))
        object.__setattr__(self, "target", _normalise_graph_target(target))
        object.__setattr__(self, "method", method)

    def parsed(self):
        """The parsed :class:`ConjunctiveQuery` (memoised)."""
        parsed = self.__dict__.get("_parsed")
        if parsed is None:
            from repro.queries.parser import parse_query

            parsed = parse_query(self.query)
            object.__setattr__(self, "_parsed", parsed)
        return parsed

    def describe(self) -> str:
        return f"{self.query!r} on {_target_brief(self.target)}"


@dataclass(frozen=True, eq=False, repr=False)
class KgAnswerCountTask(Task):
    """``|Ans((P, X), target)|`` for a knowledge-graph conjunctive query."""

    kind: ClassVar[str] = "kg-answer-count"

    query: object  # KgQuery
    target: object  # str (dataset name) or KnowledgeGraph

    def __init__(self, query, target) -> None:
        from repro.kg.queries import KgQuery

        if isinstance(query, Mapping):
            from repro.service.wire import kg_query_from_spec

            query = kg_query_from_spec(query)
        if not isinstance(query, KgQuery):
            raise TaskError(
                f"query must be a KgQuery or a KG query spec, "
                f"got {type(query).__name__}",
            )
        if isinstance(target, str):
            if not target:
                raise TaskError("dataset name must be a non-empty string")
        else:
            target = _normalise_kg(target, "target")
        object.__setattr__(self, "query", query)
        object.__setattr__(self, "target", target)

    def describe(self) -> str:
        return (
            f"kg query ({len(self.query.free_variables)} free) on "
            f"{_target_brief(self.target)}"
        )


@dataclass(frozen=True, eq=False, repr=False)
class WlDimensionTask(Task):
    """The WL-dimension of a conjunctive query (Theorem 1)."""

    kind: ClassVar[str] = "wl-dimension"

    query: str

    def __init__(self, query) -> None:
        object.__setattr__(self, "query", _normalise_query_text(query))

    def describe(self) -> str:
        return repr(self.query)


@dataclass(frozen=True, eq=False, repr=False)
class AnalyzeTask(Task):
    """The full structural report for a conjunctive query."""

    kind: ClassVar[str] = "analyze"

    query: str

    def __init__(self, query) -> None:
        object.__setattr__(self, "query", _normalise_query_text(query))

    def describe(self) -> str:
        return repr(self.query)


@dataclass(frozen=True, eq=False, repr=False)
class TaskBatch(Task):
    """An ordered container of task specs, executed as one unit.

    Iterable and indexable; executors run the members in order (sharing
    whatever plan/count caches the executor holds) and return one result
    per member.
    """

    kind: ClassVar[str] = "batch"

    tasks: tuple = field(default_factory=tuple)

    def __init__(self, tasks) -> None:
        members = tuple(tasks)
        for member in members:
            if not isinstance(member, Task):
                raise TaskError(
                    f"batch members must be tasks, got {type(member).__name__}",
                )
            if isinstance(member, TaskBatch):
                raise TaskError("batches do not nest")
        object.__setattr__(self, "tasks", members)

    def __iter__(self):
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def __getitem__(self, index):
        return self.tasks[index]

    def describe(self) -> str:
        return f"{len(self.tasks)} tasks"


TASK_TYPES: dict[str, type[Task]] = {
    cls.kind: cls
    for cls in (
        HomCountTask,
        AnswerCountTask,
        KgAnswerCountTask,
        WlDimensionTask,
        AnalyzeTask,
        TaskBatch,
    )
}
