"""repro.api — one Task/Session object model across every execution layer.

The library grew four ways to ask the same question (direct functions,
:class:`~repro.engine.HomEngine`, the counting service, maintained
handles).  This package is the single declarative surface over all of
them:

* :mod:`repro.api.tasks` — typed, immutable specs
  (:class:`HomCountTask`, :class:`AnswerCountTask`,
  :class:`KgAnswerCountTask`, :class:`WlDimensionTask`,
  :class:`AnalyzeTask`, :class:`TaskBatch`) with canonical cache keys
  and wire payloads;
* :mod:`repro.api.executors` — interchangeable execution contexts
  (:class:`LocalExecutor`, :class:`ServiceExecutor`,
  :class:`DynamicExecutor`);
* :mod:`repro.api.session` — the :class:`Session` facade that resolves
  specs once and runs them anywhere;
* :mod:`repro.api.result` — the uniform :class:`Result` (value, backend,
  cache/version provenance, timing, ``.explain()``).

The wire codecs for specs and results live in :mod:`repro.service.wire`,
so the CLI, HTTP server, and client all speak these exact objects.
"""

from repro.api.executors import (
    DynamicExecutor,
    Executor,
    LocalExecutor,
    ServiceExecutor,
)
from repro.api.result import Result
from repro.api.session import Session, default_session
from repro.api.tasks import (
    AnalyzeTask,
    AnswerCountTask,
    HomCountTask,
    KgAnswerCountTask,
    Task,
    TaskBatch,
    WlDimensionTask,
)

__all__ = [
    "AnalyzeTask",
    "AnswerCountTask",
    "DynamicExecutor",
    "Executor",
    "HomCountTask",
    "KgAnswerCountTask",
    "LocalExecutor",
    "Result",
    "ServiceExecutor",
    "Session",
    "Task",
    "TaskBatch",
    "WlDimensionTask",
    "default_session",
]
