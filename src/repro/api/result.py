"""The uniform result object every executor returns.

Whatever a task ran on — the in-process engine, the counting service over
HTTP, or a dynamic maintained handle — the caller gets back one
:class:`Result`: the value, which backend produced it, whether it came
from cache, which target *version* it describes, timing, and a
human-readable :meth:`Result.explain` plan introspection.

``provenance`` carries the per-kind display fields (pattern/target
summaries, the query's logic form, shard counts, version digests); the
wire layer uses it to rebuild the exact legacy payload shapes, so the
HTTP API did not change shape when the object model moved underneath it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping


@dataclass(frozen=True)
class Result:
    """One executed task: value plus execution provenance."""

    kind: str                      # the task kind that produced it
    value: object                  # int for counts, dict for analyze, ...
    executor: str = "local"        # "local" | "service" | "dynamic"
    backend: str | None = None     # plan description or counting method
    cached: bool | None = None     # True/False when known, None otherwise
    version: int | None = None     # dataset version (versioned targets only)
    provenance: Mapping = field(default_factory=dict)
    elapsed_ms: float = 0.0

    def with_executor(self, executor: str) -> "Result":
        return replace(self, executor=executor)

    @property
    def trace(self):
        """The request's span tree (a live ``Span`` locally, a dict after
        a wire round-trip), or ``None`` when tracing was disabled."""
        return self.provenance.get("trace")

    @property
    def cost(self) -> Mapping | None:
        """Phase cost breakdown (compile/execute/encode/lookup ms + work
        counters), derived lazily from the span tree — or the precomputed
        dict a wire round-trip carried over.  ``None`` when tracing was
        disabled."""
        precomputed = self.provenance.get("cost")
        if precomputed is not None:
            return precomputed
        from repro.obs.cost import cost_breakdown

        return cost_breakdown(self.trace)

    def explain(self) -> str:
        """A multi-line, human-readable account of how the value was made."""
        lines = [f"{self.kind}: {self.value!r}"]
        lines.append(f"  executor   {self.executor}")
        if self.backend is not None:
            lines.append(f"  backend    {self.backend}")
        if self.cached is not None:
            lines.append(f"  cached     {self.cached}")
        if self.version is not None:
            lines.append(f"  version    {self.version}")
        for key in sorted(self.provenance):
            if key in ("trace", "cost"):
                continue
            lines.append(f"  {key:10s} {self.provenance[key]!r}")
        lines.append(f"  elapsed    {self.elapsed_ms:.3f} ms")
        cost = self.cost
        if cost is not None:
            from repro.obs.cost import render_cost

            lines.append("  cost")
            for cost_line in render_cost(cost).splitlines():
                lines.append(f"    {cost_line}")
        trace = self.trace
        if trace is not None:
            from repro.obs.trace import render_span

            lines.append("  trace")
            for trace_line in render_span(trace).splitlines():
                lines.append(f"    {trace_line}")
        return "\n".join(lines)
