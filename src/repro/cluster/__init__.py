"""repro.cluster — multi-process sharded serving behind one router.

The sixth layer of the stack: a consistent-hash **router**
(:mod:`~repro.cluster.router`) fans the existing service wire protocol
out over N supervised **worker** subprocesses
(:mod:`~repro.cluster.worker`, :mod:`~repro.cluster.supervisor`), each
running the full single-process stack.  Datasets replicate everywhere
(:mod:`~repro.cluster.state`); the ring (:mod:`~repro.cluster.ring`)
only decides *cache affinity* — which is what lets the router resubmit
any request to any surviving worker when one dies, so a SIGKILL costs
latency, never a client-visible error.

An unmodified :class:`~repro.service.client.ServiceClient` talks to the
router exactly as it talks to ``repro serve``.
"""

from repro.cluster.ring import HashRing
from repro.cluster.router import ClusterRouter, RouterServer, WorkerUnreachable
from repro.cluster.state import ClusterState, LogEntry
from repro.cluster.supervisor import Cluster, Supervisor, run_cluster

__all__ = [
    "Cluster",
    "ClusterRouter",
    "ClusterState",
    "HashRing",
    "LogEntry",
    "RouterServer",
    "Supervisor",
    "WorkerUnreachable",
    "run_cluster",
]
