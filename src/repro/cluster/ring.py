"""A consistent-hash ring with virtual nodes.

The router places every worker at ``replicas`` pseudo-random points on a
2^64 circle (sha256 of ``"{node}#{i}"``) and routes a key to the first
node clockwise of the key's own point.  Two properties matter for the
cluster:

* **balance** — with enough virtual nodes, each worker owns a roughly
  equal arc of the circle, so the canonical task keys spread evenly;
* **stability** — adding or removing one worker only moves the keys in
  the arcs that worker gained or lost (~1/n of the keyspace), so the
  per-worker in-memory caches stay warm across membership changes.
  Modulo hashing would reshuffle nearly every key on every respawn.

``nodes_for`` walks the circle to distinct successor nodes — the router's
retry/hedging preference list: the primary owner first, then the workers
whose caches are most likely to have seen neighbouring keys.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, Iterator

__all__ = ["HashRing"]

DEFAULT_REPLICAS = 64


def ring_hash(token: str) -> int:
    """A stable 64-bit point on the circle (process-independent)."""
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """Consistent hashing over an explicit node set."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        replicas: int = DEFAULT_REPLICAS,
    ) -> None:
        if replicas < 1:
            raise ValueError(f"replicas must be >= 1, got {replicas}")
        self.replicas = replicas
        self._nodes: set[str] = set()
        self._points: list[int] = []
        self._owners: list[str] = []
        for node in nodes:
            self.add(node)

    # ------------------------------------------------------------------
    # membership
    # ------------------------------------------------------------------
    def add(self, node: str) -> None:
        """Place ``node`` on the ring (idempotent)."""
        if node in self._nodes:
            return
        self._nodes.add(node)
        for i in range(self.replicas):
            point = ring_hash(f"{node}#{i}")
            index = bisect.bisect(self._points, point)
            # sha256 collisions between distinct vnode tokens are not a
            # practical concern; ties resolve by insertion order.
            self._points.insert(index, point)
            self._owners.insert(index, node)

    def remove(self, node: str) -> None:
        """Take ``node`` off the ring (idempotent)."""
        if node not in self._nodes:
            return
        self._nodes.discard(node)
        kept = [
            (point, owner)
            for point, owner in zip(self._points, self._owners)
            if owner != node
        ]
        self._points = [point for point, _ in kept]
        self._owners = [owner for _, owner in kept]

    @property
    def nodes(self) -> frozenset[str]:
        return frozenset(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    def _successors(self, key: str) -> Iterator[str]:
        start = bisect.bisect(self._points, ring_hash(key))
        count = len(self._owners)
        for step in range(count):
            yield self._owners[(start + step) % count]

    def node_for(self, key: str) -> str:
        """The node owning ``key`` (first vnode clockwise of its point)."""
        if not self._nodes:
            raise LookupError("hash ring is empty")
        return next(self._successors(key))

    def nodes_for(self, key: str, count: int | None = None) -> list[str]:
        """Up to ``count`` *distinct* nodes in clockwise preference order.

        The first entry is ``node_for(key)``; the rest are the fallback
        owners a router should try on retry or hedge.  ``count=None``
        returns every node.
        """
        if not self._nodes:
            raise LookupError("hash ring is empty")
        if count is None:
            count = len(self._nodes)
        preference: list[str] = []
        seen: set[str] = set()
        for owner in self._successors(key):
            if owner in seen:
                continue
            preference.append(owner)
            seen.add(owner)
            if len(preference) >= count or len(seen) == len(self._nodes):
                break
        return preference

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def ownership(self, keys: Iterable[str]) -> dict[str, int]:
        """How many of ``keys`` each node owns (balance diagnostics)."""
        counts = {node: 0 for node in self._nodes}
        for key in keys:
            counts[self.node_for(key)] += 1
        return counts
