"""Cluster worker: one full service stack in a subprocess.

``python -m repro.cluster.worker --port 0 --data-dir DIR`` runs the
existing :func:`~repro.service.server.run_server` loop unchanged — the
worker *is* the single-process service; the cluster layer wraps it
rather than forking its internals.  Two small contracts make it
supervisable:

* the bound address is announced on stdout as the standard
  ``repro service listening on http://host:port`` line (workers bind
  port 0, so the supervisor learns the real port by parsing this);
* a watchdog thread exits the process the moment stdin reaches EOF, so
  workers can never outlive a killed supervisor and become orphans.

All workers of one cluster share a ``--data-dir``: the
:class:`~repro.service.store.PersistentStore` is multi-process safe
(file-locked appends, refresh-on-miss), so any worker's cold count
warms every other worker's persistent tier.
"""

from __future__ import annotations

import argparse
import os
import sys
import threading

from repro.service.server import run_server

__all__ = ["main", "ANNOUNCE_PREFIX"]

#: The stdout line prefix the supervisor parses for the bound endpoint.
ANNOUNCE_PREFIX = "repro service listening on http://"


def _stdin_watchdog() -> None:
    """Exit when the supervisor goes away (its pipe end closes)."""
    try:
        while sys.stdin.buffer.read(4096):
            pass
    except (OSError, ValueError):
        pass
    os._exit(0)


def _announce(message) -> None:
    print(message, flush=True)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cluster-worker",
        description="one cluster worker process (a full repro service)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--data-dir", default=None)
    parser.add_argument("--workers", type=int, default=4,
                        help="scheduler worker tasks inside this process")
    parser.add_argument("--max-queue", type=int, default=256)
    args = parser.parse_args(argv)
    threading.Thread(target=_stdin_watchdog, daemon=True).start()
    run_server(
        host=args.host,
        port=args.port,
        data_dir=args.data_dir,
        workers=args.workers,
        max_queue=args.max_queue,
        announce=_announce,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
