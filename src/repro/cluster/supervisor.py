"""Worker lifecycle: spawn, watch, respawn, re-admit.

The supervisor owns N worker subprocesses (``repro.cluster.worker``) and
the membership of the router's hash ring:

* **spawn** — workers bind port 0 and announce their endpoint on stdout;
  the supervisor parses the announce line, waits for ``/readyz``, then
  asks the router to *admit* the worker (which replays the replication
  log first, so a late joiner arrives at the committed dataset state);
* **watch** — a monitor task polls child liveness; an exited worker is
  demoted from the ring immediately.  Demotion is what makes SIGKILL
  invisible to clients: the router's retry loop resubmits in-flight
  counting requests to the surviving owners (counting is idempotent), so
  a kill costs latency, never an error;
* **respawn** — dead workers come back as a fresh process under the same
  stable worker id (``w0`` … ``wN``), so the ring position — and
  therefore the cache affinity of its key range — survives the restart.
  A respawn budget guards against crash loops.

:class:`Cluster` is the in-process facade (daemon-thread asyncio loop,
context-manager friendly) used by tests, benchmarks, and the demo;
:func:`run_cluster` is the blocking entry behind ``repro cluster``.
"""

from __future__ import annotations

import asyncio
import logging
import os
import signal
import sys
import threading

import repro
from repro.obs import get_logger, log_event
from repro.cluster.router import ClusterRouter, RouterServer, http_call
from repro.cluster.worker import ANNOUNCE_PREFIX

__all__ = ["WorkerProcess", "Supervisor", "Cluster", "run_cluster"]

_log = get_logger("cluster.supervisor")


class WorkerProcess:
    """One supervised subprocess and its announced endpoint."""

    def __init__(self, worker_id: str, generation: int = 0) -> None:
        self.worker_id = worker_id
        self.generation = generation
        self.process: asyncio.subprocess.Process | None = None
        self.host: str | None = None
        self.port: int | None = None

    @property
    def alive(self) -> bool:
        return self.process is not None and self.process.returncode is None

    def kill(self) -> None:
        if self.alive:
            try:
                self.process.kill()
            except ProcessLookupError:
                pass


class Supervisor:
    """Spawn and keep N workers admitted to a router's ring."""

    def __init__(
        self,
        router: ClusterRouter,
        workers: int = 2,
        host: str = "127.0.0.1",
        data_dir: str | None = None,
        scheduler_workers: int = 4,
        max_queue: int = 256,
        spawn_timeout: float = 30.0,
        respawn_limit: int = 5,
    ) -> None:
        self.router = router
        self.host = host
        self.data_dir = data_dir
        self.scheduler_workers = scheduler_workers
        self.max_queue = max_queue
        self.spawn_timeout = spawn_timeout
        self.respawn_limit = respawn_limit
        self.workers: dict[str, WorkerProcess] = {
            f"w{i}": WorkerProcess(f"w{i}") for i in range(workers)
        }
        self.respawns = 0
        self._monitor_task: asyncio.Task | None = None
        self._respawning: set[str] = set()
        self._stopping = False
        router.on_suspect = self._on_suspect

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        for worker in self.workers.values():
            await self._spawn(worker)
        self._monitor_task = asyncio.create_task(self._monitor())

    async def stop(self) -> None:
        self._stopping = True
        if self._monitor_task is not None:
            self._monitor_task.cancel()
            try:
                await self._monitor_task
            except asyncio.CancelledError:
                pass
            self._monitor_task = None
        for worker in self.workers.values():
            self.router.demote_worker(worker.worker_id, reason="shutdown")
            if worker.alive:
                worker.process.terminate()
        for worker in self.workers.values():
            if worker.process is not None:
                try:
                    await asyncio.wait_for(worker.process.wait(), timeout=5.0)
                except asyncio.TimeoutError:
                    worker.kill()
                    await worker.process.wait()

    # ------------------------------------------------------------------
    # spawning
    # ------------------------------------------------------------------
    async def _spawn(self, worker: WorkerProcess) -> None:
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(repro.__file__))
        existing = env.get("PYTHONPATH", "")
        env["PYTHONPATH"] = (
            f"{src_root}{os.pathsep}{existing}" if existing else src_root
        )
        argv = [
            sys.executable, "-m", "repro.cluster.worker",
            "--host", self.host, "--port", "0",
            "--workers", str(self.scheduler_workers),
            "--max-queue", str(self.max_queue),
        ]
        if self.data_dir:
            argv += ["--data-dir", self.data_dir]
        process = await asyncio.create_subprocess_exec(
            *argv,
            stdin=asyncio.subprocess.PIPE,
            stdout=asyncio.subprocess.PIPE,
            stderr=asyncio.subprocess.DEVNULL,
            env=env,
        )
        worker.process = process
        worker.host, worker.port = await asyncio.wait_for(
            self._read_announce(worker), timeout=self.spawn_timeout,
        )
        await self._wait_ready(worker)
        admitted = await self.router.admit_worker(
            worker.worker_id, worker.host, worker.port,
        )
        if not admitted:
            # Replay failed: the process is in an unknown state — kill it
            # and let the monitor's respawn path try again from scratch.
            worker.kill()
            raise RuntimeError(
                f"worker {worker.worker_id} failed replication replay",
            )
        log_event(
            _log, logging.INFO, "worker-admitted",
            worker=worker.worker_id, port=worker.port, pid=process.pid,
            generation=worker.generation,
        )

    async def _read_announce(self, worker: WorkerProcess) -> tuple[str, int]:
        assert worker.process is not None and worker.process.stdout is not None
        while True:
            line = await worker.process.stdout.readline()
            if not line:
                raise RuntimeError(
                    f"worker {worker.worker_id} exited before announcing "
                    f"(rc={worker.process.returncode})",
                )
            text = line.decode("utf-8", "replace").strip()
            if ANNOUNCE_PREFIX in text:
                endpoint = text.split("http://", 1)[1].split()[0]
                host, _, port = endpoint.rpartition(":")
                return host, int(port)

    async def _wait_ready(self, worker: WorkerProcess) -> None:
        deadline = asyncio.get_running_loop().time() + self.spawn_timeout
        while True:
            try:
                status, _ = await http_call(
                    worker.host, worker.port, "GET", "/readyz", timeout=5.0,
                )
                if status in (200, 503):
                    # Ready, or up-but-degraded: both mean the HTTP stack
                    # answers; replay/admission decides the rest.
                    return
            except (OSError, asyncio.TimeoutError, ValueError):
                pass
            if asyncio.get_running_loop().time() > deadline:
                raise TimeoutError(
                    f"worker {worker.worker_id} not ready within "
                    f"{self.spawn_timeout}s",
                )
            await asyncio.sleep(0.05)

    # ------------------------------------------------------------------
    # monitoring + respawn
    # ------------------------------------------------------------------
    def _on_suspect(self, worker_id: str) -> None:
        """Router demoted a worker mid-request: make the process state
        match (kill a half-alive process) and schedule the respawn."""
        worker = self.workers.get(worker_id)
        if worker is None or self._stopping:
            return
        worker.kill()
        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return
        loop.call_soon(self._ensure_respawn, worker)

    def _ensure_respawn(self, worker: WorkerProcess) -> None:
        if (
            self._stopping
            or worker.worker_id in self._respawning
            or self.respawns >= self.respawn_limit
        ):
            return
        self._respawning.add(worker.worker_id)
        asyncio.create_task(self._respawn(worker))

    async def _respawn(self, worker: WorkerProcess) -> None:
        try:
            if worker.process is not None:
                await worker.process.wait()  # reap before replacing
            self.respawns += 1
            worker.generation += 1
            log_event(
                _log, logging.WARNING, "worker-respawn",
                worker=worker.worker_id, generation=worker.generation,
                respawns=self.respawns,
            )
            await self._spawn(worker)
        except (RuntimeError, TimeoutError, OSError) as error:
            log_event(
                _log, logging.ERROR, "worker-respawn-failed",
                worker=worker.worker_id, error=str(error),
            )
        finally:
            self._respawning.discard(worker.worker_id)

    async def _monitor(self) -> None:
        while True:
            await asyncio.sleep(0.2)
            for worker in self.workers.values():
                if worker.alive or worker.worker_id in self._respawning:
                    continue
                if self._stopping:
                    return
                self.router.demote_worker(worker.worker_id, reason="exited")
                self._ensure_respawn(worker)

    def summary(self) -> dict:
        return {
            "workers": {
                wid: {
                    "alive": worker.alive,
                    "pid": worker.process.pid if worker.process else None,
                    "port": worker.port,
                    "generation": worker.generation,
                }
                for wid, worker in self.workers.items()
            },
            "respawns": self.respawns,
        }


class Cluster:
    """The whole topology (router + supervisor + workers) in one object.

    Runs its own asyncio loop in a daemon thread, mirroring
    :class:`~repro.service.server.BackgroundServer`, so tests, benchmarks
    and the demo drive a real multi-process cluster through the plain
    blocking :class:`~repro.service.client.ServiceClient`.
    """

    def __init__(
        self,
        workers: int = 2,
        host: str = "127.0.0.1",
        port: int = 0,
        data_dir: str | None = None,
        scheduler_workers: int = 4,
        max_queue: int = 256,
        hedge_after: float = 1.0,
        request_timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.router: ClusterRouter | None = None
        self.supervisor: Supervisor | None = None
        self._config = {
            "workers": workers,
            "data_dir": data_dir,
            "scheduler_workers": scheduler_workers,
            "max_queue": max_queue,
        }
        self._hedge_after = hedge_after
        self._request_timeout = request_timeout
        self._thread: threading.Thread | None = None
        self._ready = threading.Event()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._startup_error: BaseException | None = None

    def start(self) -> "Cluster":
        self._thread = threading.Thread(
            target=self._run, name="repro-cluster", daemon=True,
        )
        self._thread.start()
        self._ready.wait(timeout=120.0)
        if self._startup_error is not None:
            raise self._startup_error
        if not self._ready.is_set():
            raise TimeoutError("cluster did not start within 120s")
        return self

    def stop(self) -> None:
        if self._loop is not None and self._stop_event is not None:
            self._loop.call_soon_threadsafe(self._stop_event.set)
        if self._thread is not None:
            self._thread.join(timeout=60.0)
            self._thread = None

    def __enter__(self) -> "Cluster":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # chaos helpers (tests + demo)
    # ------------------------------------------------------------------
    def worker_pids(self) -> dict[str, int | None]:
        if self.supervisor is None:
            return {}
        return {
            wid: (worker.process.pid if worker.process else None)
            for wid, worker in self.supervisor.workers.items()
        }

    def kill_worker(self, worker_id: str, sig: int = signal.SIGKILL) -> int:
        """SIGKILL one worker (chaos testing); returns the dead pid."""
        assert self.supervisor is not None
        worker = self.supervisor.workers[worker_id]
        assert worker.process is not None
        pid = worker.process.pid
        os.kill(pid, sig)
        return pid

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as error:  # noqa: BLE001 - surfaced to start()
            self._startup_error = error
            self._ready.set()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        router = ClusterRouter(
            host=self.host,
            hedge_after=self._hedge_after,
            request_timeout=self._request_timeout,
        )
        supervisor = Supervisor(
            router,
            workers=self._config["workers"],
            host=self.host,
            data_dir=self._config["data_dir"],
            scheduler_workers=self._config["scheduler_workers"],
            max_queue=self._config["max_queue"],
        )
        server = RouterServer(router, host=self.host, port=self.port)
        try:
            await supervisor.start()
            await server.start()
        except BaseException as error:
            await supervisor.stop()
            self._startup_error = error
            self._ready.set()
            return
        self.router = router
        self.supervisor = supervisor
        self.port = server.port
        self._ready.set()
        try:
            await self._stop_event.wait()
        finally:
            await supervisor.stop()
            await server.stop()


def run_cluster(
    host: str = "127.0.0.1",
    port: int = 8765,
    workers: int = 2,
    data_dir: str | None = None,
    scheduler_workers: int = 4,
    max_queue: int = 256,
    announce=print,
) -> int:
    """Blocking entry point behind ``repro cluster``."""

    async def main() -> None:
        router = ClusterRouter(host=host)
        supervisor = Supervisor(
            router, workers=workers, host=host, data_dir=data_dir,
            scheduler_workers=scheduler_workers, max_queue=max_queue,
        )
        server = RouterServer(router, host=host, port=port)
        await supervisor.start()
        await server.start()
        announce(
            f"repro cluster listening on http://{host}:{server.port} "
            f"({workers} workers"
            + (f", persistent cache: {data_dir})" if data_dir else ")"),
        )
        try:
            await server.serve_forever()
        except asyncio.CancelledError:
            pass
        finally:
            await supervisor.stop()
            await server.stop()

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass
    except OSError as error:
        print(f"error: cannot bind {host}:{port}: {error}", file=sys.stderr)
        return 2
    return 0
